//! Data-quality audit of the WWC2019 graph using ground-truth rules.
//!
//! ```sh
//! cargo run --release --example wwc2019_audit
//! ```
//!
//! This is the *downstream consumer* view of the library: given a set
//! of consistency rules (here the dataset's ground truth, but they
//! could come from the mining pipeline), execute their metric and
//! violation queries to produce an audit report — including the
//! paper's flagship complex rule, "a player should be associated with
//! a squad, and that squad should belong to the tournament for which
//! the player has played a match".

use graph_rule_mining::cypher::execute;
use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::metrics::evaluate;
use graph_rule_mining::rules::{reference_queries, to_nl, violation_query};

fn main() {
    let data = generate(DatasetId::Wwc2019, &GenConfig::default());
    let g = &data.graph;
    println!(
        "WWC2019: {} nodes, {} edges — auditing {} ground-truth rules\n",
        g.node_count(),
        g.edge_count(),
        data.ground_truth.len()
    );

    let mut clean = 0usize;
    for rule in &data.ground_truth {
        let queries = reference_queries(rule);
        let metrics = evaluate(g, &queries).expect("ground-truth queries are well-formed");
        let violations = violation_query(rule)
            .map(|q| execute(g, &q).expect("violation query runs").single_int().unwrap_or(0));
        let status = match violations {
            Some(0) => {
                clean += 1;
                "OK  "
            }
            Some(_) => "VIOL",
            None => {
                if (metrics.coverage_pct - 100.0).abs() < f64::EPSILON {
                    clean += 1;
                    "OK  "
                } else {
                    "VIOL"
                }
            }
        };
        println!("[{status}] {}", to_nl(rule));
        print!(
            "       support={} coverage={:.2}% confidence={:.2}%",
            metrics.support, metrics.coverage_pct, metrics.confidence_pct
        );
        if let Some(v) = violations {
            print!(" violations={v}");
        }
        println!();
    }
    println!(
        "\n{} of {} rules hold exactly; the rest have injected violations to find.",
        clean,
        data.ground_truth.len()
    );

    // Drill into the paper's example: duplicate goals in one minute.
    println!("\nworst same-minute goal offenders:");
    let rs = execute(
        g,
        "MATCH (p:Person)-[sg:SCORED_GOAL]->(m:Match) \
         WITH p.id AS player, m.id AS game, sg.minute AS minute, COUNT(*) AS goals \
         WHERE goals > 1 \
         RETURN player, game, minute, goals ORDER BY goals DESC, player LIMIT 5",
    )
    .expect("query runs");
    for row in &rs.rows {
        println!("  player={} match={} minute={} goals={}", row[0], row[1], row[2], row[3]);
    }
}
