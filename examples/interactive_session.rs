//! Interactive rule refinement with a (scripted) domain expert.
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```
//!
//! Demonstrates the §5 human-in-the-loop extension: the session
//! proposes mined rules one at a time — each with metrics and an
//! evidence-grounded explanation — and a scripted expert policy
//! accepts the solid ones, rejects suspected hallucinations, and
//! refines rules whose thresholds need domain knowledge.

use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::llm::{ModelKind, PromptStyle};
use graph_rule_mining::pipeline::{ContextStrategy, Feedback, InteractiveSession, PipelineConfig};
use graph_rule_mining::rules::ConsistencyRule;

fn main() {
    let data =
        generate(DatasetId::Cybersecurity, &GenConfig { seed: 13, scale: 0.3, clean: false });
    println!(
        "graph: {} nodes, {} edges — opening interactive session\n",
        data.graph.node_count(),
        data.graph.edge_count()
    );

    let config = PipelineConfig::new(
        ModelKind::Mixtral,
        ContextStrategy::default_summary(),
        PromptStyle::ZeroShot,
    );
    let mut session = InteractiveSession::start(config, &data.graph);

    while let Some(proposal) = session.next_proposal() {
        println!("proposal: {}", proposal.nl);
        println!("  why: {}", proposal.explanation);
        if let Some(m) = proposal.metrics {
            println!(
                "  evidence: support={} coverage={:.1}% confidence={:.1}%",
                m.support, m.coverage_pct, m.confidence_pct
            );
        }

        // The scripted expert policy.
        let decision = if proposal.suspected_hallucination {
            println!("  expert: REJECT — references a property that does not exist\n");
            Feedback::Reject
        } else if let ConsistencyRule::PropertyRange { label, key, min, .. } = &proposal.rule {
            // The expert knows the real bound for ports.
            if key == "port" {
                let refined = ConsistencyRule::PropertyRange {
                    label: label.clone(),
                    key: key.clone(),
                    min: *min,
                    max: 65535,
                };
                println!("  expert: REFINE — tighten the upper bound to 65535\n");
                Feedback::Refine(refined)
            } else {
                println!("  expert: ACCEPT\n");
                Feedback::Accept
            }
        } else if proposal.metrics.is_some_and(|m| m.confidence_pct < 40.0) {
            println!("  expert: REJECT — too weakly supported to enforce\n");
            Feedback::Reject
        } else {
            println!("  expert: ACCEPT\n");
            Feedback::Accept
        };
        session.feedback(decision);
    }

    let (accepted, rejected, refined) = session.tally();
    println!("session done: {accepted} accepted, {rejected} rejected, {refined} refined");
    println!("\nfinal rule book:");
    for (rule, metrics) in session.accepted() {
        let score =
            metrics.map(|m| format!("{:.1}%", m.confidence_pct)).unwrap_or_else(|| "—".into());
        println!("  [{score}] {}", graph_rule_mining::rules::to_nl(rule));
    }
}
