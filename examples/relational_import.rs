//! Relational data → property graph → mined consistency rules.
//!
//! ```sh
//! cargo run --release --example relational_import
//! ```
//!
//! The paper's §5 claims the approach "is also applicable to flat
//! relational data … organized following key-foreign key
//! relationships". This example proves it end to end: a three-table
//! commerce schema (customers / products / orders) is exported as
//! CSV with deliberate defects, imported as a property graph, and run
//! through the same mining pipeline as the graph datasets.

use std::collections::HashMap;
use std::fmt::Write as _;

use graph_rule_mining::llm::{ModelKind, PromptStyle};
use graph_rule_mining::pipeline::{ContextStrategy, MiningPipeline, PipelineConfig};
use graph_rule_mining::relational::{import, ColumnType, Database, TableSchema};

fn main() {
    let db = Database::new()
        .table(
            TableSchema::new("Customer", "id")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("email", ColumnType::Text),
        )
        .table(
            TableSchema::new("Product", "id")
                .column("id", ColumnType::Int)
                .column("title", ColumnType::Text)
                .column("price", ColumnType::Float),
        )
        .table(
            TableSchema::new("Order", "id")
                .column("id", ColumnType::Int)
                .column("customer_id", ColumnType::Int)
                .column("product_id", ColumnType::Int)
                .column("quantity", ColumnType::Int)
                .column("placed_at", ColumnType::Timestamp)
                .foreign_key("customer_id", "Customer", "id", "PLACED_BY")
                .foreign_key("product_id", "Product", "id", "OF_PRODUCT"),
        );

    // Synthesise CSV exports with realistic defects: a customer with
    // no email, an order referencing a missing product, a duplicate
    // order id, and a negative quantity.
    let mut customers = String::from("id,name,email\n");
    for i in 0..40 {
        let email = if i == 7 { String::new() } else { format!("c{i}@example.com") };
        let _ = writeln!(customers, "{i},Customer {i},{email}");
    }
    let mut products = String::from("id,title,price\n");
    for i in 0..15 {
        let _ = writeln!(products, "{i},Product {i},{:.2}", 5.0 + i as f64);
    }
    let mut orders = String::from("id,customer_id,product_id,quantity,placed_at\n");
    for i in 0..120 {
        let id = if i == 50 { 49 } else { i }; // duplicate order id
        let product = if i == 33 { 999 } else { i % 15 }; // dangling FK
        let quantity = if i == 80 { -2 } else { 1 + i % 4 }; // negative
        let _ =
            writeln!(orders, "{id},{},{product},{quantity},{}", i % 40, 1_600_000_000 + i * 3600);
    }

    let mut data = HashMap::new();
    data.insert("Customer".to_owned(), customers);
    data.insert("Product".to_owned(), products);
    data.insert("Order".to_owned(), orders);

    let (graph, report) = import(&db, &data).expect("schema and CSV are consistent");
    println!(
        "imported {} nodes / {} edges; dangling FKs: {:?}; bad keys: {:?}\n",
        report.nodes, report.edges, report.dangling, report.bad_keys
    );

    // The same pipeline, unchanged, now mines the relational graph.
    let config = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::default_summary(),
        PromptStyle::FewShot,
    );
    let mined = MiningPipeline::new(config).run(&graph);
    println!(
        "mined {} rules in {:.1} simulated seconds:",
        mined.rule_count(),
        mined.mining_seconds
    );
    for outcome in &mined.rules {
        let metrics = outcome
            .metrics
            .map(|m| format!("cov={:.1}% conf={:.1}%", m.coverage_pct, m.confidence_pct))
            .unwrap_or_else(|| "unscored".to_owned());
        println!("  - {} ({metrics})", outcome.nl);
    }

    // The injected defects are findable with direct queries too.
    let dup = graph_rule_mining::cypher::execute(
        &graph,
        "MATCH (o:Order) WHERE o.id IS NOT NULL \
         WITH o.id AS id, COUNT(*) AS c WHERE c > 1 RETURN COUNT(*) AS dups",
    )
    .expect("query runs")
    .single_int()
    .unwrap_or(0);
    println!("\nduplicate order ids found by Cypher: {dup}");
}
