//! Temporal-consistency hunting on the Twitter graph.
//!
//! ```sh
//! cargo run --release --example twitter_temporal
//! ```
//!
//! The paper's introduction motivates rule mining with temporal
//! constraints: "a retweet can occur only after the original tweet
//! has been posted" and "users cannot follow themselves". This
//! example compares what the two model personas find on the Twitter
//! graph — Mixtral's complexity appetite is what surfaces the
//! temporal rule — then verifies the violations by hand with direct
//! Cypher.

use graph_rule_mining::cypher::execute;
use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::llm::{ModelKind, PromptStyle};
use graph_rule_mining::pipeline::{ContextStrategy, MiningPipeline, PipelineConfig};
use graph_rule_mining::rules::{ConsistencyRule, RuleComplexity};

fn main() {
    // 10% scale keeps the example fast while retaining thousands of
    // retweets (and the injected temporal violations).
    let data = generate(DatasetId::Twitter, &GenConfig { seed: 11, scale: 0.1, clean: false });
    let g = &data.graph;
    println!("Twitter graph: {} nodes, {} edges\n", g.node_count(), g.edge_count());

    for model in [ModelKind::Llama3, ModelKind::Mixtral] {
        let mut config = PipelineConfig::new(
            model,
            ContextStrategy::default_sliding_window(),
            PromptStyle::ZeroShot,
        );
        config.seed = 11;
        let report = MiningPipeline::new(config).run(g);
        let complex: Vec<_> =
            report.rules.iter().filter(|r| r.rule.complexity() != RuleComplexity::Schema).collect();
        println!(
            "{}: {} rules, {} beyond plain schema constraints",
            model.name(),
            report.rule_count(),
            complex.len()
        );
        for r in complex {
            let kind = match r.rule.complexity() {
                RuleComplexity::Temporal => "temporal",
                RuleComplexity::Pattern => "pattern ",
                RuleComplexity::Schema => unreachable!(),
            };
            println!("  [{kind}] {}", r.nl);
        }
        let temporal_found =
            report.rules.iter().any(|r| matches!(r.rule, ConsistencyRule::TemporalOrder { .. }));
        println!("  found the retweet-ordering rule: {temporal_found}\n");
    }

    // Verify the temporal rule directly, the way an analyst would.
    let violations = execute(
        g,
        "MATCH (rt:Tweet)-[:RETWEETS]->(t:Tweet) \
         WHERE rt.created_at < t.created_at RETURN COUNT(*) AS c",
    )
    .expect("query runs")
    .single_int()
    .unwrap_or(0);
    let total = execute(g, "MATCH (:Tweet)-[:RETWEETS]->(:Tweet) RETURN COUNT(*) AS c")
        .expect("query runs")
        .single_int()
        .unwrap_or(0);
    println!("retweets that predate their original: {violations} of {total}");

    let self_follows =
        execute(g, "MATCH (a:User)-[f:FOLLOWS]->(b:User) WHERE id(a) = id(b) RETURN COUNT(*) AS c")
            .expect("query runs")
            .single_int()
            .unwrap_or(0);
    println!("users following themselves: {self_follows}");
}
