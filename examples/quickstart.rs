//! Quickstart: mine consistency rules from a property graph in ~40
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small Twitter-like graph, runs the full mining pipeline
//! (incident encoding → sliding windows → simulated Llama-3 →
//! Cypher translation → correction → scoring), and prints every mined
//! rule with its metrics.

use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::llm::{ModelKind, PromptStyle};
use graph_rule_mining::pipeline::{ContextStrategy, MiningPipeline, PipelineConfig};

fn main() {
    // A 2%-scale Twitter graph (~870 nodes) keeps this instant.
    let data = generate(DatasetId::Twitter, &GenConfig { seed: 7, scale: 0.02, clean: false });
    println!("graph: {} nodes, {} edges", data.graph.node_count(), data.graph.edge_count());

    let config = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::default_sliding_window(),
        PromptStyle::ZeroShot,
    );
    let report = MiningPipeline::new(config).run(&data.graph);

    println!(
        "mined {} rules from {} windows in {:.1} simulated seconds\n",
        report.rule_count(),
        report.windows,
        report.mining_seconds
    );
    for outcome in &report.rules {
        println!("rule: {}", outcome.nl);
        println!("  cypher: {}", outcome.corrected_cypher);
        match outcome.metrics {
            Some(m) => println!(
                "  support={} coverage={:.1}% confidence={:.1}%",
                m.support, m.coverage_pct, m.confidence_pct
            ),
            None => println!("  (query could not be repaired — not scored)"),
        }
    }
    println!(
        "\ncypher correctness: {} ({} direction, {} hallucinated, {} syntax)",
        report.correctness.as_fraction(),
        report.correctness.direction,
        report.correctness.hallucinated,
        report.correctness.syntax
    );
}
