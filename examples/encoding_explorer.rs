//! Encoding explorer: how a property graph becomes LLM context.
//!
//! ```sh
//! cargo run --release --example encoding_explorer
//! ```
//!
//! Walks through the plumbing under the pipeline: the incident vs
//! adjacency encoders, the tokenizer, the sliding-window chunker with
//! its boundary effects, and RAG chunk retrieval — printing concrete
//! artefacts at every step so the Figure 2 mechanics are visible.

use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::pipeline::RAG_QUERY;
use graph_rule_mining::textenc::{
    chunk, encode_adjacency, encode_incident, token_count, GraphFragment, WindowConfig,
};
use graph_rule_mining::vecstore::{RagConfig, Retriever};

fn main() {
    let data = generate(DatasetId::Wwc2019, &GenConfig { seed: 3, scale: 0.05, clean: false });
    let g = &data.graph;
    println!("graph: {} nodes, {} edges\n", g.node_count(), g.edge_count());

    // 1. The two encoders.
    let incident = encode_incident(g);
    let adjacency = encode_adjacency(g);
    println!("incident encoding:  {} chars, {} tokens", incident.len(), token_count(&incident));
    println!("adjacency encoding: {} chars, {} tokens", adjacency.len(), token_count(&adjacency));
    println!("\nfirst incident lines:");
    for line in incident.lines().take(4) {
        println!("  {line}");
    }

    // 2. Sliding windows (paper defaults are 8000/500; we shrink them
    // so this small graph still produces several windows).
    let cfg = WindowConfig::new(1200, 100);
    let windows = chunk(&incident, cfg);
    println!(
        "\nsliding windows of {} tokens (overlap {}): {} windows, {} patterns broken",
        cfg.window_size,
        cfg.overlap,
        windows.len(),
        windows.broken_patterns
    );
    // Show the boundary effect: the start of window 1 is mid-element.
    if windows.len() > 1 {
        let w1 = &windows.windows[1];
        let first_line = w1.text.lines().next().unwrap_or("");
        println!("window 1 starts mid-stream: {:?}…", &first_line[..first_line.len().min(60)]);
        let frag = GraphFragment::parse(&w1.text);
        println!(
            "  parsing it recovers {} nodes / {} edges; {} fragment lines dropped",
            frag.nodes.len(),
            frag.edges.len(),
            frag.skipped_lines
        );
    }

    // 3. What the model actually "knows" inside one window.
    let frag = GraphFragment::parse(&windows.windows[0].text);
    let sketch = frag.sketch();
    println!("\nschema visible in window 0 alone:");
    print!("{}", sketch.summary());

    // 4. RAG: ingest + retrieve.
    let retriever = Retriever::ingest(&incident, RagConfig { chunk_tokens: 256, top_k: 3 });
    let retrieval = retriever.retrieve(RAG_QUERY);
    println!(
        "\nRAG: {} chunks ingested; the generic rule-mining query retrieves {} of them",
        retriever.chunk_count(),
        retrieval.chunks.len()
    );
    println!(
        "retrieved context covers {:.2}% of the graph's elements (scores: {:?})",
        100.0 * retrieval.coverage(),
        retrieval.scores.iter().map(|s| (s * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}
