//! Encoding-strategy comparison on the Cybersecurity graph.
//!
//! ```sh
//! cargo run --release --example cybersecurity_audit
//! ```
//!
//! Runs the same persona over both context strategies (Figure 2 of
//! the paper) on the active-directory graph, then inspects the two
//! rules §4.5 quotes for this dataset: `owned` must be boolean, and
//! `domain` must look like a domain name. This is the example to read
//! to understand *why* RAG underperforms: its retrieval coverage is
//! printed next to the quality gap it causes.

use graph_rule_mining::cypher::execute;
use graph_rule_mining::datasets::{generate, DatasetId, GenConfig};
use graph_rule_mining::llm::{ModelKind, PromptStyle};
use graph_rule_mining::pipeline::{ContextStrategy, MiningPipeline, PipelineConfig};

fn main() {
    let data = generate(DatasetId::Cybersecurity, &GenConfig::default());
    let g = &data.graph;
    println!("Cybersecurity graph: {} nodes, {} edges\n", g.node_count(), g.edge_count());

    for strategy in [ContextStrategy::default_sliding_window(), ContextStrategy::default_rag()] {
        let config = PipelineConfig::new(ModelKind::Llama3, strategy, PromptStyle::FewShot);
        let report = MiningPipeline::new(config).run(g);
        println!("{}:", report.strategy_name);
        println!(
            "  prompts={} mining={:.1}s rules={} coverage={:.1}% confidence={:.1}%",
            report.prompts,
            report.mining_seconds,
            report.rule_count(),
            report.aggregate.coverage_pct,
            report.aggregate.confidence_pct
        );
        if let Some(cov) = report.rag_coverage {
            println!(
                "  retrieval saw {:.2}% of the graph's elements — the paper's \
                 'incomplete context' failure mode",
                100.0 * cov
            );
        }
        if report.windows > 0 {
            println!(
                "  {} windows, {} patterns broken across window boundaries",
                report.windows, report.broken_patterns
            );
        }
        println!();
    }

    // The §4.5 rules, checked directly.
    println!("paper rule 1: \"The owned property should only be True or False\"");
    let bad_owned = execute(
        g,
        "MATCH (c:Computer) WHERE c.owned IS NOT NULL \
         AND NOT (c.owned IN [true, false]) RETURN COUNT(*) AS c",
    )
    .expect("query runs")
    .single_int()
    .unwrap_or(0);
    println!("  computers with a non-boolean owned value: {bad_owned}");

    println!("paper rule 2: \"The domain property should match the domain format\"");
    let query = concat!(
        "MATCH (c:Computer) WHERE c.domain IS NOT NULL ",
        r"AND NOT (c.domain =~ '^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$') ",
        "RETURN COUNT(*) AS c",
    );
    let bad_domains = execute(g, query).expect("query runs").single_int().unwrap_or(0);
    println!("  computers with a malformed domain: {bad_domains}");
}
