//! Integration tests for the serving layer: admission gates,
//! breaker trip/half-open, deadline cancellation, WAL crash
//! recovery, kill/resume byte-identity, and the HTTP front end.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use grm_datasets::{generate, DatasetId, GenConfig};
use grm_rules::ConsistencyRule;
use grm_serve::{
    baseline_harness, http_request, route, serve_http, state, JobSpec, Rejection, Request,
    ServeConfig, Service,
};

static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh spool directory per test, cleaned before use.
fn fresh_spool(tag: &str) -> PathBuf {
    let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("grm-serve-test-{}-{tag}-{seq}", std::process::id()));
    if path.exists() {
        std::fs::remove_dir_all(&path).unwrap();
    }
    path
}

fn small_dataset() -> (grm_pgraph::PropertyGraph, Vec<ConsistencyRule>) {
    let dataset = generate(DatasetId::Wwc2019, &GenConfig { seed: 42, scale: 0.05, clean: true });
    (dataset.graph, dataset.ground_truth)
}

fn det_config(spool: PathBuf) -> ServeConfig {
    ServeConfig { deterministic: true, spool, ..ServeConfig::default() }
}

fn spec(tenant: &str, kind: &str) -> JobSpec {
    JobSpec { tenant: tenant.into(), kind: kind.into(), ..JobSpec::default() }
}

#[test]
fn queue_bound_sheds_instead_of_buffering() {
    let (graph, rules) = small_dataset();
    let config = ServeConfig {
        queue_depth: 2,
        rate_limit: 0.0,
        burst: 100.0,
        ..det_config(fresh_spool("queue"))
    };
    let service = Service::open(graph, rules, config, None).unwrap();
    assert!(service.submit(spec("t", "check")).is_ok());
    assert!(service.submit(spec("t", "check")).is_ok());
    assert_eq!(service.submit(spec("t", "check")), Err(Rejection::QueueFull));
    let stats = service.stats();
    assert_eq!(stats.shed_queue_full, 1);
    assert_eq!(stats.queue_depth_peak, 2);
    assert_eq!(stats.queue_depth_limit, 2);
    service.run_pending();
    // Depth never exceeded the bound, and draining the queue reopens
    // admission.
    assert!(service.submit(spec("t", "check")).is_ok());
    service.run_pending();
    let stats = service.stats();
    assert!(stats.queue_depth_peak <= stats.queue_depth_limit);
}

#[test]
fn token_bucket_rate_limits_per_tenant() {
    let (graph, rules) = small_dataset();
    let config = ServeConfig {
        queue_depth: 64,
        rate_limit: 1.0,
        burst: 2.0,
        ..det_config(fresh_spool("rate"))
    };
    let service = Service::open(graph, rules, config, None).unwrap();
    assert!(service.submit(spec("a", "check")).is_ok());
    assert!(service.submit(spec("a", "check")).is_ok());
    assert_eq!(service.submit(spec("a", "check")), Err(Rejection::RateLimited));
    // Another tenant has its own bucket.
    assert!(service.submit(spec("b", "check")).is_ok());
    // The logical clock refills tenant a.
    service.advance_seconds(1.0);
    assert!(service.submit(spec("a", "check")).is_ok());
    assert_eq!(service.stats().shed_rate_limited, 1);
    service.run_pending();
}

#[test]
fn invalid_specs_are_rejected_up_front() {
    let (graph, _) = small_dataset();
    let service =
        Service::open(graph, Vec::new(), det_config(fresh_spool("invalid")), None).unwrap();
    for bad in [
        spec("", "check"),
        spec("t", "rewrite-history"),
        spec("t", "check"),   // no rule book loaded
        spec("t", "explain"), // missing rule/source
        JobSpec { kill_after: Some(2), ..spec("t", "mine") }, // kill without chaos
    ] {
        let result = service.submit(bad.clone());
        assert!(matches!(result, Err(Rejection::Invalid(_))), "{bad:?}: {result:?}");
    }
    assert_eq!(service.stats().rejected_invalid, 5);
}

#[test]
fn failing_tenant_trips_breaker_then_half_opens() {
    let (graph, rules) = small_dataset();
    let config = ServeConfig {
        queue_depth: 64,
        rate_limit: 1000.0,
        burst: 1000.0,
        breaker_threshold: 3,
        ..det_config(fresh_spool("breaker"))
    };
    let service = Service::open(graph, rules, config, None).unwrap();
    // Deadline-busting checks fail (cancelled) and feed the breaker.
    let tiny = || JobSpec { deadline_seconds: Some(0.01), ..spec("m", "check") };
    for _ in 0..3 {
        service.submit(tiny()).unwrap();
        service.run_pending();
    }
    let stats = service.stats();
    assert_eq!(stats.cancelled, 3);
    assert_eq!(stats.breaker_trips, 1, "trips at threshold consecutive failures");
    // Open: refuses 2·threshold submissions.
    for i in 0..6 {
        assert_eq!(service.submit(spec("m", "check")), Err(Rejection::BreakerOpen), "refusal {i}");
    }
    assert_eq!(service.stats().rejected_breaker_open, 6);
    // Half-open: a probe is admitted; success closes the breaker.
    let probe = service.submit(spec("m", "check")).expect("half-open probe");
    service.run_pending();
    assert_eq!(service.job(probe).unwrap().state, state::COMPLETED);
    assert!(service.submit(spec("m", "check")).is_ok(), "breaker closed after good probe");
    service.run_pending();
    // Other tenants were never affected.
    assert!(service.submit(spec("bystander", "check")).is_ok());
    service.run_pending();
}

#[test]
fn check_deadline_cancels_mid_job_with_progress_detail() {
    let (graph, rules) = small_dataset();
    assert!(rules.len() >= 2, "need a multi-rule book");
    let service =
        Service::open(graph, rules.clone(), det_config(fresh_spool("deadline")), None).unwrap();
    // Budget for exactly one rule (0.25 sim-seconds each).
    let id = service.submit(JobSpec { deadline_seconds: Some(0.3), ..spec("t", "check") }).unwrap();
    service.run_pending();
    let status = service.job(id).unwrap();
    assert_eq!(status.state, state::CANCELLED);
    assert!(status.detail.contains(&format!("after 1 of {} rule(s)", rules.len())), "{status:?}");
    // An uncapped check completes.
    let id = service.submit(spec("t", "check")).unwrap();
    service.run_pending();
    assert_eq!(service.job(id).unwrap().state, state::COMPLETED);
}

#[test]
fn mine_jobs_complete_and_explain_reads_their_journal() {
    let (graph, rules) = small_dataset();
    let service = Service::open(graph, rules, det_config(fresh_spool("mine")), None).unwrap();
    let mine = service.submit(JobSpec { seed: Some(42), ..spec("t", "mine") }).unwrap();
    service.run_pending();
    let status = service.job(mine).unwrap();
    assert_eq!(status.state, state::COMPLETED, "{status:?}");
    assert!(status.rules_mined > 0, "{status:?}");
    assert!(service.job_journal_path(mine).exists());
    let explain = service
        .submit(JobSpec { rule: Some("rule-0".into()), source: Some(mine), ..spec("t", "explain") })
        .unwrap();
    service.run_pending();
    let status = service.job(explain).unwrap();
    assert_eq!(status.state, state::COMPLETED, "{status:?}");
    assert!(!status.detail.is_empty());
    // Explaining from a job that never ran fails cleanly.
    let bad = service
        .submit(JobSpec { rule: Some("rule-0".into()), source: Some(999), ..spec("t", "explain") })
        .unwrap();
    service.run_pending();
    assert_eq!(service.job(bad).unwrap().state, state::FAILED);
}

#[test]
fn restart_requeues_incomplete_jobs_from_the_wal() {
    let (graph, rules) = small_dataset();
    let spool = fresh_spool("restart");
    let config = det_config(spool.clone());
    let service = Service::open(graph.clone(), rules.clone(), config.clone(), None).unwrap();
    let done = service.submit(spec("t", "check")).unwrap();
    service.run_pending();
    let pending = service.submit(spec("t", "check")).unwrap();
    // Crash before the queued job runs: drop without drain.
    drop(service);
    let service = Service::open(graph, rules, config, None).unwrap();
    assert!(service.job(done).is_none(), "terminal jobs are not re-queued");
    let requeued = service.job(pending).expect("incomplete job re-queued");
    assert_eq!(requeued.state, state::QUEUED);
    assert_eq!(requeued.detail, "re-queued after restart");
    service.run_pending();
    assert_eq!(service.job(pending).unwrap().state, state::COMPLETED);
    // New ids continue after the replayed ones — never reused.
    let next = service.submit(spec("t", "check")).unwrap();
    assert!(next > pending);
    service.run_pending();
    service.drain();
    // A cleanly drained WAL re-queues nothing.
    let wal = std::fs::read_to_string(spool.join("jobs.wal")).unwrap();
    let replay = grm_serve::replay_wal(&wal);
    assert!(replay.clean_shutdown);
    assert!(replay.incomplete().is_empty());
}

#[test]
fn killed_mine_job_resumes_to_byte_identical_journal() {
    let (graph, rules) = small_dataset();
    let chaos_config =
        |spool: PathBuf| ServeConfig { fault_rate: 0.2, fault_seed: 7, ..det_config(spool) };
    // Interrupted run: killed after 2 units, then "crash", then a
    // restart resumes from the checkpoint journal.
    let spool_a = fresh_spool("resume-a");
    let config = chaos_config(spool_a.clone());
    let service = Service::open(graph.clone(), rules.clone(), config.clone(), None).unwrap();
    let id = service
        .submit(JobSpec { seed: Some(44), kill_after: Some(2), ..spec("t", "mine") })
        .unwrap();
    service.run_pending();
    let status = service.job(id).unwrap();
    assert_eq!(status.state, state::INTERRUPTED, "{status:?}");
    drop(service);
    let service = Service::open(graph.clone(), rules.clone(), config, None).unwrap();
    assert_eq!(service.stats().resumed, 1);
    service.run_pending();
    let resumed = service.job(id).unwrap();
    assert_eq!(resumed.state, state::COMPLETED, "{resumed:?}");
    // Reference run: the same job id and seed on a fresh spool,
    // never killed. Same id ⇒ same per-job fault seed ⇒ identical
    // chaos schedule, so the journals must match byte for byte.
    // `graph.clone()` (not the moved original): footprint telemetry
    // records exact allocation sizes, and clones allocate exactly, so
    // only clone-vs-clone journals are comparable byte-for-byte.
    let spool_b = fresh_spool("resume-b");
    let twin = Service::open(graph.clone(), rules, chaos_config(spool_b.clone()), None).unwrap();
    let twin_id = twin.submit(JobSpec { seed: Some(44), ..spec("t", "mine") }).unwrap();
    assert_eq!(twin_id, id, "twin must get the same job id");
    twin.run_pending();
    assert_eq!(twin.job(twin_id).unwrap().state, state::COMPLETED);
    let resumed_journal = std::fs::read(spool_a.join(format!("job-{id}.jsonl"))).unwrap();
    let reference_journal = std::fs::read(spool_b.join(format!("job-{id}.jsonl"))).unwrap();
    assert!(!resumed_journal.is_empty());
    assert_eq!(resumed_journal, reference_journal, "kill/resume must converge byte-identically");
}

#[test]
fn routes_cover_the_job_lifecycle() {
    let (graph, rules) = small_dataset();
    let service = Service::open(graph, rules, det_config(fresh_spool("routes")), None).unwrap();
    let request = |method: &str, path: &str, body: &str| Request {
        method: method.into(),
        path: path.into(),
        body: body.into(),
    };
    let (status, body, drain) =
        route(&service, &request("POST", "/jobs", r#"{"tenant":"t","kind":"check"}"#));
    assert_eq!((status, drain), (202, false), "{body}");
    assert_eq!(body, "{\"job\":1}");
    service.run_pending();
    let (status, body, _) = route(&service, &request("GET", "/jobs/1", ""));
    assert_eq!(status, 200);
    assert!(body.contains("\"completed\""), "{body}");
    let (status, _, _) = route(&service, &request("GET", "/jobs/999", ""));
    assert_eq!(status, 404);
    let (status, body, _) = route(&service, &request("GET", "/stats", ""));
    assert_eq!(status, 200);
    assert!(body.contains("\"accepted\":1"), "{body}");
    let (status, body, _) = route(&service, &request("GET", "/healthz", ""));
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    // No hub attached: /metrics is a clean 404, not a panic.
    let (status, _, _) = route(&service, &request("GET", "/metrics", ""));
    assert_eq!(status, 404);
    let (status, body, _) =
        route(&service, &request("POST", "/jobs", r#"{"tenant":"","kind":"check"}"#));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"reason\":\"invalid\""), "{body}");
    let (status, _, _) = route(&service, &request("GET", "/nope", ""));
    assert_eq!(status, 404);
    let (status, _, _) = route(&service, &request("DELETE", "/jobs/1", ""));
    assert_eq!(status, 405);
    let (status, _, drain) = route(&service, &request("POST", "/shutdown", ""));
    assert_eq!((status, drain), (202, true));
    service.drain();
    let (status, body, _) = route(&service, &request("GET", "/healthz", ""));
    assert_eq!(status, 503);
    assert!(body.contains("\"draining\""), "{body}");
    let (status, body, _) =
        route(&service, &request("POST", "/jobs", r#"{"tenant":"t","kind":"check"}"#));
    assert_eq!(status, 503, "{body}");
}

#[test]
fn http_server_end_to_end_with_worker_and_drain() {
    let (graph, rules) = small_dataset();
    // Wall-clock mode, generous limits: this test exercises the
    // socket plumbing, not admission.
    let config = ServeConfig {
        rate_limit: 1000.0,
        burst: 1000.0,
        spool: fresh_spool("http"),
        ..ServeConfig::default()
    };
    let service = Service::open(graph, rules, config, None).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || while service.execute_next(true) {})
    };
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_http(service, listener))
    };
    let (status, body) =
        http_request(&addr, "POST", "/jobs", r#"{"tenant":"t","kind":"check"}"#).unwrap();
    assert_eq!(status, 202, "{body}");
    assert_eq!(body, "{\"job\":1}");
    // Poll until the worker settles the job.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let (status, body) = http_request(&addr, "GET", "/jobs/1", "").unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed: grm_serve::JobStatus = serde_json::from_str(&body).unwrap();
        if state::is_settled(&parsed.state) {
            assert_eq!(parsed.state, state::COMPLETED, "{parsed:?}");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never settled");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let (status, body) = http_request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404, "{body}");
    let (status, body) = http_request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 202, "{body}");
    server.join().unwrap().unwrap();
    worker.join().unwrap();
    let stats = service.stats();
    assert!(stats.draining);
    assert_eq!(stats.completed, 1);
}

#[test]
fn baseline_harness_is_deterministic_and_shows_every_gate() {
    let root = fresh_spool("harness");
    std::fs::create_dir_all(&root).unwrap();
    let first = baseline_harness(0.05, root.clone()).unwrap();
    let second = baseline_harness(0.05, root.clone()).unwrap();
    assert_eq!(first, second, "harness digest must be reproducible");
    assert!(first.check(&second).is_empty());
    // The scripted scenario exercises every failure gate.
    assert!(first.shed_queue_full > 0);
    assert!(first.shed_rate_limited > 0);
    assert!(first.rejected_breaker_open > 0);
    assert!(first.breaker_trips > 0);
    assert_eq!(first.jobs_resumed, 1);
    assert_eq!(first.jobs_interrupted, 1);
    assert!(first.rules_mined > 0);
    assert!(first.queue_depth_peak <= 4);
    // Accounting closes: every accepted job reached a settled state.
    // The resumed job settles twice (interrupted, then completed
    // after the restart) but was accepted once.
    assert_eq!(
        first.jobs_accepted + first.jobs_resumed,
        first.jobs_completed + first.jobs_failed + first.jobs_cancelled + first.jobs_interrupted,
        "{first:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
