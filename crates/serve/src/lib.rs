//! `grm-serve` — the failure-first serving layer.
//!
//! Exposes mine / check / explain jobs over a shared immutable
//! [`grm_pgraph::PropertyGraph`] snapshot, designed around the
//! assumption that overload, abusive tenants, and crashes are the
//! normal case:
//!
//! - **Bounded admission.** Jobs enter a fixed-depth queue; a full
//!   queue sheds with 429 instead of buffering unboundedly.
//! - **Per-tenant rate limits.** A deterministic token bucket per
//!   tenant (429 `rate_limited` when empty).
//! - **Per-tenant circuit breakers.** A tenant whose jobs repeatedly
//!   fail or blow their deadline trips a `grm-resil` [`grm_resil::Breaker`]
//!   and is refused (403) for the 2N-skip cooldown, then half-opens.
//! - **Deadline propagation.** `deadline_seconds` on the request
//!   becomes a [`grm_resil::DeadlineBudget`] over simulated stage
//!   time — slow jobs are cancelled, never wedged.
//! - **Crash safety.** Every admission and transition appends to a
//!   JSONL job WAL in the spool directory; a killed server re-queues
//!   incomplete jobs on restart and resumes mine jobs from their
//!   checkpoint journals via `ResumeState::from_journal`, converging
//!   to byte-identical run journals.
//! - **Graceful shutdown.** `POST /shutdown` drains in-flight jobs,
//!   journals a clean `drained` marker, and flushes telemetry.
//!
//! The [`baseline_harness`] scripts all of the above deterministically
//! for the committed `BENCH_serve.json` gate.

mod harness;
mod http;
mod job;
mod service;

pub use harness::{baseline_harness, ServeBaseline};
pub use http::{http_request, route, serve_http, Request};
pub use job::{
    replay_wal, state, JobRecord, JobSpec, JobStatus, TokenBucket, WalReplay, WAL_ACCEPTED,
    WAL_DRAINED,
};
pub use service::{Rejection, ServeConfig, ServeStats, Service, CHECK_RULE_SIM_SECONDS};
