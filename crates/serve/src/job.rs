//! Job model of the serving layer: specs, statuses, the WAL record
//! shape, and the per-tenant token bucket.
//!
//! Everything here is plain data with serde derives — the [`crate::Service`]
//! owns the behavior. The WAL is deliberately a flat JSONL stream of
//! [`JobRecord`]s (the same append-one-line-per-transition discipline
//! as the run journal): replay is lossy, so a record torn by a crash
//! costs that one line, never the file.

use std::collections::BTreeMap;

/// What a client asks the service to do. Arrives as the JSON body of
/// `POST /jobs` and is persisted verbatim (JSON-in-string) in the
/// job's `accepted` WAL record, so a restarted server re-queues
/// exactly what was admitted.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Tenant the job is billed to — rate limits and circuit breakers
    /// are per tenant. Required (empty is rejected as invalid).
    #[serde(default)]
    pub tenant: String,
    /// `mine`, `check`, or `explain`.
    #[serde(default)]
    pub kind: String,
    /// Mining seed (mine jobs; defaults to 42).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Simulated-seconds budget for the whole job. Propagated to
    /// per-stage deadlines via `DeadlineBudget`; a job whose
    /// simulated time exceeds the budget is cancelled, not wedged.
    #[serde(default)]
    pub deadline_seconds: Option<f64>,
    /// Deterministic mid-mine kill after N units (mine jobs; the
    /// crash-drill hook, mirrors `grm mine --kill-after`).
    #[serde(default)]
    pub kill_after: Option<usize>,
    /// Rule id to explain (explain jobs), e.g. `rule-0`.
    #[serde(default)]
    pub rule: Option<String>,
    /// Job id of the mine run whose journal the explanation reads
    /// (explain jobs).
    #[serde(default)]
    pub source: Option<u64>,
}

/// Job lifecycle states, used both in [`JobStatus::state`] and as the
/// WAL `event` vocabulary (plus `accepted` and the run-level
/// `drained` marker).
pub mod state {
    pub const QUEUED: &str = "queued";
    pub const RUNNING: &str = "running";
    pub const COMPLETED: &str = "completed";
    pub const FAILED: &str = "failed";
    pub const CANCELLED: &str = "cancelled";
    /// Killed mid-run (crash drill or process death) — not terminal:
    /// a restart re-queues the job and resumes from its checkpoints.
    pub const INTERRUPTED: &str = "interrupted";

    /// True when `s` is a final state a waiter can stop polling on.
    /// `interrupted` counts: within one server lifetime the job will
    /// not progress further — only a restart re-queues it.
    pub fn is_settled(s: &str) -> bool {
        matches!(s, COMPLETED | FAILED | CANCELLED | INTERRUPTED)
    }

    /// True when `s` means the job will never run again on any
    /// server instance (so WAL replay must not re-queue it).
    pub fn is_terminal(s: &str) -> bool {
        matches!(s, COMPLETED | FAILED | CANCELLED)
    }
}

/// Externally visible state of one job (`GET /jobs/<id>`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobStatus {
    pub id: u64,
    pub tenant: String,
    pub kind: String,
    /// One of the [`state`] constants.
    pub state: String,
    /// Human-readable result digest or failure reason.
    #[serde(default)]
    pub detail: String,
    /// Rules mined (completed mine jobs).
    #[serde(default)]
    pub rules_mined: u64,
}

/// One WAL line. `event` is `accepted` (detail = the JSON-encoded
/// [`JobSpec`]), a [`state`] transition, or `drained` (job 0) — the
/// clean-shutdown marker a graceful drain appends last.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobRecord {
    pub event: String,
    #[serde(default)]
    pub job: u64,
    #[serde(default)]
    pub tenant: String,
    #[serde(default)]
    pub kind: String,
    #[serde(default)]
    pub detail: String,
}

/// The `drained` WAL marker event.
pub const WAL_DRAINED: &str = "drained";
/// The `accepted` WAL admission event.
pub const WAL_ACCEPTED: &str = "accepted";

/// What a WAL replay recovered.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every accepted job in id order: its spec and last seen event.
    pub jobs: BTreeMap<u64, (JobSpec, String)>,
    /// First id a restarted server may hand out.
    pub next_id: u64,
    /// Lines that failed to parse (torn tail, corrupt bytes) — lossy,
    /// never fatal.
    pub corrupt_lines: u64,
    /// True when the stream ends in a `drained` marker (the previous
    /// instance shut down cleanly).
    pub clean_shutdown: bool,
}

impl WalReplay {
    /// Jobs with no terminal transition — what a restart re-queues,
    /// in id order.
    pub fn incomplete(&self) -> Vec<(u64, JobSpec)> {
        self.jobs
            .iter()
            .filter(|(_, (_, last))| !state::is_terminal(last))
            .map(|(id, (spec, _))| (*id, spec.clone()))
            .collect()
    }
}

/// Lossy WAL replay: parses every line it can, tracks the last event
/// per job, and recovers the admitted spec from each `accepted`
/// record. A job whose `accepted` line is lost (corrupt) is gone —
/// by WAL discipline it was never acknowledged to the client.
pub fn replay_wal(text: &str) -> WalReplay {
    let mut replay = WalReplay::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(record) = serde_json::from_str::<JobRecord>(line) else {
            replay.corrupt_lines += 1;
            continue;
        };
        replay.clean_shutdown = record.event == WAL_DRAINED;
        if record.event == WAL_DRAINED {
            continue;
        }
        if record.event == WAL_ACCEPTED {
            let spec = serde_json::from_str::<JobSpec>(&record.detail).unwrap_or(JobSpec {
                tenant: record.tenant.clone(),
                kind: record.kind.clone(),
                ..JobSpec::default()
            });
            replay.next_id = replay.next_id.max(record.job + 1);
            replay.jobs.insert(record.job, (spec, WAL_ACCEPTED.to_owned()));
        } else if let Some((_, last)) = replay.jobs.get_mut(&record.job) {
            *last = record.event;
        }
    }
    replay
}

/// A deterministic token bucket: `rate` tokens per second up to
/// `burst`, measured on whatever clock the service feeds it (logical
/// seconds in deterministic mode, wall seconds in server mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(rate: f64, burst: f64, now: f64) -> TokenBucket {
        let burst = burst.max(0.0);
        TokenBucket { rate: rate.max(0.0), burst, tokens: burst, last: now }
    }

    /// Takes one token if available at time `now`; `false` means the
    /// caller is rate-limited.
    pub fn try_take(&mut self, now: f64) -> bool {
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_drains_and_refills() {
        let mut b = TokenBucket::new(2.0, 3.0, 0.0);
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "burst exhausted");
        assert!(!b.try_take(0.4), "0.8 tokens refilled, still below 1");
        assert!(b.try_take(0.6), "1.2 tokens refilled");
        // Refill caps at burst.
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(b.try_take(100.0));
        assert!(!b.try_take(100.0));
    }

    #[test]
    fn wal_replay_recovers_incomplete_jobs_lossily() {
        let spec = JobSpec { tenant: "a".into(), kind: "mine".into(), ..JobSpec::default() };
        let spec_json = serde_json::to_string(&spec).unwrap();
        let rec = |event: &str, job: u64, detail: &str| {
            serde_json::to_string(&JobRecord {
                event: event.into(),
                job,
                tenant: "a".into(),
                kind: "mine".into(),
                detail: detail.into(),
            })
            .unwrap()
        };
        let wal = [
            rec(WAL_ACCEPTED, 1, &spec_json),
            rec(state::RUNNING, 1, ""),
            rec(state::COMPLETED, 1, "ok"),
            rec(WAL_ACCEPTED, 2, &spec_json),
            rec(state::INTERRUPTED, 2, "killed"),
            rec(WAL_ACCEPTED, 3, &spec_json),
            "{torn line".to_owned(),
        ]
        .join("\n");
        let replay = replay_wal(&wal);
        assert_eq!(replay.corrupt_lines, 1);
        assert_eq!(replay.next_id, 4);
        assert!(!replay.clean_shutdown);
        let incomplete = replay.incomplete();
        let ids: Vec<u64> = incomplete.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3], "interrupted and never-started jobs re-queue; completed not");
        assert_eq!(incomplete[0].1, spec);
    }

    #[test]
    fn wal_replay_notices_a_clean_shutdown() {
        let wal = format!(
            "{}\n",
            serde_json::to_string(&JobRecord {
                event: WAL_DRAINED.into(),
                job: 0,
                tenant: String::new(),
                kind: String::new(),
                detail: String::new(),
            })
            .unwrap()
        );
        assert!(replay_wal(&wal).clean_shutdown);
        // A drained marker only counts when it is the last event.
        let more = format!(
            "{wal}{}\n",
            serde_json::to_string(&JobRecord {
                event: WAL_ACCEPTED.into(),
                job: 1,
                tenant: "t".into(),
                kind: "check".into(),
                detail: "{}".into(),
            })
            .unwrap()
        );
        assert!(!replay_wal(&more).clean_shutdown);
    }

    #[test]
    fn job_spec_round_trips() {
        let spec = JobSpec {
            tenant: "alice".into(),
            kind: "mine".into(),
            seed: Some(7),
            deadline_seconds: Some(120.5),
            kill_after: Some(2),
            rule: None,
            source: None,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
