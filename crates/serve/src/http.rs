//! Minimal std-only HTTP front end for the job service, plus the
//! tiny client the CLI verbs and the load drill use.
//!
//! Same defensive posture as the hardened metrics listener: request
//! heads are read under a byte cap, bodies only up to a bounded
//! `Content-Length`, unknown routes get 404, wrong methods 405, and
//! a malformed request can never wedge the accept loop (each
//! connection is handled on its own thread with read timeouts).
//!
//! Routes:
//!
//! | route            | method | semantics                                   |
//! |------------------|--------|---------------------------------------------|
//! | `/jobs`          | POST   | submit a [`JobSpec`]; 202 `{"job": id}`     |
//! | `/jobs/<id>`     | GET    | job status JSON                             |
//! | `/stats`         | GET    | [`crate::ServeStats`] JSON                  |
//! | `/healthz`       | GET    | liveness/readiness (503 while draining)     |
//! | `/metrics`       | GET    | Prometheus exposition from the metrics hub  |
//! | `/shutdown`      | POST   | graceful drain, then the server exits       |

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::job::JobSpec;
use crate::service::Service;

/// Byte cap on a request head (request line + headers).
const HEAD_CAP: usize = 8 * 1024;
/// Byte cap on a request body.
const BODY_CAP: usize = 64 * 1024;

/// One parsed (and capped) HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Reads and parses one request from `stream` under the head/body
/// caps. `Err` is the HTTP status + message to answer with.
fn read_request(stream: &mut TcpStream) -> Result<Request, (u16, String)> {
    let mut head = Vec::new();
    let mut body = Vec::new();
    let mut buf = [0u8; 1024];
    let split_at = loop {
        if let Some(pos) = head.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if head.len() >= HEAD_CAP {
            return Err((400, "request head exceeds cap".into()));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err((400, "connection closed mid-request".into())),
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err((400, format!("read error: {e}"))),
        }
    };
    body.extend_from_slice(&head[split_at + 4..]);
    head.truncate(split_at);
    let head_text = String::from_utf8_lossy(&head).to_string();
    let mut lines = head_text.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err((400, "malformed request line".into()));
    };
    if !version.starts_with("HTTP/") || parts.next().is_some() {
        return Err((400, "malformed request line".into()));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| (400, "bad Content-Length".to_owned()))?;
            }
        }
    }
    if content_length > BODY_CAP {
        return Err((413, format!("body exceeds the {BODY_CAP} byte cap")));
    }
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => return Err((400, "connection closed mid-body".into())),
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e) => return Err((400, format!("read error: {e}"))),
        }
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_owned(),
        path: target.split('?').next().unwrap_or(target).to_owned(),
        body: String::from_utf8_lossy(&body).to_string(),
    })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status_text(status),
        body.len(),
        body
    );
}

/// JSON string literal (quotes + escapes) for hand-rolled bodies —
/// the vendored serde_json has no `json!` macro.
fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_owned()).unwrap_or_else(|_| "\"\"".into())
}

fn error_body(reason: &str, message: &str) -> String {
    format!("{{\"error\":{},\"reason\":{}}}", json_str(message), json_str(reason))
}

/// Routes one request. Split from the socket loop so tests can drive
/// it with a synthetic [`Request`]. Returns `(status, body)`; the
/// bool asks the caller to start a graceful drain after responding.
pub fn route(service: &Arc<Service>, request: &Request) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => match serde_json::from_str::<JobSpec>(&request.body) {
            Err(e) => (400, error_body("invalid", &format!("bad job spec: {e}")), false),
            Ok(spec) => match service.submit(spec) {
                Ok(id) => (202, format!("{{\"job\":{id}}}"), false),
                Err(rejection) => (
                    rejection.http_status(),
                    error_body(rejection.reason(), &rejection.message()),
                    false,
                ),
            },
        },
        ("GET", path) if path.starts_with("/jobs/") => {
            match path["/jobs/".len()..].parse::<u64>().ok().and_then(|id| service.job(id)) {
                Some(status) => (200, serde_json::to_string(&status).unwrap_or_default(), false),
                None => (404, error_body("not_found", "no such job"), false),
            }
        }
        ("GET", "/stats") => {
            (200, serde_json::to_string(&service.stats()).unwrap_or_default(), false)
        }
        ("GET", "/healthz") => {
            let stats = service.stats();
            let status = if stats.draining { 503 } else { 200 };
            let body = format!(
                "{{\"status\":\"{}\",\"queue_depth\":{},\"queue_depth_limit\":{},\"running\":{}}}",
                if stats.draining { "draining" } else { "ok" },
                stats.queue_depth,
                stats.queue_depth_limit,
                stats.running
            );
            (status, body, false)
        }
        ("GET", "/metrics") => match service.exposition() {
            Some(text) => (200, text, false),
            None => (404, error_body("not_found", "no metrics hub attached"), false),
        },
        ("POST", "/shutdown") => {
            (202, error_body("draining", "draining; server exits when idle"), true)
        }
        ("GET", _) | ("POST", _) => (404, error_body("not_found", "unknown route"), false),
        _ => (405, error_body("method_not_allowed", "use GET or POST"), false),
    }
}

/// Serves `service` on `listener` until a `POST /shutdown` drain
/// completes. Thread per connection; blocks the calling thread.
pub fn serve_http(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                handles.push(std::thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                    match read_request(&mut stream) {
                        Err((status, message)) => {
                            respond(&mut stream, status, &error_body("bad_request", &message))
                        }
                        Ok(request) => {
                            let (status, body, drain) = route(&service, &request);
                            respond(&mut stream, status, &body);
                            if drain {
                                // Drain after answering so the client
                                // is not held for the whole drain.
                                service.drain();
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
        // Reap finished connection threads so a long-lived server
        // does not accumulate handles.
        handles.retain(|h| !h.is_finished());
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Tiny blocking HTTP client: one request, one response. Returns
/// `(status, body)`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed response: {response:.60}")))?;
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}
