//! The failure-first job service: bounded queue, per-tenant
//! admission, deadline propagation, crash-safe WAL, and worker
//! execution through the resilient pipeline.
//!
//! Design rules, in admission order:
//!
//! 1. a draining server accepts nothing (503);
//! 2. a tenant whose jobs repeatedly fail is circuit-broken — the
//!    shared [`grm_resil::Breaker`] trips after `breaker_threshold`
//!    consecutive failures, refuses the next `2·threshold`
//!    submissions, then half-opens on a probe (403);
//! 3. a token bucket per tenant sheds bursts (429 `rate_limited`);
//! 4. the job queue is a hard bound — when full the submission is
//!    shed (429 `queue_full`), never buffered without limit.
//!
//! Only after all four gates does the job get an id, and the id is
//! acknowledged only after its `accepted` record is flushed to the
//! WAL — an accepted job survives `kill -9` by construction. Restart
//! replays the WAL, re-queues every job without a terminal record,
//! and mine jobs resume from their partial journals through
//! [`ResumeState::from_journal`], converging to the byte-identical
//! journal an uninterrupted run would have written.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use grm_core::{
    ContextStrategy, MiningPipeline, PipelineConfig, Resilience, ResumeState, RunStatus,
};
use grm_llm::{ModelKind, PromptStyle};
use grm_metrics::evaluate_labeled;
use grm_obs::{explain_rule, EventSink, MetricsHub, Recorder, RunJournal, Scope, TelemetryEvent};
use grm_pgraph::PropertyGraph;
use grm_resil::{mix, Breaker, ChaosConfig, DeadlineBudget, FaultPlan, Stage};
use grm_rules::{reference_queries, ConsistencyRule};

use crate::job::{
    replay_wal, state, JobRecord, JobSpec, JobStatus, TokenBucket, WAL_ACCEPTED, WAL_DRAINED,
};

/// Simulated seconds one rule evaluation charges against a check
/// job's deadline budget (the modelled query cost; evaluation is not
/// an LLM call, so it has no measured Table 5 latency of its own).
pub const CHECK_RULE_SIM_SECONDS: f64 = 0.25;

/// Server-side configuration for a [`Service`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Hard bound on queued (not yet running) jobs.
    pub queue_depth: usize,
    /// Worker threads (used by the CLI; the service itself only
    /// executes on whatever threads call [`Service::execute_next`]).
    pub workers: usize,
    /// Per-job chaos injection rate (0 disables chaos).
    pub fault_rate: f64,
    /// Chaos seed; each job derives its own as `mix(seed, job_id)`,
    /// stable across restarts so resumed runs replay the same faults.
    pub fault_seed: u64,
    /// Retry budget per LLM call inside a job.
    pub max_retries: u32,
    /// Consecutive-failure threshold for both the in-job stage
    /// breaker and the per-tenant breaker.
    pub breaker_threshold: u32,
    /// Token-bucket refill rate per tenant (tokens/second).
    pub rate_limit: f64,
    /// Token-bucket capacity per tenant.
    pub burst: f64,
    /// Directory holding the job WAL and per-job journals.
    pub spool: PathBuf,
    /// Logical clock (advanced only by [`Service::advance_seconds`])
    /// instead of wall time — the harness and tests run on this.
    pub deterministic: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let chaos = ChaosConfig::default();
        ServeConfig {
            queue_depth: 16,
            workers: 2,
            fault_rate: 0.0,
            fault_seed: chaos.fault_seed,
            max_retries: chaos.max_retries,
            breaker_threshold: chaos.breaker_threshold,
            rate_limit: 50.0,
            burst: 100.0,
            spool: PathBuf::from("grm-spool"),
            deterministic: false,
        }
    }
}

/// Why a submission was refused. [`Rejection::http_status`] gives the
/// wire mapping; [`Rejection::reason`] the machine-readable tag.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// Server is draining for shutdown.
    Draining,
    /// The tenant's circuit breaker is open.
    BreakerOpen,
    /// The tenant's token bucket is empty.
    RateLimited,
    /// The bounded queue is full — shed, never buffered.
    QueueFull,
    /// The spec itself is unusable.
    Invalid(String),
}

impl Rejection {
    pub fn http_status(&self) -> u16 {
        match self {
            Rejection::Draining => 503,
            Rejection::BreakerOpen => 403,
            Rejection::RateLimited | Rejection::QueueFull => 429,
            Rejection::Invalid(_) => 400,
        }
    }

    pub fn reason(&self) -> &'static str {
        match self {
            Rejection::Draining => "draining",
            Rejection::BreakerOpen => "breaker_open",
            Rejection::RateLimited => "rate_limited",
            Rejection::QueueFull => "queue_full",
            Rejection::Invalid(_) => "invalid",
        }
    }

    pub fn message(&self) -> String {
        match self {
            Rejection::Draining => "server is draining".to_owned(),
            Rejection::BreakerOpen => "tenant circuit breaker is open".to_owned(),
            Rejection::RateLimited => "tenant rate limit exceeded".to_owned(),
            Rejection::QueueFull => "job queue is full".to_owned(),
            Rejection::Invalid(why) => why.clone(),
        }
    }
}

/// Counter snapshot of a running service (`GET /stats`). Shed and
/// rejection counters are split by cause so overload drills can
/// assert each gate fired.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeStats {
    pub submitted: u64,
    pub accepted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub interrupted: u64,
    pub shed_queue_full: u64,
    pub shed_rate_limited: u64,
    pub rejected_breaker_open: u64,
    pub rejected_draining: u64,
    pub rejected_invalid: u64,
    pub breaker_trips: u64,
    /// Re-queued jobs that resumed from a partial journal on restart.
    pub resumed: u64,
    pub queue_depth: u64,
    pub queue_depth_peak: u64,
    /// The configured bound — `queue_depth_peak` can never exceed it.
    pub queue_depth_limit: u64,
    pub running: u64,
    pub draining: bool,
}

struct Tenant {
    bucket: TokenBucket,
    breaker: Breaker,
}

struct Job {
    spec: JobSpec,
    status: JobStatus,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    tenants: HashMap<String, Tenant>,
    next_id: u64,
    running: u64,
    draining: bool,
    clock: f64,
    stats: ServeStats,
    wal: Option<fs::File>,
}

/// The multi-tenant mine/check/explain job service. See the module
/// docs for the failure model.
pub struct Service {
    graph: Arc<PropertyGraph>,
    rules: Arc<Vec<ConsistencyRule>>,
    config: ServeConfig,
    hub: Option<Arc<MetricsHub>>,
    started: Instant,
    seq: AtomicU64,
    inner: Mutex<Inner>,
    work: Condvar,
}

impl Service {
    /// Opens (or reopens) a service over `spool`. An existing job WAL
    /// is replayed: jobs with no terminal record are re-queued in id
    /// order — with their kill point stripped, since the kill already
    /// fired — and those with a partial journal will resume from
    /// checkpoints. The `hub`, when given, receives job-lifecycle
    /// events and queue/breaker gauges.
    pub fn open(
        graph: PropertyGraph,
        rules: Vec<ConsistencyRule>,
        config: ServeConfig,
        hub: Option<Arc<MetricsHub>>,
    ) -> io::Result<Arc<Service>> {
        fs::create_dir_all(&config.spool)?;
        let wal_path = config.spool.join("jobs.wal");
        let mut inner = Inner { next_id: 1, ..Inner::default() };
        inner.stats.queue_depth_limit = config.queue_depth as u64;
        let mut requeued = Vec::new();
        if wal_path.exists() {
            let replay = replay_wal(&fs::read_to_string(&wal_path)?);
            inner.next_id = inner.next_id.max(replay.next_id);
            for (id, mut spec) in replay.incomplete() {
                spec.kill_after = None;
                requeued.push((id, spec));
            }
        }
        let service = Service {
            graph: Arc::new(graph),
            rules: Arc::new(rules),
            config,
            hub,
            started: Instant::now(),
            seq: AtomicU64::new(0),
            inner: Mutex::new(inner),
            work: Condvar::new(),
        };
        {
            let mut inner = service.inner.lock().expect("service poisoned");
            inner.wal = Some(fs::OpenOptions::new().create(true).append(true).open(&wal_path)?);
            for (id, spec) in requeued {
                if service.job_journal_path(id).exists() {
                    inner.stats.resumed += 1;
                }
                inner.jobs.insert(
                    id,
                    Job {
                        status: JobStatus {
                            id,
                            tenant: spec.tenant.clone(),
                            kind: spec.kind.clone(),
                            state: state::QUEUED.into(),
                            detail: "re-queued after restart".into(),
                            rules_mined: 0,
                        },
                        spec,
                    },
                );
                inner.queue.push_back(id);
            }
            inner.stats.queue_depth = inner.queue.len() as u64;
            inner.stats.queue_depth_peak = inner.stats.queue_depth;
        }
        Ok(Arc::new(service))
    }

    /// The directory this service spools into.
    pub fn spool(&self) -> &PathBuf {
        &self.config.spool
    }

    /// Path of one job's run journal.
    pub fn job_journal_path(&self, id: u64) -> PathBuf {
        self.config.spool.join(format!("job-{id}.jsonl"))
    }

    fn now(&self, inner: &Inner) -> f64 {
        if self.config.deterministic {
            inner.clock
        } else {
            self.started.elapsed().as_secs_f64()
        }
    }

    /// Advances the deterministic logical clock (token-bucket time).
    /// No-op semantics in wall-clock mode are intentional: tests and
    /// the baseline harness are the only callers.
    pub fn advance_seconds(&self, seconds: f64) {
        let mut inner = self.inner.lock().expect("service poisoned");
        inner.clock += seconds.max(0.0);
    }

    fn emit(&self, kind: &str, name: &str, detail: &str, value: f64) {
        if let Some(hub) = &self.hub {
            let event = TelemetryEvent {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                kind: kind.to_owned(),
                span: None,
                name: name.to_owned(),
                detail: detail.to_owned(),
                value,
            };
            hub.offer(&event);
        }
    }

    fn emit_job(&self, status: &JobStatus, transition: &str) {
        self.emit(
            TelemetryEvent::JOB,
            &status.tenant,
            &format!("{}: {transition}", status.kind),
            status.id as f64,
        );
        self.emit(TelemetryEvent::COUNTER, &format!("serve_jobs_{transition}"), "", 1.0);
    }

    fn emit_queue_gauge(&self, inner: &Inner) {
        self.emit(TelemetryEvent::GAUGE, "serve_queue_depth", "", inner.queue.len() as f64);
    }

    fn emit_breaker_gauge(&self, tenant: &str, open: bool) {
        let sanitized: String = tenant
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .collect();
        self.emit(
            TelemetryEvent::GAUGE,
            &format!("serve_breaker_open_{sanitized}"),
            "",
            if open { 1.0 } else { 0.0 },
        );
    }

    fn append_wal(inner: &mut Inner, record: &JobRecord) {
        if let Some(wal) = inner.wal.as_mut() {
            let line = serde_json::to_string(record).expect("wal records serialise");
            // A WAL write failure must not take the service down; the
            // job still runs, it just loses crash coverage.
            let _ = writeln!(wal, "{line}");
            let _ = wal.flush();
        }
    }

    fn validate(&self, spec: &JobSpec) -> Result<(), String> {
        if spec.tenant.is_empty() {
            return Err("spec needs a tenant".into());
        }
        match spec.kind.as_str() {
            "mine" => {
                if spec.kill_after.is_some() && self.config.fault_rate <= 0.0 {
                    return Err(
                        "kill_after needs a chaos-enabled server (--fault-rate > 0) — only \
                         chaos runs checkpoint work for resume"
                            .into(),
                    );
                }
                Ok(())
            }
            "check" => {
                if self.rules.is_empty() {
                    return Err("server has no rule book loaded (--rules)".into());
                }
                Ok(())
            }
            "explain" => {
                if spec.rule.is_none() || spec.source.is_none() {
                    return Err("explain jobs need `rule` and `source` (a mine job id)".into());
                }
                Ok(())
            }
            other => Err(format!("unknown job kind `{other}`")),
        }
    }

    /// Admission control: runs the four gates in order (drain, tenant
    /// breaker, tenant rate limit, queue bound) and either persists +
    /// enqueues the job, returning its id, or rejects. The id is
    /// returned only after the `accepted` WAL record is flushed.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, Rejection> {
        let mut inner = self.inner.lock().expect("service poisoned");
        inner.stats.submitted += 1;
        if inner.draining {
            inner.stats.rejected_draining += 1;
            return Err(Rejection::Draining);
        }
        if let Err(why) = self.validate(&spec) {
            inner.stats.rejected_invalid += 1;
            return Err(Rejection::Invalid(why));
        }
        let now = self.now(&inner);
        let (rate, burst, threshold) =
            (self.config.rate_limit, self.config.burst, self.config.breaker_threshold);
        let refused = {
            let tenant = inner.tenants.entry(spec.tenant.clone()).or_insert_with(|| Tenant {
                bucket: TokenBucket::new(rate, burst, now),
                breaker: Breaker::new(threshold),
            });
            if !tenant.breaker.admit() {
                Some(tenant.breaker.is_open())
            } else {
                None
            }
        };
        if let Some(still_open) = refused {
            inner.stats.rejected_breaker_open += 1;
            self.emit(TelemetryEvent::COUNTER, "serve_rejected_breaker_open", "", 1.0);
            if !still_open {
                // That refusal consumed the last cooldown slot: the
                // breaker is half-open, the next submission probes.
                self.emit_breaker_gauge(&spec.tenant, false);
            }
            return Err(Rejection::BreakerOpen);
        }
        let rate_limited = {
            let tenant = inner.tenants.get_mut(&spec.tenant).expect("tenant just inserted");
            !tenant.bucket.try_take(now)
        };
        if rate_limited {
            inner.stats.shed_rate_limited += 1;
            self.emit(TelemetryEvent::COUNTER, "serve_shed_rate_limited", "", 1.0);
            return Err(Rejection::RateLimited);
        }
        if inner.queue.len() >= self.config.queue_depth {
            inner.stats.shed_queue_full += 1;
            self.emit(TelemetryEvent::COUNTER, "serve_shed_queue_full", "", 1.0);
            return Err(Rejection::QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let record = JobRecord {
            event: WAL_ACCEPTED.into(),
            job: id,
            tenant: spec.tenant.clone(),
            kind: spec.kind.clone(),
            detail: serde_json::to_string(&spec).expect("specs serialise"),
        };
        Self::append_wal(&mut inner, &record);
        let status = JobStatus {
            id,
            tenant: spec.tenant.clone(),
            kind: spec.kind.clone(),
            state: state::QUEUED.into(),
            detail: String::new(),
            rules_mined: 0,
        };
        self.emit_job(&status, "accepted");
        inner.jobs.insert(id, Job { spec, status });
        inner.queue.push_back(id);
        inner.stats.accepted += 1;
        inner.stats.queue_depth = inner.queue.len() as u64;
        inner.stats.queue_depth_peak = inner.stats.queue_depth_peak.max(inner.stats.queue_depth);
        self.emit_queue_gauge(&inner);
        drop(inner);
        self.work.notify_all();
        Ok(id)
    }

    /// Current status of one job.
    pub fn job(&self, id: u64) -> Option<JobStatus> {
        let inner = self.inner.lock().expect("service poisoned");
        inner.jobs.get(&id).map(|j| j.status.clone())
    }

    /// Current Prometheus exposition of the attached metrics hub, if
    /// one was given to [`Service::open`].
    pub fn exposition(&self) -> Option<String> {
        self.hub.as_ref().map(|hub| hub.exposition())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let inner = self.inner.lock().expect("service poisoned");
        let mut stats = inner.stats.clone();
        stats.queue_depth = inner.queue.len() as u64;
        stats.running = inner.running;
        stats.draining = inner.draining;
        stats
    }

    /// Pops and executes one job. With `wait`, blocks until work
    /// arrives or the service drains; without, returns immediately
    /// when the queue is empty. Returns `false` when the caller
    /// (a worker loop) should stop: queue empty and either
    /// non-waiting or draining.
    pub fn execute_next(&self, wait: bool) -> bool {
        let (id, spec) = {
            let mut inner = self.inner.lock().expect("service poisoned");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    inner.stats.queue_depth = inner.queue.len() as u64;
                    inner.running += 1;
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status.state = state::RUNNING.into();
                    let spec = job.spec.clone();
                    let status = job.status.clone();
                    let record = JobRecord {
                        event: state::RUNNING.into(),
                        job: id,
                        tenant: spec.tenant.clone(),
                        kind: spec.kind.clone(),
                        detail: String::new(),
                    };
                    Self::append_wal(&mut inner, &record);
                    self.emit_job(&status, "started");
                    self.emit_queue_gauge(&inner);
                    break (id, spec);
                }
                if !wait || inner.draining {
                    return false;
                }
                inner = self
                    .work
                    .wait_timeout(inner, std::time::Duration::from_millis(100))
                    .expect("service poisoned")
                    .0;
            }
        };
        let outcome = self.run_job(id, &spec);
        let mut inner = self.inner.lock().expect("service poisoned");
        inner.running -= 1;
        let record = JobRecord {
            event: outcome.state.to_owned(),
            job: id,
            tenant: spec.tenant.clone(),
            kind: spec.kind.clone(),
            detail: outcome.detail.clone(),
        };
        Self::append_wal(&mut inner, &record);
        match outcome.state {
            state::COMPLETED => inner.stats.completed += 1,
            state::FAILED => inner.stats.failed += 1,
            state::CANCELLED => inner.stats.cancelled += 1,
            state::INTERRUPTED => inner.stats.interrupted += 1,
            _ => {}
        }
        // Feed the tenant breaker: completed resets the failure
        // streak, failed/cancelled extend it; interrupted jobs are
        // neither — they will resume.
        if let Some(ok) = outcome.breaker_signal {
            if let Some(tenant) = inner.tenants.get_mut(&spec.tenant) {
                let trips_before = tenant.breaker.trips();
                tenant.breaker.record(ok);
                if tenant.breaker.trips() > trips_before {
                    inner.stats.breaker_trips += 1;
                    self.emit(TelemetryEvent::COUNTER, "serve_breaker_trips", "", 1.0);
                    self.emit_breaker_gauge(&spec.tenant, true);
                }
            }
        }
        let job = inner.jobs.get_mut(&id).expect("running job exists");
        job.status.state = outcome.state.into();
        job.status.detail = outcome.detail;
        job.status.rules_mined = outcome.rules_mined;
        let status = job.status.clone();
        self.emit_job(&status, outcome.state);
        drop(inner);
        self.work.notify_all();
        true
    }

    /// Runs every queued job on the calling thread — the
    /// deterministic single-threaded harness/test loop.
    pub fn run_pending(&self) {
        while self.execute_next(false) {}
    }

    /// Graceful shutdown: stop admitting, let in-flight and queued
    /// jobs finish, append the clean `drained` WAL marker, and emit
    /// the final `run_end` on the bus. Blocks until drained.
    pub fn drain(&self) {
        let mut inner = self.inner.lock().expect("service poisoned");
        inner.draining = true;
        self.work.notify_all();
        while !(inner.queue.is_empty() && inner.running == 0) {
            inner = self
                .work
                .wait_timeout(inner, std::time::Duration::from_millis(100))
                .expect("service poisoned")
                .0;
        }
        let record = JobRecord {
            event: WAL_DRAINED.into(),
            job: 0,
            tenant: String::new(),
            kind: String::new(),
            detail: String::new(),
        };
        Self::append_wal(&mut inner, &record);
        drop(inner);
        if let Some(hub) = &self.hub {
            self.emit(
                TelemetryEvent::RUN_END,
                "serve",
                "",
                self.seq.load(Ordering::Relaxed) as f64,
            );
            hub.flush();
        }
        self.work.notify_all();
    }

    fn run_job(&self, id: u64, spec: &JobSpec) -> JobOutcome {
        match spec.kind.as_str() {
            "mine" => self.run_mine(id, spec),
            "check" => self.run_check(id, spec),
            "explain" => self.run_explain(spec),
            other => JobOutcome::failed(format!("unknown job kind `{other}`")),
        }
    }

    fn job_chaos(&self, id: u64) -> ChaosConfig {
        ChaosConfig {
            fault_seed: mix(self.config.fault_seed, id),
            fault_rate: self.config.fault_rate,
            max_retries: self.config.max_retries,
            breaker_threshold: self.config.breaker_threshold,
        }
    }

    fn run_mine(&self, id: u64, spec: &JobSpec) -> JobOutcome {
        let mut config = PipelineConfig::new(
            ModelKind::Llama3,
            ContextStrategy::default_sliding_window(),
            PromptStyle::ZeroShot,
        );
        config.seed = spec.seed.unwrap_or(42);
        let chaos = self.job_chaos(id);
        let journal_path = self.job_journal_path(id);
        // Resume from a partial journal when one survived a previous
        // (killed) attempt. Recovery is lossy — corrupt checkpoints
        // are dropped and re-run — and a journal without a Chaos
        // record simply restarts the job from scratch.
        let resume = fs::read_to_string(&journal_path)
            .ok()
            .and_then(|text| RunJournal::from_jsonl_lossy(&text).ok())
            .and_then(|journal| ResumeState::from_journal(&journal).ok())
            .map(|(_, resume)| resume);
        let resil = Resilience { resume, kill_after: spec.kill_after, ..Resilience::chaos(chaos) };
        let recorder = Recorder::deterministic();
        let pipeline = MiningPipeline::new(config);
        match pipeline.run_resilient(&self.graph, 1, &recorder, &resil) {
            RunStatus::Killed { stage, completed_units } => {
                let journal = recorder.snapshot();
                if let Err(e) = fs::write(&journal_path, journal.to_jsonl()) {
                    return JobOutcome::failed(format!(
                        "killed mid-{stage} and the checkpoint journal failed to write: {e}"
                    ));
                }
                JobOutcome {
                    state: state::INTERRUPTED,
                    detail: format!(
                        "killed mid-{stage} after {completed_units} unit(s); \
                         checkpoints journaled for resume"
                    ),
                    rules_mined: 0,
                    breaker_signal: None,
                }
            }
            RunStatus::Complete(report) => {
                let journal = recorder.snapshot();
                if let Err(e) = fs::write(&journal_path, journal.to_jsonl()) {
                    return JobOutcome::failed(format!("journal write failed: {e}"));
                }
                if let Some(limit) = spec.deadline_seconds {
                    // Deadline propagation: charge each stage's
                    // simulated seconds against the request budget;
                    // the stage that exhausts it cancels the job.
                    let mut budget = DeadlineBudget::new(limit);
                    for timing in &report.stage_timings {
                        if !budget.charge(timing.sim_seconds) {
                            return JobOutcome {
                                state: state::CANCELLED,
                                detail: format!(
                                    "deadline exceeded: stage {} pushed simulated time to \
                                     {:.1}s past the {limit}s budget",
                                    timing.stage,
                                    budget.spent_seconds()
                                ),
                                rules_mined: 0,
                                breaker_signal: Some(false),
                            };
                        }
                    }
                }
                let rules = report.rule_count() as u64;
                JobOutcome {
                    state: state::COMPLETED,
                    detail: format!(
                        "mined {rules} rule(s) in {:.1}s simulated",
                        report.mining_seconds + report.translation_seconds
                    ),
                    rules_mined: rules,
                    breaker_signal: Some(true),
                }
            }
        }
    }

    fn run_check(&self, id: u64, spec: &JobSpec) -> JobOutcome {
        let chaos = self.job_chaos(id);
        let plan = (chaos.fault_rate > 0.0).then(|| FaultPlan::new(chaos));
        let mut budget = spec.deadline_seconds.map(DeadlineBudget::new);
        let scope = Scope::disabled();
        let total = self.rules.len();
        let (mut held, mut degraded, mut errors) = (0usize, 0usize, 0usize);
        for (i, rule) in self.rules.iter().enumerate() {
            if let Some(budget) = budget.as_mut() {
                // Deadline propagation: the per-rule allowance is the
                // Evaluate stage deadline clamped to what is left of
                // the request budget.
                if budget.stage_deadline_seconds(Stage::Evaluate) < CHECK_RULE_SIM_SECONDS {
                    return JobOutcome {
                        state: state::CANCELLED,
                        detail: format!(
                            "deadline exceeded after {i} of {total} rule(s) \
                             ({:.2}s simulated spent)",
                            budget.spent_seconds()
                        ),
                        rules_mined: 0,
                        breaker_signal: Some(false),
                    };
                }
                budget.charge(CHECK_RULE_SIM_SECONDS);
            }
            if let Some(plan) = &plan {
                if plan.unit(Stage::Evaluate, i as u64).is_degraded() {
                    degraded += 1;
                    continue;
                }
            }
            match evaluate_labeled(&self.graph, &reference_queries(rule), &scope, "serve-check") {
                Ok(m) if m.coverage_pct >= 100.0 && m.confidence_pct >= 100.0 => held += 1,
                Ok(_) => {}
                Err(_) => errors += 1,
            }
        }
        if total > 0 && degraded == total {
            return JobOutcome::failed(format!("all {total} rule evaluation(s) abandoned"));
        }
        JobOutcome {
            state: state::COMPLETED,
            detail: format!("{held}/{total} rule(s) hold, {degraded} degraded, {errors} error(s)"),
            rules_mined: 0,
            breaker_signal: Some(true),
        }
    }

    fn run_explain(&self, spec: &JobSpec) -> JobOutcome {
        let (Some(rule), Some(source)) = (&spec.rule, spec.source) else {
            return JobOutcome::failed("explain jobs need `rule` and `source`".into());
        };
        let path = self.job_journal_path(source);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                return JobOutcome::failed(format!("no journal for source job {source}: {e}"))
            }
        };
        let journal = match RunJournal::from_jsonl_lossy(&text) {
            Ok(journal) => journal,
            Err(e) => return JobOutcome::failed(format!("source job {source} journal: {e}")),
        };
        match explain_rule(&journal, rule) {
            Some(rendered) => JobOutcome {
                state: state::COMPLETED,
                detail: rendered.lines().next().unwrap_or("explained").to_owned(),
                rules_mined: 0,
                breaker_signal: Some(true),
            },
            None => JobOutcome::failed(format!("no rule `{rule}` in job {source}'s journal")),
        }
    }
}

struct JobOutcome {
    state: &'static str,
    detail: String,
    rules_mined: u64,
    /// `Some(ok)` feeds the tenant breaker; `None` (interrupted)
    /// leaves the streak untouched.
    breaker_signal: Option<bool>,
}

impl JobOutcome {
    fn failed(detail: String) -> JobOutcome {
        JobOutcome { state: state::FAILED, detail, rules_mined: 0, breaker_signal: Some(false) }
    }
}
