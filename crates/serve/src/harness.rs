//! Deterministic serving scenario and the committed `BENCH_serve.json`
//! baseline shape.
//!
//! [`baseline_harness`] scripts a full life of the service on the
//! logical clock — normal tenant traffic, an overload burst that
//! sheds on both the rate-limit and queue gates, an abusive tenant
//! whose deadline-busting jobs trip its circuit breaker through the
//! full trip → 2N-refusal → half-open probe cycle, and a mid-mine
//! kill followed by a restart over the same spool that resumes from
//! checkpoints. Everything runs single-threaded through
//! [`Service::run_pending`], so the resulting [`ServeBaseline`]
//! digest is exactly reproducible and CI can gate on equality.

use std::collections::BTreeMap;
use std::path::PathBuf;

use grm_datasets::{generate, DatasetId, GenConfig};
use grm_obs::JOURNAL_VERSION;

use crate::job::{state, JobSpec};
use crate::service::{Rejection, ServeConfig, ServeStats, Service};

/// The committed `BENCH_serve.json` shape: the admission/shed/trip/
/// resume digest of the scripted scenario, pinned so serving-layer
/// behavior can only change deliberately.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeBaseline {
    /// Journal schema version the baseline was generated against.
    pub journal_version: u32,
    pub jobs_submitted: u64,
    pub jobs_accepted: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub jobs_cancelled: u64,
    pub jobs_interrupted: u64,
    pub shed_queue_full: u64,
    pub shed_rate_limited: u64,
    pub rejected_breaker_open: u64,
    pub breaker_trips: u64,
    pub jobs_resumed: u64,
    pub queue_depth_peak: u64,
    /// Total rules mined across completed mine jobs.
    pub rules_mined: u64,
}

impl ServeBaseline {
    /// Exact-match check of a freshly computed digest against the
    /// committed baseline. Returns violations; empty means identical.
    pub fn check(&self, observed: &ServeBaseline) -> Vec<String> {
        let mut violations = Vec::new();
        if self.journal_version != JOURNAL_VERSION {
            violations.push(format!(
                "baseline journal_version {} != current {} — regenerate with --serve-baseline",
                self.journal_version, JOURNAL_VERSION
            ));
        }
        let pairs: [(&str, u64, u64); 13] = [
            ("jobs_submitted", observed.jobs_submitted, self.jobs_submitted),
            ("jobs_accepted", observed.jobs_accepted, self.jobs_accepted),
            ("jobs_completed", observed.jobs_completed, self.jobs_completed),
            ("jobs_failed", observed.jobs_failed, self.jobs_failed),
            ("jobs_cancelled", observed.jobs_cancelled, self.jobs_cancelled),
            ("jobs_interrupted", observed.jobs_interrupted, self.jobs_interrupted),
            ("shed_queue_full", observed.shed_queue_full, self.shed_queue_full),
            ("shed_rate_limited", observed.shed_rate_limited, self.shed_rate_limited),
            ("rejected_breaker_open", observed.rejected_breaker_open, self.rejected_breaker_open),
            ("breaker_trips", observed.breaker_trips, self.breaker_trips),
            ("jobs_resumed", observed.jobs_resumed, self.jobs_resumed),
            ("queue_depth_peak", observed.queue_depth_peak, self.queue_depth_peak),
            ("rules_mined", observed.rules_mined, self.rules_mined),
        ];
        for (name, got, expect) in pairs {
            if got != expect {
                violations.push(format!("{name}: {got} != baseline {expect}"));
            }
        }
        violations
    }
}

fn add_stats(total: &mut ServeStats, stats: &ServeStats) {
    total.submitted += stats.submitted;
    total.accepted += stats.accepted;
    total.completed += stats.completed;
    total.failed += stats.failed;
    total.cancelled += stats.cancelled;
    total.interrupted += stats.interrupted;
    total.shed_queue_full += stats.shed_queue_full;
    total.shed_rate_limited += stats.shed_rate_limited;
    total.rejected_breaker_open += stats.rejected_breaker_open;
    total.breaker_trips += stats.breaker_trips;
    total.resumed += stats.resumed;
    total.queue_depth_peak = total.queue_depth_peak.max(stats.queue_depth_peak);
}

/// The scripted scenario, on a spool under `spool_root`. Runs two
/// service instances (the second reopens the first's spool after a
/// simulated crash) and folds their stats into one digest.
///
/// Tenants: `alice` is well-behaved (mine, check, explain), `bob`
/// bursts 12 submissions into a burst-8 bucket over a depth-4 queue
/// (4 accepted, 4 shed `queue_full`, 4 shed `rate_limited`), and
/// `mallory` submits deadline-busting checks until the breaker trips,
/// eats the 2N refusals, then half-opens on a probe. `carol`'s mine
/// job is killed after 2 units; the reopened service resumes it from
/// its checkpoint journal.
pub fn baseline_harness(scale: f64, spool_root: PathBuf) -> std::io::Result<ServeBaseline> {
    let spool = spool_root.join("serve-baseline-spool");
    if spool.exists() {
        std::fs::remove_dir_all(&spool)?;
    }
    let dataset = generate(DatasetId::Wwc2019, &GenConfig { seed: 42, scale, clean: false });
    let config = ServeConfig {
        queue_depth: 4,
        workers: 0,
        fault_rate: 0.2,
        fault_seed: 7,
        max_retries: 3,
        breaker_threshold: 4,
        rate_limit: 0.0,
        burst: 8.0,
        spool: spool.clone(),
        deterministic: true,
    };
    let rules = dataset.ground_truth.clone();
    let service = Service::open(dataset.graph.clone(), rules.clone(), config.clone(), None)?;
    let mut rules_mined: BTreeMap<u64, u64> = BTreeMap::new();
    let spec = |tenant: &str, kind: &str| JobSpec {
        tenant: tenant.into(),
        kind: kind.into(),
        ..JobSpec::default()
    };

    // Phase 1 — alice, well-behaved: two mine jobs, two checks, one
    // explain over the first mine job's journal.
    let mine_a = service.submit(JobSpec { seed: Some(42), ..spec("alice", "mine") }).unwrap();
    service.run_pending();
    let mine_b = service.submit(JobSpec { seed: Some(43), ..spec("alice", "mine") }).unwrap();
    service.submit(spec("alice", "check")).unwrap();
    service.submit(spec("alice", "check")).unwrap();
    service.run_pending();
    service
        .submit(JobSpec {
            rule: Some("rule-0".into()),
            source: Some(mine_a),
            ..spec("alice", "explain")
        })
        .unwrap();
    service.run_pending();
    for id in [mine_a, mine_b] {
        if let Some(status) = service.job(id) {
            rules_mined.insert(id, status.rules_mined);
        }
    }

    // Phase 2 — bob, bursty: 12 submissions against burst 8 and a
    // depth-4 queue with no draining in between. Both shed gates
    // fire: 4 queued, then 4 queue_full (tokens already spent), then
    // 4 rate_limited.
    for i in 0..12 {
        let result = service.submit(spec("bob", "check"));
        match i {
            0..=3 => assert!(result.is_ok(), "bob job {i}: {result:?}"),
            4..=7 => assert_eq!(result, Err(Rejection::QueueFull), "bob job {i}"),
            _ => assert_eq!(result, Err(Rejection::RateLimited), "bob job {i}"),
        }
    }
    service.run_pending();

    // Phase 3 — mallory, abusive: deadline-busting checks fail until
    // the breaker trips after 4, refuses 2·4 = 8 submissions, then
    // half-opens and admits a probe (which also gets cancelled).
    for i in 0..4 {
        let result =
            service.submit(JobSpec { deadline_seconds: Some(0.1), ..spec("mallory", "check") });
        assert!(result.is_ok(), "mallory job {i}: {result:?}");
        service.run_pending();
    }
    for i in 0..8 {
        let result = service.submit(spec("mallory", "check"));
        assert_eq!(result, Err(Rejection::BreakerOpen), "mallory refusal {i}");
    }
    let probe = service
        .submit(JobSpec { deadline_seconds: Some(0.1), ..spec("mallory", "check") })
        .expect("half-open probe admitted");
    service.run_pending();
    assert_eq!(service.job(probe).map(|s| s.state), Some(state::CANCELLED.to_owned()));

    // Phase 4 — carol's mine job is killed after 2 units, then the
    // process "crashes" (service dropped without drain).
    let killed = service
        .submit(JobSpec { seed: Some(44), kill_after: Some(2), ..spec("carol", "mine") })
        .unwrap();
    service.run_pending();
    assert_eq!(service.job(killed).map(|s| s.state), Some(state::INTERRUPTED.to_owned()));
    let mut total = ServeStats::default();
    add_stats(&mut total, &service.stats());
    drop(service);

    // Restart over the same spool: the WAL re-queues carol's job and
    // its checkpoint journal resumes it to completion.
    let service = Service::open(dataset.graph.clone(), rules, config, None)?;
    service.run_pending();
    let resumed = service.job(killed).expect("re-queued job visible after restart");
    assert_eq!(resumed.state, state::COMPLETED, "{resumed:?}");
    rules_mined.insert(killed, resumed.rules_mined);
    service.drain();
    add_stats(&mut total, &service.stats());

    Ok(ServeBaseline {
        journal_version: JOURNAL_VERSION,
        jobs_submitted: total.submitted,
        jobs_accepted: total.accepted,
        jobs_completed: total.completed,
        jobs_failed: total.failed,
        jobs_cancelled: total.cancelled,
        jobs_interrupted: total.interrupted,
        shed_queue_full: total.shed_queue_full,
        shed_rate_limited: total.shed_rate_limited,
        rejected_breaker_open: total.rejected_breaker_open,
        breaker_trips: total.breaker_trips,
        jobs_resumed: total.resumed,
        queue_depth_peak: total.queue_depth_peak,
        rules_mined: rules_mined.values().sum(),
    })
}
