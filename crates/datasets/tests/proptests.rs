//! Property-based tests for the dataset generators: structural
//! invariants must hold at every scale and seed.

use grm_datasets::{generate, DatasetId, GenConfig};
use grm_pgraph::GraphStats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All label sets stay complete at any scale ≥ 5 % and any seed —
    /// downstream prompts and schema summaries rely on this.
    #[test]
    fn label_sets_survive_scaling(
        seed in any::<u64>(),
        scale in 0.05f64..0.5,
        which in 0usize..3,
    ) {
        let id = DatasetId::ALL[which];
        let d = generate(id, &GenConfig { seed, scale, clean: false });
        let s = GraphStats::of(&d.graph);
        let (nl, el) = match id {
            DatasetId::Wwc2019 => (5, 9),
            DatasetId::Cybersecurity => (7, 16),
            DatasetId::Twitter => (6, 8),
        };
        prop_assert_eq!(s.node_labels, nl, "{:?} @ {}", id, scale);
        prop_assert_eq!(s.edge_labels, el, "{:?} @ {}", id, scale);
    }

    /// Node/edge counts track the scale factor within rounding slack.
    #[test]
    fn sizes_track_scale(seed in any::<u64>(), scale in 0.05f64..0.5) {
        let d = generate(DatasetId::Twitter, &GenConfig { seed, scale, clean: false });
        let s = GraphStats::of(&d.graph);
        let expected_nodes = 43_325.0 * scale;
        let expected_edges = 56_493.0 * scale;
        prop_assert!((s.nodes as f64) > expected_nodes * 0.9);
        prop_assert!((s.nodes as f64) < expected_nodes * 1.1);
        prop_assert!((s.edges as f64) > expected_edges * 0.9);
        prop_assert!((s.edges as f64) < expected_edges * 1.1);
    }

    /// Clean graphs have strictly fewer (or equal) violations than
    /// dirty ones for every ground-truth rule with a violation query.
    #[test]
    fn clean_is_never_dirtier(seed in any::<u64>(), which in 0usize..3) {
        let id = DatasetId::ALL[which];
        let dirty = generate(id, &GenConfig { seed, scale: 0.1, clean: false });
        let clean = generate(id, &GenConfig { seed, scale: 0.1, clean: true });
        for rule in &dirty.ground_truth {
            let Some(vq) = grm_rules::violation_query(rule) else { continue };
            let dv = grm_cypher::execute(&dirty.graph, &vq)
                .unwrap()
                .single_int()
                .unwrap_or(0);
            let cv = grm_cypher::execute(&clean.graph, &vq)
                .unwrap()
                .single_int()
                .unwrap_or(0);
            prop_assert!(cv <= dv, "{:?}: clean {} > dirty {}", id, cv, dv);
            prop_assert_eq!(cv, 0, "{:?}: clean graph has violations", id);
        }
    }

    /// Generation is a pure function of (id, seed, scale, clean).
    #[test]
    fn generation_is_pure(seed in any::<u64>()) {
        let cfg = GenConfig { seed, scale: 0.05, clean: false };
        let a = generate(DatasetId::Cybersecurity, &cfg);
        let b = generate(DatasetId::Cybersecurity, &cfg);
        prop_assert_eq!(a.graph.node_count(), b.graph.node_count());
        prop_assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (x, y) in a.graph.nodes().zip(b.graph.nodes()) {
            prop_assert_eq!(&x.props, &y.props);
        }
    }

    /// All edges reference valid endpoints (the store enforces this,
    /// but the generators must never panic while building).
    #[test]
    fn generators_never_panic(seed in any::<u64>(), scale in 0.01f64..0.2) {
        for id in DatasetId::ALL {
            let d = generate(id, &GenConfig { seed, scale, clean: seed.is_multiple_of(2) });
            prop_assert!(d.graph.node_count() > 0);
        }
    }
}
