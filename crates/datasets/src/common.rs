//! Shared generator machinery: configuration, deterministic naming,
//! and the dataset wrapper type.

use grm_pgraph::PropertyGraph;
use grm_rules::ConsistencyRule;

/// Which of the paper's three datasets (Table 1) to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 2019 Women's World Cup graph: teams, persons, matches,
    /// tournaments, squads.
    Wwc2019,
    /// Active-directory security graph: users, groups, domains,
    /// policies, computers.
    Cybersecurity,
    /// Twitter interaction graph: users, tweets, hashtags, links,
    /// sources.
    Twitter,
}

impl DatasetId {
    /// All three datasets, in the paper's order.
    pub const ALL: [DatasetId; 3] =
        [DatasetId::Wwc2019, DatasetId::Cybersecurity, DatasetId::Twitter];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Wwc2019 => "WWC2019",
            DatasetId::Cybersecurity => "Cybersecurity",
            DatasetId::Twitter => "Twitter",
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// RNG seed — same seed, same graph, byte for byte.
    pub seed: u64,
    /// Size multiplier. `1.0` reproduces Table 1 exactly; smaller
    /// values give proportionally smaller graphs for fast benches.
    pub scale: f64,
    /// When true, no inconsistencies are injected (oracle graphs for
    /// metric identity tests).
    pub clean: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { seed: 42, scale: 1.0, clean: false }
    }
}

impl GenConfig {
    /// Scales an integer quantity, keeping at least 1.
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(1)
    }
}

/// A generated dataset: the graph plus the ground-truth rules that
/// hold on it (modulo the injected violations).
#[derive(Debug)]
pub struct Dataset {
    pub id: DatasetId,
    pub graph: PropertyGraph,
    /// Rules the generator deliberately made (mostly) true — the
    /// oracle set used in tests and as few-shot exemplar material.
    pub ground_truth: Vec<ConsistencyRule>,
}

/// Small deterministic xorshift mixer for name synthesis (independent
/// of `rand` so names stay stable even if the RNG crate changes).
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut x = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const FIRST: [&str; 16] = [
    "Ada", "Bea", "Cleo", "Dana", "Eve", "Fay", "Gia", "Hana", "Iris", "Jade", "Kira", "Lena",
    "Mara", "Nina", "Orla", "Pia",
];
const LAST: [&str; 16] = [
    "Alves", "Bonam", "Cruz", "Diaz", "Egan", "Faro", "Gallo", "Hart", "Ito", "Jans", "Kato",
    "Lund", "Mora", "Nunez", "Oda", "Park",
];

/// Deterministic person name for index `i`.
pub fn person_name(seed: u64, i: usize) -> String {
    let h = mix(seed, i as u64);
    format!("{} {}", FIRST[(h & 0xf) as usize], LAST[((h >> 4) & 0xf) as usize])
}

const WORDS: [&str; 16] = [
    "graph", "rules", "match", "goal", "final", "team", "play", "score", "win", "cup", "pass",
    "run", "kick", "fans", "game", "pitch",
];

/// Deterministic short text (tweets, descriptions).
pub fn short_text(seed: u64, i: usize, words: usize) -> String {
    let mut out = String::new();
    for w in 0..words {
        if w > 0 {
            out.push(' ');
        }
        let h = mix(seed ^ 0xdead, (i * 31 + w) as u64);
        out.push_str(WORDS[(h & 0xf) as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_keeps_minimum_of_one() {
        let cfg = GenConfig { scale: 0.001, ..Default::default() };
        assert_eq!(cfg.scaled(24), 1);
        let full = GenConfig::default();
        assert_eq!(full.scaled(24), 24);
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(person_name(1, 5), person_name(1, 5));
        assert_ne!(person_name(1, 5), person_name(2, 5));
    }

    #[test]
    fn short_text_has_requested_word_count() {
        assert_eq!(short_text(9, 3, 5).split(' ').count(), 5);
    }

    #[test]
    fn dataset_names_match_paper() {
        assert_eq!(DatasetId::Wwc2019.name(), "WWC2019");
        assert_eq!(DatasetId::ALL.len(), 3);
    }
}
