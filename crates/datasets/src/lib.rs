//! # grm-datasets — synthetic reproductions of the paper's datasets
//!
//! The paper evaluates on three Neo4j example graphs (Table 1):
//! WWC2019, Cybersecurity, and Twitter. The original dumps are not
//! redistributable here, so each module regenerates a graph with the
//! same schema (node/edge labels, property keys, key relationship
//! structure — including the temporal and squad/tournament patterns
//! the paper's example rules reference) at the exact Table-1 sizes,
//! plus controlled injected inconsistencies so support / coverage /
//! confidence are non-trivial. See DESIGN.md §2 for the substitution
//! argument.
//!
//! ```
//! use grm_datasets::{generate, DatasetId, GenConfig};
//!
//! let d = generate(DatasetId::Wwc2019, &GenConfig { scale: 0.05, ..Default::default() });
//! assert!(d.graph.node_count() > 0);
//! assert!(!d.ground_truth.is_empty());
//! ```

pub mod common;
pub mod cybersecurity;
pub mod twitter;
pub mod wwc2019;

pub use common::{Dataset, DatasetId, GenConfig};

/// Generates the requested dataset.
pub fn generate(id: DatasetId, cfg: &GenConfig) -> Dataset {
    match id {
        DatasetId::Wwc2019 => wwc2019::generate(cfg),
        DatasetId::Cybersecurity => cybersecurity::generate(cfg),
        DatasetId::Twitter => twitter::generate(cfg),
    }
}
