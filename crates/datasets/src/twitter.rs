//! Twitter dataset generator.
//!
//! Reproduces the shape of the Neo4j `twitter-v2` example graph the
//! paper uses: users, tweets, hashtags, links, sources and the `Me`
//! account, connected by posting/retweeting/mention/tag interactions.
//! Sizes at `scale = 1.0` match Table 1 exactly: **43325 nodes,
//! 56493 edges, 6 node labels, 8 edge labels** — the paper's largest
//! graph, the one that stresses the sliding-window encoder.
//!
//! Injected inconsistencies (unless `clean`):
//! * duplicate `Tweet.id`s;
//! * retweets whose timestamp *precedes* the original tweet — the
//!   paper's motivating temporal rule ("a retweet can occur only
//!   after the original tweet has been posted") has real violations;
//! * users following themselves ("users cannot follow themselves");
//! * tweets with zero or two `POSTS` authors (violating "every tweet
//!   must be associated with a valid user who posted it").

use grm_pgraph::{props, NodeId, PropertyGraph, PropertyMap, Value};
use grm_rules::ConsistencyRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{person_name, short_text, Dataset, DatasetId, GenConfig};

/// Target node total at scale 1.0 (Table 1).
pub const NODES: usize = 43325;
/// Target edge total at scale 1.0 (Table 1).
pub const EDGES: usize = 56493;

/// Generates the Twitter graph.
pub fn generate(cfg: &GenConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7717_4332);
    let mut g = PropertyGraph::with_capacity(cfg.scaled(NODES), cfg.scaled(EDGES));

    let users_n = cfg.scaled(13_000);
    let tweets_n = cfg.scaled(28_000);
    let hashtags_n = cfg.scaled(1_500);
    let links_n = cfg.scaled(750);
    let sources_n = cfg.scaled(74);
    let target_nodes = cfg.scaled(NODES);
    // `Me` plus filler users absorb rounding drift.
    let extra_users =
        target_nodes.saturating_sub(1 + users_n + tweets_n + hashtags_n + links_n + sources_n);
    let users_n = users_n + extra_users;

    // --- Nodes ----------------------------------------------------------
    let me = g.add_node(
        ["Me", "User"],
        props([
            ("id", Value::Int(0)),
            ("screen_name", Value::from("me_account")),
            ("followers", Value::Int(1234)),
        ]),
    );
    let users: Vec<NodeId> = (0..users_n)
        .map(|i| {
            let mut p = props([
                ("id", Value::Int((i + 1) as i64)),
                ("screen_name", Value::from(format!("user_{i}"))),
                ("name", Value::from(person_name(cfg.seed ^ 2, i))),
                ("followers", Value::Int((i as i64 * 13) % 50_000)),
                ("following", Value::Int((i as i64 * 7) % 5_000)),
            ]);
            // `location` exists only for an early contiguous region of
            // the crawl — real dumps are heterogeneous like this, and
            // it is what makes thin RAG contexts over-generalise.
            if i < users_n * 2 / 5 {
                p.insert("location".into(), Value::from(format!("city-{}", i % 50)));
            } else if i < users_n * 4 / 5 {
                p.insert("bio".into(), Value::from(short_text(cfg.seed ^ 5, i, 4)));
            } else {
                p.insert("pinned".into(), Value::Int((i as i64 * 3) % 997));
            }
            if !cfg.clean {
                if i % 211 == 9 {
                    p.remove("screen_name");
                }
                // Raw crawls miss display names and counters often.
                if i % 6 == 0 {
                    p.remove("name");
                }
                if i % 12 == 5 {
                    p.remove("followers");
                }
                if i % 4 == 1 {
                    p.remove("following"); // protected accounts
                }
            }
            g.add_node(["User"], p)
        })
        .collect();
    // Tweets, timestamped in posting order.
    let base_ts = 1_620_000_000i64;
    let tweets: Vec<NodeId> = (0..tweets_n)
        .map(|i| {
            let mut p = props([
                ("id", Value::Int((1_000_000 + i) as i64)),
                ("text", Value::from(short_text(cfg.seed, i, 6))),
                ("created_at", Value::DateTime(base_ts + (i as i64) * 60)),
                ("favorites", Value::Int((i as i64 * 3) % 500)),
            ]);
            // Language tags exist only for the first third of the
            // timeline (API change mid-crawl) — regional heterogeneity.
            if i < tweets_n / 3 {
                p.insert("lang".into(), Value::from(if i % 5 == 0 { "fr" } else { "en" }));
            } else if i < tweets_n * 2 / 3 {
                p.insert("place".into(), Value::from(format!("place-{}", i % 30)));
            } else {
                p.insert("conversation".into(), Value::Int((2_000_000 + i) as i64));
            }
            if !cfg.clean {
                if i % 2_800 == 17 {
                    // duplicate ids: ~10 pairs at full scale
                    p.insert("id".into(), Value::Int(1_000_000));
                }
                if i % 53 == 29 {
                    p.remove("id"); // ~2% of tweets lack an id
                }
                if i % 3_500 == 23 {
                    p.remove("created_at");
                }
                if i % 7 == 3 {
                    p.remove("text"); // retweet bodies are not stored
                }
            }
            g.add_node(["Tweet"], p)
        })
        .collect();
    let hashtags: Vec<NodeId> = (0..hashtags_n)
        .map(|i| g.add_node(["Hashtag"], props([("name", Value::from(format!("tag{i}")))])))
        .collect();
    let links: Vec<NodeId> = (0..links_n)
        .map(|i| {
            g.add_node(["Link"], props([("url", Value::from(format!("https://example.com/{i}")))]))
        })
        .collect();
    let sources: Vec<NodeId> = (0..sources_n)
        .map(|i| g.add_node(["Source"], props([("name", Value::from(format!("client-{i}")))])))
        .collect();

    // --- POSTS: one author per tweet, with injected 0/2-author cases ----
    let all_users = {
        let mut v = vec![me];
        v.extend(&users);
        v
    };
    let mut posts_budget = tweets_n; // exactly one POSTS per tweet nominally
    for (i, &t) in tweets.iter().enumerate() {
        let orphan = !cfg.clean && i % 1_900 == 11 && posts_budget > 0;
        if orphan {
            // Re-spend this tweet's edge as a second author elsewhere.
            let dup_target = tweets[(i + 1) % tweets_n];
            let extra = all_users[(i * 31) % all_users.len()];
            g.add_edge(extra, dup_target, "POSTS", PropertyMap::new());
            posts_budget -= 1;
            continue;
        }
        if posts_budget == 0 {
            break;
        }
        let author = all_users[(i * 17) % all_users.len()];
        g.add_edge(author, t, "POSTS", PropertyMap::new());
        posts_budget -= 1;
    }

    // --- RETWEETS: retweet is newer than the original --------------------
    let retweets_n = cfg.scaled(6_000);
    for k in 0..retweets_n {
        // Pick an original early in the timeline and a retweet later.
        let orig = k % (tweets_n / 2).max(1);
        let rt = tweets_n / 2 + (k * 3) % (tweets_n / 2).max(1);
        if !cfg.clean && k % 37 == 5 {
            // Temporal violation: the "retweet" is OLDER than the
            // original (~2.7% of retweets).
            let older = orig / 2;
            g.add_edge(tweets[older], tweets[orig.max(1)], "RETWEETS", PropertyMap::new());
            continue;
        }
        g.add_edge(tweets[rt], tweets[orig], "RETWEETS", PropertyMap::new());
    }

    // --- REPLY_TO: replies are newer than their targets ------------------
    let replies_n = cfg.scaled(693);
    for k in 0..replies_n {
        let target = k % (tweets_n / 2).max(1);
        let reply = tweets_n / 2 + (k * 5) % (tweets_n / 2).max(1);
        g.add_edge(tweets[reply], tweets[target], "REPLY_TO", PropertyMap::new());
    }

    // --- TAGS / CONTAINS / USING ------------------------------------------
    for k in 0..cfg.scaled(6_000) {
        let dst = if !cfg.clean && k % 33 == 11 {
            links[k % links_n] // mis-resolved tag targets
        } else {
            hashtags[k % hashtags_n]
        };
        g.add_edge(tweets[(k * 11) % tweets_n], dst, "TAGS", PropertyMap::new());
    }
    for k in 0..cfg.scaled(1_500) {
        g.add_edge(tweets[(k * 19) % tweets_n], links[k % links_n], "CONTAINS", PropertyMap::new());
    }
    for k in 0..cfg.scaled(2_800) {
        g.add_edge(
            tweets[(k * 23) % tweets_n],
            sources[k % sources_n],
            "USING",
            PropertyMap::new(),
        );
    }

    // --- FOLLOWS (with self-follow violations) ---------------------------
    // Following concentrates on a small cohort of aggressive accounts
    // (crawl seeds / follow-bots) — realistic, and the source of the
    // long incident blocks that straddle window boundaries (§4.5's
    // broken patterns).
    let follows_n = cfg.scaled(4_500);
    let bots: Vec<NodeId> = all_users.iter().take(15.max(all_users.len() / 900)).copied().collect();
    for k in 0..follows_n {
        let a = bots[k % bots.len()];
        let b = if !cfg.clean && k % 900 == 13 {
            a // self-follow violation (~5 at full scale)
        } else {
            let mut b = all_users[rng.gen_range(0..all_users.len())];
            if b == a {
                b = all_users[(k + 1) % all_users.len()];
            }
            b
        };
        g.add_edge(a, b, "FOLLOWS", PropertyMap::new());
    }

    // --- MENTIONS fills the remaining edge budget -------------------------
    // Raw crawls contain resolution glitches: a slice of mentions
    // points at hashtag nodes instead of users (entity-linking bugs),
    // which is what gives "label enforcement" rules real violations.
    let target_edges = cfg.scaled(EDGES);
    let remaining = target_edges.saturating_sub(g.edge_count());
    for k in 0..remaining {
        let dst = if !cfg.clean && k % 16 == 7 {
            hashtags[k % hashtags_n]
        } else {
            all_users[(k * 13) % all_users.len()]
        };
        g.add_edge(tweets[(k * 29) % tweets_n], dst, "MENTIONS", PropertyMap::new());
    }

    Dataset { id: DatasetId::Twitter, graph: g, ground_truth: ground_truth() }
}

/// Ground-truth rules of the Twitter graph, including the paper's
/// introduction examples: retweet-after-tweet, no self-follow, every
/// tweet has a valid author.
pub fn ground_truth() -> Vec<ConsistencyRule> {
    vec![
        ConsistencyRule::UniqueProperty { label: "Tweet".into(), key: "id".into() },
        ConsistencyRule::MandatoryProperty { label: "Tweet".into(), key: "created_at".into() },
        ConsistencyRule::MandatoryProperty { label: "User".into(), key: "screen_name".into() },
        ConsistencyRule::UniqueProperty { label: "User".into(), key: "id".into() },
        ConsistencyRule::IncomingExactlyOne {
            src_label: "User".into(),
            etype: "POSTS".into(),
            dst_label: "Tweet".into(),
        },
        ConsistencyRule::NoSelfLoop { label: "User".into(), etype: "FOLLOWS".into() },
        ConsistencyRule::TemporalOrder {
            src_label: "Tweet".into(),
            src_key: "created_at".into(),
            etype: "RETWEETS".into(),
            dst_label: "Tweet".into(),
            dst_key: "created_at".into(),
        },
        ConsistencyRule::EdgeEndpointLabels {
            etype: "POSTS".into(),
            src_label: "User".into(),
            dst_label: "Tweet".into(),
        },
        ConsistencyRule::PropertyRange {
            label: "User".into(),
            key: "followers".into(),
            min: 0,
            max: 100_000_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::GraphStats;

    fn small() -> Dataset {
        generate(&GenConfig { scale: 0.02, ..Default::default() })
    }

    #[test]
    fn table1_sizes_at_scale_one() {
        let d = generate(&GenConfig::default());
        let s = GraphStats::of(&d.graph);
        assert_eq!(s.nodes, NODES);
        assert_eq!(s.edges, EDGES);
        assert_eq!(s.node_labels, 6);
        assert_eq!(s.edge_labels, 8);
    }

    #[test]
    fn self_follows_exist_when_dirty() {
        let d = small();
        let self_follows = d.graph.edges_with_label("FOLLOWS").filter(|e| e.src == e.dst).count();
        assert!(self_follows > 0);
        let clean = generate(&GenConfig { scale: 0.02, clean: true, ..Default::default() });
        let none = clean.graph.edges_with_label("FOLLOWS").filter(|e| e.src == e.dst).count();
        assert_eq!(none, 0);
    }

    #[test]
    fn temporal_violations_exist_when_dirty() {
        let d = small();
        let violations = d
            .graph
            .edges_with_label("RETWEETS")
            .filter(|e| {
                let src_ts = d.graph.node(e.src).prop("created_at").clone();
                let dst_ts = d.graph.node(e.dst).prop("created_at").clone();
                matches!(src_ts.cypher_cmp(&dst_ts), Some(std::cmp::Ordering::Less))
            })
            .count();
        assert!(violations > 0);
    }

    #[test]
    fn most_tweets_have_exactly_one_author() {
        let d = small();
        let mut exactly_one = 0usize;
        let mut total = 0usize;
        for t in d.graph.nodes_with_label("Tweet") {
            total += 1;
            let authors = d.graph.in_edges(t.id).filter(|e| e.label == "POSTS").count();
            if authors == 1 {
                exactly_one += 1;
            }
        }
        assert!(exactly_one as f64 / total as f64 > 0.9);
        assert!(exactly_one < total); // some violations exist
    }

    #[test]
    fn me_node_is_both_me_and_user() {
        let d = small();
        let me: Vec<_> = d.graph.nodes_with_label("Me").collect();
        assert_eq!(me.len(), 1);
        assert!(me[0].has_label("User"));
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }
}
