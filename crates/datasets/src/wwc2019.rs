//! WWC2019 dataset generator.
//!
//! Reproduces the shape of the Neo4j `wwc2019` example graph the
//! paper uses: the 2019 Women's World Cup with teams, persons
//! (players and coaches), matches, squads and one tournament. Sizes
//! at `scale = 1.0` match Table 1 exactly: **2468 nodes, 14799 edges,
//! 5 node labels, 9 edge labels**.
//!
//! Injected inconsistencies (unless `clean`):
//! * a few `Person` nodes missing `name`;
//! * a couple of `Match` nodes missing `stage` or `date`;
//! * two pairs of `Match` nodes sharing an `id`;
//! * several pairs of `SCORED_GOAL` edges with the same `(player,
//!   match, minute)` — the paper's "a player cannot score two goals
//!   in the same minute of the same match" rule has real violations
//!   to find.

use grm_pgraph::{props, NodeId, PropertyGraph, PropertyMap, Value};
use grm_rules::catalog::squad_tournament_rule;
use grm_rules::ConsistencyRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{person_name, Dataset, DatasetId, GenConfig};

/// Target totals at scale 1.0 (Table 1).
pub const NODES: usize = 2468;
/// Target edge total at scale 1.0 (Table 1).
pub const EDGES: usize = 14799;

const STAGES: [&str; 5] = ["Group", "Round of 16", "Quarterfinal", "Semifinal", "Final"];

/// Generates the WWC2019 graph.
pub fn generate(cfg: &GenConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77c2_0190);
    let mut g = PropertyGraph::with_capacity(cfg.scaled(NODES), cfg.scaled(EDGES));

    let teams_n = cfg.scaled(24);
    let matches_n = cfg.scaled(52);
    let squads_n = teams_n;
    let target_nodes = cfg.scaled(NODES);
    let persons_n = target_nodes.saturating_sub(1 + teams_n + matches_n + squads_n).max(2);

    // --- Nodes ----------------------------------------------------------
    let tournament = g.add_node(
        ["Tournament"],
        props([
            ("id", Value::Int(1)),
            ("name", Value::from("Women's World Cup 2019")),
            ("year", Value::Int(2019)),
        ]),
    );
    let teams: Vec<NodeId> = (0..teams_n)
        .map(|i| {
            g.add_node(
                ["Team"],
                props([
                    ("id", Value::Int(i as i64)),
                    ("name", Value::from(format!("Team {i}"))),
                    ("ranking", Value::Int((i as i64 % 30) + 1)),
                ]),
            )
        })
        .collect();
    // June 7 2019 ≈ epoch 1_559_865_600; matches every ~12h.
    let matches: Vec<NodeId> = (0..matches_n)
        .map(|i| {
            let mut p = props([
                ("id", Value::from(format!("m{i}"))),
                ("date", Value::DateTime(1_559_865_600 + (i as i64) * 43_200)),
                ("stage", Value::from(STAGES[stage_for(i, matches_n)])),
            ]);
            // Attendance was recorded for the first half of the
            // tournament only — regional heterogeneity.
            if i < matches_n / 2 {
                p.insert("attendance".into(), Value::Int(10_000 + (i as i64 * 977) % 40_000));
            }
            if !cfg.clean {
                // 2 missing stage, 1 missing date, 2 duplicate ids.
                if i == 7 || i == 19 {
                    p.remove("stage");
                }
                if i == 11 {
                    p.remove("date");
                }
                if i == 30 || i == 31 {
                    p.insert("id".into(), Value::from("m30"));
                }
            }
            g.add_node(["Match"], p)
        })
        .collect();
    let persons: Vec<NodeId> = (0..persons_n)
        .map(|i| {
            let mut p = props([
                ("id", Value::from(format!("p{i}"))),
                ("name", Value::from(person_name(cfg.seed, i))),
                ("dob", Value::DateTime(631_152_000 + (i as i64) * 86_400)),
            ]);
            // Club affiliations were recorded only for an early block
            // of the roster — regional heterogeneity that penalises
            // rules inferred from thin retrieved contexts.
            if i < persons_n * 3 / 10 {
                p.insert("club".into(), Value::from(format!("Club {}", i % 40)));
            } else if i < persons_n * 6 / 10 {
                p.insert(
                    "position".into(),
                    Value::from(["Goalkeeper", "Defender", "Midfielder", "Forward"][i % 4]),
                );
            } else {
                p.insert("caps".into(), Value::Int((i as i64 * 7) % 150));
            }
            if !cfg.clean {
                if i % 53 == 13 {
                    p.remove("name"); // ~2% of persons lack a name
                }
                if i % 41 == 7 {
                    p.remove("dob"); // birth dates are spotty
                }
            }
            g.add_node(["Person"], p)
        })
        .collect();
    let squads: Vec<NodeId> = (0..squads_n)
        .map(|i| {
            g.add_node(
                ["Squad"],
                props([("id", Value::Int(i as i64)), ("name", Value::from(format!("Squad {i}")))]),
            )
        })
        .collect();

    // --- Structural edges -------------------------------------------------
    for &t in &teams {
        g.add_edge(t, tournament, "PARTICIPATED_IN", PropertyMap::new());
    }
    for (i, &m) in matches.iter().enumerate() {
        g.add_edge(teams[i % teams_n], m, "HOME_TEAM", PropertyMap::new());
        g.add_edge(m, tournament, "IN_TOURNAMENT", PropertyMap::new());
    }
    for (i, &s) in squads.iter().enumerate() {
        g.add_edge(s, teams[i], "FOR_TEAM", PropertyMap::new());
        g.add_edge(s, tournament, "FOR_TOURNAMENT", PropertyMap::new());
    }
    // One coach per team; coaches are the first `teams_n` persons.
    for (i, &t) in teams.iter().enumerate() {
        g.add_edge(persons[i % persons_n], t, "COACH_FOR", PropertyMap::new());
    }
    // 23 players per squad (players come after the coaches).
    let squad_size = 23usize;
    for (si, &s) in squads.iter().enumerate() {
        for k in 0..squad_size {
            let p = persons[(teams_n + si * squad_size + k) % persons_n];
            g.add_edge(p, s, "IN_SQUAD", props([("number", Value::Int((k + 1) as i64))]));
        }
    }

    // --- Goals -------------------------------------------------------------
    let goals_n = cfg.scaled(146);
    let mut goal_edges = Vec::with_capacity(goals_n);
    for i in 0..goals_n {
        let p = persons[(teams_n + i * 7) % persons_n];
        let m = matches[i % matches_n];
        let minute = 1 + (rng.gen::<u32>() % 90) as i64;
        goal_edges.push((p, m, minute));
    }
    if !cfg.clean {
        // 5 duplicate-minute goals: copy an earlier goal verbatim.
        let dups: Vec<(NodeId, NodeId, i64)> = goal_edges.iter().take(5).copied().collect();
        let len = goal_edges.len();
        for (k, d) in dups.into_iter().enumerate() {
            goal_edges[len - 1 - k] = d;
        }
    }
    for (p, m, minute) in &goal_edges {
        g.add_edge(
            *p,
            *m,
            "SCORED_GOAL",
            props([("minute", Value::Int(*minute)), ("penalty", Value::Bool(*minute > 85))]),
        );
    }

    // --- PLAYED_IN fills the remaining edge budget --------------------------
    // A cohort of "star players" appears in every match; their long
    // incident blocks are what can straddle a window boundary (the
    // §4.5 broken-pattern effect). Everyone else is spread evenly.
    let target_edges = cfg.scaled(EDGES);
    let played_n = target_edges.saturating_sub(g.edge_count());
    let star_n = cfg.scaled(45).min(persons_n.saturating_sub(teams_n)).max(1);
    let star_edges = (star_n * matches_n).min(played_n);
    for i in 0..star_edges {
        let p = persons[(teams_n + i / matches_n) % persons_n];
        let m = matches[i % matches_n];
        g.add_edge(p, m, "PLAYED_IN", props([("minutes", Value::Int(45 + (i as i64 % 46)))]));
    }
    let rest = played_n - star_edges;
    let others_start = teams_n + star_n;
    let others_n = persons_n.saturating_sub(others_start).max(1);
    for i in 0..rest {
        let p = persons[(others_start + i % others_n) % persons_n];
        // Data-entry slips occasionally register an appearance against
        // the tournament node instead of a match.
        let target = if !cfg.clean && i % 40 == 21 {
            tournament
        } else {
            matches[(i / others_n) % matches_n]
        };
        g.add_edge(p, target, "PLAYED_IN", props([("minutes", Value::Int(45 + (i as i64 % 46)))]));
    }

    Dataset { id: DatasetId::Wwc2019, graph: g, ground_truth: ground_truth() }
}

fn stage_for(i: usize, total: usize) -> usize {
    // Early matches are group stage; the tail walks the knockout
    // rounds, ending at the final.
    let knockout = total.saturating_sub(total * 3 / 4);
    if i + knockout < total {
        0
    } else {
        (1 + (i + knockout - total) * 4 / knockout.max(1)).min(4)
    }
}

/// Ground-truth rules of the WWC2019 graph, including the complex
/// squad/tournament rule the paper credits to Mixtral.
pub fn ground_truth() -> Vec<ConsistencyRule> {
    vec![
        ConsistencyRule::MandatoryProperty { label: "Match".into(), key: "date".into() },
        ConsistencyRule::MandatoryProperty { label: "Match".into(), key: "stage".into() },
        ConsistencyRule::MandatoryProperty { label: "Person".into(), key: "name".into() },
        ConsistencyRule::UniqueProperty { label: "Match".into(), key: "id".into() },
        ConsistencyRule::UniqueProperty { label: "Person".into(), key: "id".into() },
        ConsistencyRule::EdgeEndpointLabels {
            etype: "PLAYED_IN".into(),
            src_label: "Person".into(),
            dst_label: "Match".into(),
        },
        ConsistencyRule::EdgeEndpointLabels {
            etype: "IN_TOURNAMENT".into(),
            src_label: "Match".into(),
            dst_label: "Tournament".into(),
        },
        ConsistencyRule::PatternUniqueness {
            src_label: "Person".into(),
            etype: "SCORED_GOAL".into(),
            dst_label: "Match".into(),
            key: "minute".into(),
        },
        ConsistencyRule::PropertyValueIn {
            label: "Match".into(),
            key: "stage".into(),
            allowed: STAGES.iter().map(|s| Value::from(*s)).collect(),
        },
        squad_tournament_rule(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::GraphStats;

    #[test]
    fn table1_sizes_at_scale_one() {
        let d = generate(&GenConfig::default());
        let s = GraphStats::of(&d.graph);
        assert_eq!(s.nodes, NODES);
        assert_eq!(s.edges, EDGES);
        assert_eq!(s.node_labels, 5);
        assert_eq!(s.edge_labels, 9);
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig::default());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        // Spot-check a node's properties match.
        let na = a.graph.node(grm_pgraph::NodeId(100));
        let nb = b.graph.node(grm_pgraph::NodeId(100));
        assert_eq!(na.props, nb.props);
    }

    #[test]
    fn clean_graph_has_no_missing_match_dates() {
        let d = generate(&GenConfig { clean: true, ..Default::default() });
        for m in d.graph.nodes_with_label("Match") {
            assert!(!m.prop("date").is_null());
            assert!(!m.prop("stage").is_null());
        }
    }

    #[test]
    fn dirty_graph_has_the_injected_violations() {
        let d = generate(&GenConfig::default());
        let missing_stage =
            d.graph.nodes_with_label("Match").filter(|m| m.prop("stage").is_null()).count();
        assert_eq!(missing_stage, 2);
        let missing_date =
            d.graph.nodes_with_label("Match").filter(|m| m.prop("date").is_null()).count();
        assert_eq!(missing_date, 1);
    }

    #[test]
    fn scaled_down_graph_is_proportional() {
        let d = generate(&GenConfig { scale: 0.1, ..Default::default() });
        let s = GraphStats::of(&d.graph);
        assert!((200..=300).contains(&s.nodes), "{}", s.nodes);
        assert!((1300..=1600).contains(&s.edges), "{}", s.edges);
        assert_eq!(s.node_labels, 5);
    }

    #[test]
    fn duplicate_goal_minutes_exist_when_dirty() {
        let d = generate(&GenConfig::default());
        use std::collections::HashMap;
        let mut seen: HashMap<(u32, u32, String), usize> = HashMap::new();
        for e in d.graph.edges_with_label("SCORED_GOAL") {
            *seen.entry((e.src.0, e.dst.0, e.prop("minute").group_key())).or_insert(0) += 1;
        }
        assert!(seen.values().any(|&c| c > 1));
    }

    #[test]
    fn ground_truth_includes_complex_rule() {
        let rules = ground_truth();
        assert!(rules.iter().any(
            |r| matches!(r, ConsistencyRule::Custom { id, .. } if id == "wwc-squad-tournament")
        ));
    }
}
