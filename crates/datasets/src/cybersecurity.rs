//! Cybersecurity dataset generator.
//!
//! Reproduces the shape of the Neo4j `cybersecurity` example graph
//! the paper uses: a BloodHound-style active-directory environment
//! "with users, groups, domains, policies, and computers". Sizes at
//! `scale = 1.0` match Table 1 exactly: **953 nodes, 4838 edges,
//! 7 node labels, 16 edge labels**.
//!
//! Injected inconsistencies (unless `clean`):
//! * a few `Computer.owned` values that are the *string* `'True'`
//!   instead of a boolean — the paper's "the owned property should
//!   only be True or False" rule has violations to catch;
//! * a few `Computer.domain` values that fail the domain-name format
//!   (the §4.4 regex rule);
//! * a handful of users missing `name`;
//! * duplicate `User.id`s.

use grm_pgraph::{props, NodeId, PropertyGraph, PropertyMap, Value};
use grm_rules::ConsistencyRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{person_name, Dataset, DatasetId, GenConfig};

/// Target node total at scale 1.0 (Table 1).
pub const NODES: usize = 953;
/// Target edge total at scale 1.0 (Table 1).
pub const EDGES: usize = 4838;

const OSES: [&str; 4] = ["Windows 10", "Windows Server 2016", "Windows Server 2019", "Windows 7"];

/// Generates the Cybersecurity graph.
pub fn generate(cfg: &GenConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5ec0_0953);
    let mut g = PropertyGraph::with_capacity(cfg.scaled(NODES), cfg.scaled(EDGES));

    let domains_n = 2usize;
    let ous_n = cfg.scaled(20);
    let gpos_n = cfg.scaled(30);
    let groups_n = cfg.scaled(120);
    let computers_n = cfg.scaled(300);
    let services_n = cfg.scaled(31);
    let target_nodes = cfg.scaled(NODES);
    let users_n = target_nodes
        .saturating_sub(domains_n + ous_n + gpos_n + groups_n + computers_n + services_n)
        .max(2);

    // --- Nodes ----------------------------------------------------------
    let domains: Vec<NodeId> = (0..domains_n)
        .map(|i| {
            g.add_node(
                ["Domain"],
                props([
                    ("name", Value::from(format!("corp{i}.example.com"))),
                    ("functionallevel", Value::from("2016")),
                ]),
            )
        })
        .collect();
    let ous: Vec<NodeId> = (0..ous_n)
        .map(|i| {
            g.add_node(
                ["OU"],
                props([("id", Value::Int(i as i64)), ("name", Value::from(format!("OU-{i}")))]),
            )
        })
        .collect();
    let gpos: Vec<NodeId> = (0..gpos_n)
        .map(|i| {
            g.add_node(
                ["GPO"],
                props([("id", Value::Int(i as i64)), ("name", Value::from(format!("Policy-{i}")))]),
            )
        })
        .collect();
    let groups: Vec<NodeId> = (0..groups_n)
        .map(|i| {
            g.add_node(
                ["Group"],
                props([
                    ("id", Value::Int(i as i64)),
                    ("name", Value::from(format!("GROUP-{i}@CORP"))),
                ]),
            )
        })
        .collect();
    let computers: Vec<NodeId> = (0..computers_n)
        .map(|i| {
            let owned: Value = if !cfg.clean && i % 97 == 3 {
                Value::from("True") // string, not boolean: violation
            } else {
                Value::Bool(i % 11 == 0)
            };
            let domain: Value = if !cfg.clean && i % 89 == 7 {
                Value::from("not a domain!!") // fails the format regex
            } else {
                Value::from(format!("host{i}.corp{}.example.com", i % domains_n))
            };
            // Service principal names were inventoried for the first
            // half of the fleet only — regional heterogeneity.
            let spn: Value = if i < computers_n / 2 {
                Value::from(format!("MSSQLSvc/host{i}.corp0.example.com:1433"))
            } else {
                Value::Null
            };
            g.add_node(
                ["Computer"],
                props([
                    ("id", Value::Int(i as i64)),
                    ("name", Value::from(format!("HOST-{i}"))),
                    (
                        "objectid",
                        Value::from(format!(
                            "S-1-5-21-{}-{}-{}-{}",
                            2000 + i,
                            11 * i + 3,
                            3 * i + 11,
                            1000 + i
                        )),
                    ),
                    (
                        "distinguishedname",
                        Value::from(format!(
                            "CN=HOST-{i},OU=OU-{},DC=corp{},DC=example,DC=com",
                            i % 20,
                            i % 2
                        )),
                    ),
                    ("os", Value::from(OSES[i % OSES.len()])),
                    ("owned", owned),
                    ("domain", domain),
                    ("spn", spn),
                ]),
            )
        })
        .collect();
    let users: Vec<NodeId> = (0..users_n)
        .map(|i| {
            // AD objects carry verbose identity payloads (SIDs and
            // distinguished names) — this is what makes the paper's
            // Cybersecurity encoding token-heavy relative to its
            // element count.
            let mut p = props([
                ("id", Value::Int(i as i64)),
                ("name", Value::from(person_name(cfg.seed ^ 1, i))),
                (
                    "objectid",
                    Value::from(format!(
                        "S-1-5-21-{}-{}-{}-{}",
                        1000 + i,
                        7 * i + 13,
                        13 * i + 7,
                        500 + i
                    )),
                ),
                (
                    "distinguishedname",
                    Value::from(format!(
                        "CN=USER-{i},OU=OU-{},DC=corp{},DC=example,DC=com",
                        i % 20,
                        i % 2
                    )),
                ),
                ("enabled", Value::Bool(i % 19 != 0)),
                ("pwdlastset", Value::DateTime(1_600_000_000 + (i as i64) * 3_600)),
            ]);
            // Mail attributes were synced for only part of the forest
            // — regional heterogeneity.
            if i < users_n / 3 {
                p.insert("email".into(), Value::from(format!("user{i}@corp0.example.com")));
            } else if i < users_n * 2 / 3 {
                p.insert(
                    "title".into(),
                    Value::from(["Analyst", "Engineer", "Manager", "Director"][i % 4]),
                );
            } else {
                p.insert("lastlogon".into(), Value::DateTime(1_650_000_000 + (i as i64) * 7_200));
            }
            if !cfg.clean {
                if i % 71 == 5 {
                    p.remove("name");
                }
                if i % 13 == 4 {
                    p.remove("pwdlastset"); // never-logged-in accounts
                }
                if i == 100 || i == 101 {
                    p.insert("id".into(), Value::Int(100)); // duplicate ids
                }
            }
            g.add_node(["User"], p)
        })
        .collect();
    let services: Vec<NodeId> = (0..services_n)
        .map(|i| {
            g.add_node(
                ["Service"],
                props([
                    ("id", Value::Int(i as i64)),
                    ("name", Value::from(format!("svc-{i}"))),
                    ("port", Value::Int(1024 + (i as i64 * 7) % 64000)),
                ]),
            )
        })
        .collect();

    // --- Edges ------------------------------------------------------------
    let pick = |rng: &mut StdRng, v: &[NodeId]| v[rng.gen_range(0..v.len())];

    // CONTAINS: every user and computer sits in an OU; domains contain OUs.
    for (i, &u) in users.iter().enumerate() {
        g.add_edge(ous[i % ous_n], u, "CONTAINS", PropertyMap::new());
    }
    for (i, &c) in computers.iter().enumerate() {
        g.add_edge(ous[i % ous_n], c, "CONTAINS", PropertyMap::new());
    }
    for (i, &ou) in ous.iter().enumerate() {
        g.add_edge(domains[i % domains_n], ou, "CONTAINS", PropertyMap::new());
    }
    // GP_LINK: GPOs link to OUs (and a few to domains).
    for (i, &gpo) in gpos.iter().enumerate() {
        let target = if i % 6 == 0 { domains[i % domains_n] } else { ous[i % ous_n] };
        g.add_edge(gpo, target, "GP_LINK", props([("enforced", Value::Bool(i % 3 == 0))]));
    }
    // Extra GP_LINKs up to the budget line.
    for i in gpos.len()..cfg.scaled(50) {
        g.add_edge(gpos[i % gpos_n.max(1)], ous[i % ous_n], "GP_LINK", PropertyMap::new());
    }
    // TRUSTS between the two domains (both ways).
    if domains.len() >= 2 {
        g.add_edge(domains[0], domains[1], "TRUSTS", PropertyMap::new());
        g.add_edge(domains[1], domains[0], "TRUSTS", PropertyMap::new());
    }
    // Fixed-budget relation families (counts sum with MEMBER_OF filling
    // the remainder to hit the Table-1 edge total exactly).
    let add_many = |rng: &mut StdRng,
                    g: &mut PropertyGraph,
                    n: usize,
                    label: &str,
                    srcs: &[NodeId],
                    dsts: &[NodeId]| {
        for _ in 0..n {
            let s = pick(rng, srcs);
            let d = pick(rng, dsts);
            g.add_edge(s, d, label, PropertyMap::new());
        }
    };
    // Administrative reach concentrates on a small cohort of power
    // users (domain admins / service accounts) — the realistic AD
    // shape, and the source of long incident blocks that can straddle
    // window boundaries (§4.5's broken patterns).
    let power: Vec<NodeId> = users.iter().take(8.max(users_n / 60)).copied().collect();
    // A slice of admin edges point at service objects (stale ACL
    // exports) — label-enforcement rules have real violations.
    let admin_glitches = if cfg.clean { 0 } else { cfg.scaled(60) };
    add_many(&mut rng, &mut g, cfg.scaled(800) - admin_glitches, "ADMIN_TO", &power, &computers);
    add_many(&mut rng, &mut g, admin_glitches, "ADMIN_TO", &power, &services);
    add_many(&mut rng, &mut g, cfg.scaled(600), "HAS_SESSION", &computers, &users);
    add_many(&mut rng, &mut g, cfg.scaled(200), "OWNS", &power, &computers);
    add_many(&mut rng, &mut g, cfg.scaled(400), "CAN_RDP", &power, &computers);
    add_many(&mut rng, &mut g, cfg.scaled(150), "EXECUTE_DCOM", &power, &computers);
    add_many(&mut rng, &mut g, cfg.scaled(100), "ALLOWED_TO_DELEGATE", &computers, &services);
    add_many(&mut rng, &mut g, cfg.scaled(50), "GET_CHANGES", &users, &domains);
    add_many(&mut rng, &mut g, cfg.scaled(50), "GET_CHANGES_ALL", &groups, &domains);
    add_many(&mut rng, &mut g, cfg.scaled(150), "WRITE_DACL", &users, &groups);
    add_many(&mut rng, &mut g, cfg.scaled(150), "WRITE_OWNER", &groups, &computers);
    add_many(&mut rng, &mut g, cfg.scaled(100), "ADD_MEMBER", &users, &groups);
    add_many(&mut rng, &mut g, cfg.scaled(66), "FORCE_CHANGE_PASSWORD", &users, &users);

    // MEMBER_OF fills the remaining budget: users → groups, and some
    // nested groups.
    let target_edges = cfg.scaled(EDGES);
    let remaining = target_edges.saturating_sub(g.edge_count());
    for i in 0..remaining {
        if i % 10 == 9 && groups.len() >= 2 {
            let a = groups[i % groups_n];
            let b = groups[(i + 1) % groups_n];
            g.add_edge(a, b, "MEMBER_OF", PropertyMap::new());
        } else if i % 3 == 0 {
            // Power users accumulate group memberships too, growing
            // their incident blocks further.
            let u = power[i % power.len()];
            let grp = groups[(i * 7) % groups_n];
            g.add_edge(u, grp, "MEMBER_OF", PropertyMap::new());
        } else {
            let u = users[i % users_n];
            let grp = groups[(i * 7) % groups_n];
            g.add_edge(u, grp, "MEMBER_OF", PropertyMap::new());
        }
    }

    Dataset { id: DatasetId::Cybersecurity, graph: g, ground_truth: ground_truth() }
}

/// Ground-truth rules of the Cybersecurity graph, including the
/// paper's quoted "owned True/False" and domain-format rules.
pub fn ground_truth() -> Vec<ConsistencyRule> {
    vec![
        ConsistencyRule::PropertyValueIn {
            label: "Computer".into(),
            key: "owned".into(),
            allowed: vec![Value::Bool(true), Value::Bool(false)],
        },
        ConsistencyRule::PropertyRegex {
            label: "Computer".into(),
            key: "domain".into(),
            pattern: r"^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$".into(),
        },
        ConsistencyRule::MandatoryProperty { label: "User".into(), key: "name".into() },
        ConsistencyRule::MandatoryProperty { label: "Computer".into(), key: "os".into() },
        ConsistencyRule::UniqueProperty { label: "User".into(), key: "id".into() },
        ConsistencyRule::UniqueProperty { label: "Computer".into(), key: "id".into() },
        ConsistencyRule::EdgeEndpointLabels {
            etype: "HAS_SESSION".into(),
            src_label: "Computer".into(),
            dst_label: "User".into(),
        },
        ConsistencyRule::EdgeEndpointLabels {
            etype: "ADMIN_TO".into(),
            src_label: "User".into(),
            dst_label: "Computer".into(),
        },
        ConsistencyRule::PropertyRange {
            label: "Service".into(),
            key: "port".into(),
            min: 1,
            max: 65535,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::GraphStats;

    #[test]
    fn table1_sizes_at_scale_one() {
        let d = generate(&GenConfig::default());
        let s = GraphStats::of(&d.graph);
        assert_eq!(s.nodes, NODES);
        assert_eq!(s.edges, EDGES);
        assert_eq!(s.node_labels, 7);
        assert_eq!(s.edge_labels, 16);
    }

    #[test]
    fn owned_violations_present_when_dirty() {
        let d = generate(&GenConfig::default());
        let strings = d
            .graph
            .nodes_with_label("Computer")
            .filter(|c| matches!(c.prop("owned"), Value::Str(_)))
            .count();
        assert!(strings > 0);
        let clean = generate(&GenConfig { clean: true, ..Default::default() });
        let strings_clean = clean
            .graph
            .nodes_with_label("Computer")
            .filter(|c| matches!(c.prop("owned"), Value::Str(_)))
            .count();
        assert_eq!(strings_clean, 0);
    }

    #[test]
    fn bad_domains_injected() {
        let d = generate(&GenConfig::default());
        let bad = d
            .graph
            .nodes_with_label("Computer")
            .filter(|c| matches!(c.prop("domain"), Value::Str(s) if s.contains(' ')))
            .count();
        assert!(bad > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig::default());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea = a.graph.edge(grm_pgraph::EdgeId(2000));
        let eb = b.graph.edge(grm_pgraph::EdgeId(2000));
        assert_eq!((ea.src, ea.dst, &ea.label), (eb.src, eb.dst, &eb.label));
    }

    #[test]
    fn every_user_is_contained_in_an_ou() {
        let d = generate(&GenConfig::default());
        for u in d.graph.nodes_with_label("User") {
            let contained = d.graph.in_edges(u.id).any(|e| e.label == "CONTAINS");
            assert!(contained, "user {} not contained", u.id);
        }
    }

    #[test]
    fn scaled_down_keeps_all_edge_labels() {
        let d = generate(&GenConfig { scale: 0.2, ..Default::default() });
        assert_eq!(GraphStats::of(&d.graph).edge_labels, 16);
    }
}
