//! # grm-vecstore — embeddings, vector store, RAG retrieval
//!
//! Implements the RAG context strategy of the paper (Figure 2b): the
//! encoded graph is chunked and embedded into a vector store
//! ([`store::VectorStore`]); the rule-mining prompt retrieves its
//! top-k most similar chunks ([`retriever::Retriever`]), which become
//! the only part of the graph the LLM sees.
//!
//! The embedder ([`embed::embed`]) is a deterministic feature-hashing
//! n-gram model standing in for the paper's GPT4AllEmbeddings — see
//! DESIGN.md §2 for the substitution argument.

pub mod embed;
pub mod retriever;
pub mod store;

pub use embed::{embed, Embedding, DIM};
pub use retriever::{RagConfig, Retrieval, Retriever, DEFAULT_CHUNK_TOKENS, DEFAULT_TOP_K};
pub use store::{ChunkFootprint, Entry, Hit, VectorStore};
