//! Brute-force cosine-similarity vector store.
//!
//! The paper stores chunk embeddings in "a vector database" (via
//! langchain); at the study's scale (a few thousand chunks) exact
//! brute-force top-k is both simpler and faster than an ANN index,
//! and — unlike ANN — fully deterministic.

use crate::embed::{embed, Embedding};

/// One stored chunk.
#[derive(Debug, Clone)]
pub struct Entry {
    pub id: usize,
    pub text: String,
    pub embedding: Embedding,
}

/// A retrieval hit.
#[derive(Debug, Clone)]
pub struct Hit<'a> {
    pub entry: &'a Entry,
    pub score: f32,
}

/// The vector store.
#[derive(Debug, Default)]
pub struct VectorStore {
    entries: Vec<Entry>,
}

impl VectorStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Embeds and inserts a chunk; returns its id.
    pub fn insert(&mut self, text: impl Into<String>) -> usize {
        let text = text.into();
        let id = self.entries.len();
        let embedding = embed(&text);
        self.entries.push(Entry { id, text, embedding });
        id
    }

    /// Number of stored chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    pub fn get(&self, id: usize) -> Option<&Entry> {
        self.entries.get(id)
    }

    /// Top-`k` entries by cosine similarity to `query`. Ties break by
    /// insertion order (deterministic).
    pub fn top_k(&self, query: &str, k: usize) -> Vec<Hit<'_>> {
        let q = embed(query);
        let mut scored: Vec<Hit<'_>> = self
            .entries
            .iter()
            .map(|entry| Hit { entry, score: q.cosine(&entry.embedding) })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.entry.id.cmp(&b.entry.id))
        });
        scored.truncate(k);
        scored
    }

    /// Byte-exact memory footprint of the store, from container
    /// capacities — deterministic for a fixed ingest sequence, never
    /// read from the allocator. Mirrors
    /// `grm_pgraph::PropertyGraph::footprint`.
    pub fn footprint(&self) -> ChunkFootprint {
        let entry_buffer = (self.entries.capacity() * std::mem::size_of::<Entry>()) as u64;
        let text_bytes: u64 = self.entries.iter().map(|e| e.text.capacity() as u64).sum();
        let embedding_bytes: u64 = self
            .entries
            .iter()
            .map(|e| (e.embedding.0.capacity() * std::mem::size_of::<f32>()) as u64)
            .sum();
        ChunkFootprint {
            chunks: self.entries.len() as u64,
            entry_bytes: entry_buffer,
            text_bytes,
            embedding_bytes,
        }
    }
}

/// Deterministic byte accounting for a [`VectorStore`]: the entry
/// table buffer, the chunk texts, and the embedding vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkFootprint {
    /// Stored chunks.
    pub chunks: u64,
    /// Entry-table buffer bytes (`capacity × size_of::<Entry>()`).
    pub entry_bytes: u64,
    /// Chunk text heap bytes (string capacities).
    pub text_bytes: u64,
    /// Embedding heap bytes (vector capacities × 4).
    pub embedding_bytes: u64,
}

impl ChunkFootprint {
    /// Total bytes over every component.
    pub fn total_bytes(&self) -> u64 {
        self.entry_bytes + self.text_bytes + self.embedding_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VectorStore {
        let mut s = VectorStore::new();
        s.insert("Node n0 with labels Person has properties {name: 'Ada'}");
        s.insert("Node n1 with labels Tweet has properties {text: 'hello world'}");
        s.insert("Node n2 with labels Hashtag has properties {tag: 'rust'}");
        s
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1).unwrap().id, 1);
    }

    #[test]
    fn top_k_returns_most_similar_first() {
        let s = store();
        let hits = s.top_k("Person named Ada", 3);
        assert_eq!(hits[0].entry.id, 0);
        assert!(hits[0].score >= hits[1].score);
        assert!(hits[1].score >= hits[2].score);
    }

    #[test]
    fn top_k_truncates() {
        let s = store();
        assert_eq!(s.top_k("anything", 2).len(), 2);
        assert_eq!(s.top_k("anything", 10).len(), 3);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let s = VectorStore::new();
        assert!(s.top_k("query", 5).is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn footprint_is_deterministic_and_counts_embeddings() {
        let a = store().footprint();
        let b = store().footprint();
        assert_eq!(a, b, "same ingest sequence, byte-identical accounting");
        assert_eq!(a.chunks, 3);
        // Three 256-dim f32 embeddings.
        assert_eq!(a.embedding_bytes, 3 * 256 * 4);
        assert!(a.text_bytes > 0);
        assert!(a.entry_bytes > 0);
        assert_eq!(a.total_bytes(), a.entry_bytes + a.text_bytes + a.embedding_bytes);
        assert_eq!(VectorStore::new().footprint().total_bytes(), 0);
    }

    #[test]
    fn deterministic_ordering_on_ties() {
        let mut s = VectorStore::new();
        s.insert("identical chunk");
        s.insert("identical chunk");
        let hits = s.top_k("identical chunk", 2);
        assert_eq!(hits[0].entry.id, 0);
        assert_eq!(hits[1].entry.id, 1);
    }
}
