//! RAG retrieval over an encoded graph (Figure 2b of the paper).
//!
//! The encoded graph text is chunked, each chunk embedded and stored;
//! at prompt time the rule-mining request is embedded and the top-k
//! chunks are returned as the LLM's context. The paper observes this
//! underperforms (§4.5): the generic "generate consistency rules"
//! query is not close to any specific chunk, so retrieval returns a
//! small, biased slice of the graph. That failure mode falls out of
//! this implementation naturally — it is measured by
//! [`Retrieval::coverage`].

use grm_textenc::{chunk, token_count, GraphFragment, WindowConfig};

use crate::store::VectorStore;

/// Default chunk size in tokens for RAG ingestion. Smaller than the
/// SWA window: retrieval granularity benefits from tighter chunks.
pub const DEFAULT_CHUNK_TOKENS: usize = 512;
/// Default number of chunks retrieved per query.
pub const DEFAULT_TOP_K: usize = 4;

/// Configuration for the RAG pathway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RagConfig {
    /// Ingestion chunk size (tokens).
    pub chunk_tokens: usize,
    /// Chunks retrieved per query.
    pub top_k: usize,
}

impl Default for RagConfig {
    fn default() -> Self {
        RagConfig { chunk_tokens: DEFAULT_CHUNK_TOKENS, top_k: DEFAULT_TOP_K }
    }
}

/// A populated retriever.
#[derive(Debug)]
pub struct Retriever {
    store: VectorStore,
    config: RagConfig,
    total_elements: usize,
    /// `(start_token, token_len)` of each ingested chunk, indexed by
    /// store id (= ingest order) — the stable chunk identity lineage
    /// records refer to as `chunk-<id>`.
    chunk_spans: Vec<(usize, usize)>,
}

/// The outcome of one retrieval.
#[derive(Debug, Clone)]
pub struct Retrieval {
    /// Retrieved chunk texts, best first.
    pub chunks: Vec<String>,
    /// Stable chunk ids (ingest order) aligned with `chunks`.
    pub chunk_ids: Vec<usize>,
    /// `(start_token, token_len)` of each chunk in the encoded text,
    /// aligned with `chunks`.
    pub chunk_spans: Vec<(usize, usize)>,
    /// Similarity scores aligned with `chunks`.
    pub scores: Vec<f32>,
    /// Graph elements visible in the retrieved context.
    pub visible_elements: usize,
    /// Total elements in the ingested graph text.
    pub total_elements: usize,
}

impl Retrieval {
    /// The concatenated context handed to the LLM.
    pub fn context(&self) -> String {
        self.chunks.join("\n")
    }

    /// Fraction of the graph's elements visible in the retrieved
    /// context — the quantity whose smallness explains the paper's
    /// RAG results.
    pub fn coverage(&self) -> f64 {
        if self.total_elements == 0 {
            0.0
        } else {
            self.visible_elements as f64 / self.total_elements as f64
        }
    }
}

impl Retriever {
    /// Ingests encoded graph text: chunk → embed → store. Chunk ids
    /// are store insertion order, which equals chunk order in the
    /// encoded text — `chunk-<id>` is a stable origin id.
    pub fn ingest(encoded: &str, config: RagConfig) -> Self {
        let windows = chunk(encoded, WindowConfig::new(config.chunk_tokens, 0));
        let mut store = VectorStore::new();
        let mut chunk_spans = Vec::with_capacity(windows.len());
        for w in &windows.windows {
            store.insert(w.text.clone());
            chunk_spans.push((w.start_token, w.token_len));
        }
        let full = GraphFragment::parse(encoded);
        Retriever {
            store,
            config,
            total_elements: full.nodes.len() + full.edges.len(),
            chunk_spans,
        }
    }

    /// Number of ingested chunks.
    pub fn chunk_count(&self) -> usize {
        self.store.len()
    }

    /// Byte-exact footprint of the underlying store (plus the chunk
    /// span table), deterministic for a fixed ingest sequence.
    pub fn footprint(&self) -> crate::store::ChunkFootprint {
        let mut fp = self.store.footprint();
        fp.entry_bytes +=
            (self.chunk_spans.capacity() * std::mem::size_of::<(usize, usize)>()) as u64;
        fp
    }

    /// Retrieves context for `query`.
    pub fn retrieve(&self, query: &str) -> Retrieval {
        let hits = self.store.top_k(query, self.config.top_k);
        let chunks: Vec<String> = hits.iter().map(|h| h.entry.text.clone()).collect();
        let chunk_ids: Vec<usize> = hits.iter().map(|h| h.entry.id).collect();
        let chunk_spans: Vec<(usize, usize)> = chunk_ids
            .iter()
            .map(|id| self.chunk_spans.get(*id).copied().unwrap_or((0, 0)))
            .collect();
        let scores: Vec<f32> = hits.iter().map(|h| h.score).collect();
        let visible = GraphFragment::parse(&chunks.join("\n"));
        Retrieval {
            chunks,
            chunk_ids,
            chunk_spans,
            scores,
            visible_elements: visible.nodes.len() + visible.edges.len(),
            total_elements: self.total_elements,
        }
    }

    /// Token count of the context a retrieval would produce — used by
    /// the timing model (RAG prompts once, with this much context).
    pub fn context_tokens(&self, query: &str) -> usize {
        token_count(&self.retrieve(query).context())
    }

    /// [`Retriever::ingest`] under a `rag.ingest` span, counting the
    /// chunks embedded into the store.
    pub fn ingest_traced(encoded: &str, config: RagConfig, scope: &grm_obs::Scope) -> Self {
        let span = scope.span("rag.ingest");
        let retriever = Retriever::ingest(encoded, config);
        span.scope().add(grm_obs::Counter::ChunksIngested, retriever.chunk_count() as u64);
        span.finish();
        retriever
    }

    /// [`Retriever::retrieve`] under a `rag.retrieve` span, counting
    /// retrieved chunks, recording the per-chunk similarity-score
    /// distribution, and the coverage gauge whose smallness explains
    /// the paper's RAG results.
    pub fn retrieve_traced(&self, query: &str, scope: &grm_obs::Scope) -> Retrieval {
        let span = scope.span("rag.retrieve");
        let retrieval = self.retrieve(query);
        let inner = span.scope();
        inner.add(grm_obs::Counter::ChunksRetrieved, retrieval.chunks.len() as u64);
        for score in &retrieval.scores {
            inner.observe(grm_obs::Histo::RetrievalScore, *score as f64);
        }
        inner.gauge(grm_obs::Gauge::RagCoverage, retrieval.coverage());
        span.finish();
        retrieval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::{props, PropertyGraph};
    use grm_textenc::encode_incident;

    fn bigish_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let mut users = Vec::new();
        for i in 0..80i64 {
            users.push(g.add_node(["User"], props([("id", i), ("followers", i * 3)])));
        }
        for i in 0..60i64 {
            let t = g.add_node(["Tweet"], props([("id", 1000 + i)]));
            g.add_edge(users[(i % 80) as usize], t, "POSTS", Default::default());
        }
        g
    }

    #[test]
    fn ingest_creates_multiple_chunks() {
        let text = encode_incident(&bigish_graph());
        let r = Retriever::ingest(&text, RagConfig { chunk_tokens: 256, top_k: 3 });
        assert!(r.chunk_count() > 3, "{}", r.chunk_count());
    }

    #[test]
    fn retrieval_returns_top_k_chunks() {
        let text = encode_incident(&bigish_graph());
        let r = Retriever::ingest(&text, RagConfig { chunk_tokens: 256, top_k: 3 });
        let ret = r.retrieve("consistency rules about User followers");
        assert_eq!(ret.chunks.len(), 3);
        assert!(ret.scores[0] >= ret.scores[2]);
    }

    #[test]
    fn retrieval_carries_stable_chunk_ids_and_spans() {
        let text = encode_incident(&bigish_graph());
        let cfg = RagConfig { chunk_tokens: 256, top_k: 3 };
        let r = Retriever::ingest(&text, cfg);
        let ret = r.retrieve("consistency rules about User followers");
        assert_eq!(ret.chunk_ids.len(), ret.chunks.len());
        assert_eq!(ret.chunk_spans.len(), ret.chunks.len());
        for (id, (start, len)) in ret.chunk_ids.iter().zip(&ret.chunk_spans) {
            assert!(*id < r.chunk_count());
            // Ingest chunks with zero overlap: id * chunk_tokens is
            // the chunk's start token, and every chunk is non-empty.
            assert_eq!(*start, id * cfg.chunk_tokens);
            assert!(*len > 0 && *len <= cfg.chunk_tokens);
        }
        // The same query retrieves the same ids, deterministically.
        assert_eq!(r.retrieve("consistency rules about User followers").chunk_ids, ret.chunk_ids);
    }

    #[test]
    fn generic_query_covers_only_part_of_the_graph() {
        // The paper's §4.5 observation: a generic rule-mining prompt
        // retrieves a small slice of the graph.
        let text = encode_incident(&bigish_graph());
        let r = Retriever::ingest(&text, RagConfig { chunk_tokens: 256, top_k: 3 });
        let ret = r.retrieve("Generate consistency rules for this property graph");
        assert!(ret.coverage() < 0.9, "coverage {}", ret.coverage());
        assert!(ret.coverage() > 0.0);
    }

    #[test]
    fn context_is_parseable_fragment_text() {
        let text = encode_incident(&bigish_graph());
        let r = Retriever::ingest(&text, RagConfig::default());
        let ret = r.retrieve("rules");
        let frag = GraphFragment::parse(&ret.context());
        assert_eq!(frag.nodes.len() + frag.edges.len(), ret.visible_elements);
    }

    #[test]
    fn traced_retrieval_records_chunks_and_coverage() {
        let text = encode_incident(&bigish_graph());
        let rec = grm_obs::Recorder::new();
        let scope = rec.root_scope();
        let cfg = RagConfig { chunk_tokens: 256, top_k: 3 };
        let r = Retriever::ingest_traced(&text, cfg, &scope);
        let ret = r.retrieve_traced("Generate consistency rules for this property graph", &scope);

        let journal = rec.snapshot();
        assert_eq!(
            journal.span("rag.ingest").unwrap().counter("chunks_ingested"),
            r.chunk_count() as u64
        );
        assert_eq!(journal.total("chunks_retrieved"), ret.chunks.len() as u64);
        assert_eq!(journal.gauge("rag_coverage"), Some(ret.coverage()));
    }

    #[test]
    fn retriever_footprint_covers_store_and_span_table() {
        let text = encode_incident(&bigish_graph());
        let cfg = RagConfig { chunk_tokens: 256, top_k: 3 };
        let r = Retriever::ingest(&text, cfg);
        let fp = r.footprint();
        assert_eq!(fp.chunks, r.chunk_count() as u64);
        assert!(fp.embedding_bytes >= fp.chunks * 256 * 4);
        // The span table rides on entry_bytes, so the retriever
        // accounts for strictly more than its bare store.
        let again = Retriever::ingest(&text, cfg);
        assert_eq!(again.footprint(), fp, "same ingest, byte-identical accounting");
    }

    #[test]
    fn context_tokens_bounded_by_chunks() {
        let text = encode_incident(&bigish_graph());
        let cfg = RagConfig { chunk_tokens: 128, top_k: 2 };
        let r = Retriever::ingest(&text, cfg);
        let tokens = r.context_tokens("rules");
        // top_k chunks of ≤128 tokens plus joining newlines.
        assert!(tokens <= cfg.chunk_tokens * cfg.top_k + cfg.top_k);
    }
}
