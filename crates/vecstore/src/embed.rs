//! Deterministic text embedder.
//!
//! Stands in for the paper's `GPT4AllEmbeddings` (§3.1.2). We use
//! feature hashing over character trigrams and word unigrams into a
//! fixed-dimension vector, L2-normalised. This preserves the two
//! properties RAG retrieval quality depends on — lexically similar
//! chunks are close, unrelated chunks are far — while staying fully
//! deterministic (the whole study is seeded).

/// Embedding dimensionality.
pub const DIM: usize = 256;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// Cosine similarity with another embedding. Both inputs are
    /// L2-normalised at construction, so this is a dot product.
    pub fn cosine(&self, other: &Embedding) -> f32 {
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm (≈ 1 for non-empty inputs after normalising).
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// FNV-1a 64-bit — stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Embeds `text` into a [`DIM`]-dimensional normalised vector.
pub fn embed(text: &str) -> Embedding {
    let mut v = vec![0f32; DIM];
    let lower = text.to_lowercase();
    // Word unigrams (alphanumeric runs) carry topical signal.
    for word in lower.split(|c: char| !c.is_ascii_alphanumeric()) {
        if word.is_empty() {
            continue;
        }
        let h = fnv1a(word.as_bytes());
        let idx = (h % DIM as u64) as usize;
        // Signed hashing halves collision bias.
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[idx] += 2.0 * sign;
    }
    // Character trigrams capture sub-token similarity.
    let bytes = lower.as_bytes();
    if bytes.len() >= 3 {
        for win in bytes.windows(3) {
            let h = fnv1a(win) ^ 0x9e37_79b9_7f4a_7c15;
            let idx = (h % DIM as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += sign;
        }
    }
    // L2 normalise.
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Embedding(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(embed("hello graph"), embed("hello graph"));
    }

    #[test]
    fn normalised() {
        let e = embed("Node n0 with labels Person");
        assert!((e.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn self_similarity_is_one() {
        let e = embed("consistency rules for property graphs");
        assert!((e.cosine(&e) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let a = embed("Node n0 with labels Person has properties {name: 'Ada'}");
        let b = embed("Node n1 with labels Person has properties {name: 'Bea'}");
        let c = embed("zebra quantum xylophone !!!");
        assert!(a.cosine(&b) > a.cosine(&c));
    }

    #[test]
    fn empty_text_embeds_to_zero_vector() {
        let e = embed("");
        assert_eq!(e.norm(), 0.0);
    }

    #[test]
    fn case_insensitive() {
        assert!((embed("PERSON").cosine(&embed("person")) - 1.0).abs() < 1e-5);
    }
}
