//! Property-based tests for the embedder and the vector store.

use grm_vecstore::{embed, VectorStore};
use proptest::prelude::*;

proptest! {
    /// Embeddings of non-trivial text are unit vectors.
    #[test]
    fn embeddings_are_normalised(text in "[a-zA-Z0-9 ]{1,100}") {
        prop_assume!(text.chars().any(|c| c.is_ascii_alphanumeric()));
        let e = embed(&text);
        prop_assert!((e.norm() - 1.0).abs() < 1e-4, "norm {}", e.norm());
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_symmetric_and_bounded(a in "[a-z ]{1,60}", b in "[a-z ]{1,60}") {
        let (ea, eb) = (embed(&a), embed(&b));
        let ab = ea.cosine(&eb);
        let ba = eb.cosine(&ea);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&ab), "cosine {ab}");
    }

    /// Identical text embeds identically (determinism).
    #[test]
    fn embedding_is_deterministic(text in ".{0,120}") {
        prop_assert_eq!(embed(&text), embed(&text));
    }

    /// top_k scores are monotonically non-increasing and k-bounded.
    #[test]
    fn top_k_is_sorted_and_bounded(
        chunks in prop::collection::vec("[a-z ]{1,40}", 1..20),
        query in "[a-z ]{1,30}",
        k in 1usize..10,
    ) {
        let mut store = VectorStore::new();
        for c in &chunks {
            store.insert(c.clone());
        }
        let hits = store.top_k(&query, k);
        prop_assert!(hits.len() <= k.min(chunks.len()));
        for pair in hits.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
    }

    /// The best hit for a stored chunk's own text is that chunk (or a
    /// duplicate of it).
    #[test]
    fn self_retrieval_finds_the_chunk(
        chunks in prop::collection::hash_set("[a-z]{4,20}", 2..10),
        pick in any::<prop::sample::Index>(),
    ) {
        let chunks: Vec<String> = chunks.into_iter().collect();
        let mut store = VectorStore::new();
        for c in &chunks {
            store.insert(c.clone());
        }
        let target = &chunks[pick.index(chunks.len())];
        let hits = store.top_k(target, 1);
        prop_assert_eq!(&hits[0].entry.text, target);
    }
}
