//! Property-based tests: NL round-trips and reference-query
//! well-formedness over arbitrary identifiers.

use grm_cypher::parse;
use grm_pgraph::Value;
use grm_rules::{from_nl, reference_queries, to_nl, violation_query, ConsistencyRule};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9_]{0,10}"
}

fn arb_key() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}"
}

fn arb_etype() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,10}"
}

fn arb_rule() -> impl Strategy<Value = ConsistencyRule> {
    prop_oneof![
        (arb_label(), arb_key())
            .prop_map(|(label, key)| ConsistencyRule::MandatoryProperty { label, key }),
        (arb_label(), arb_key())
            .prop_map(|(label, key)| ConsistencyRule::UniqueProperty { label, key }),
        (arb_label(), arb_key(), prop::collection::vec(any::<i64>().prop_map(Value::Int), 1..4))
            .prop_map(|(label, key, allowed)| ConsistencyRule::PropertyValueIn {
                label,
                key,
                allowed
            }),
        (arb_label(), arb_key(), any::<i32>(), any::<u16>()).prop_map(|(label, key, min, span)| {
            ConsistencyRule::PropertyRange {
                label,
                key,
                min: i64::from(min),
                max: i64::from(min) + i64::from(span),
            }
        }),
        (arb_etype(), arb_label(), arb_label()).prop_map(|(etype, src_label, dst_label)| {
            ConsistencyRule::EdgeEndpointLabels { etype, src_label, dst_label }
        }),
        (arb_label(), arb_etype())
            .prop_map(|(label, etype)| ConsistencyRule::NoSelfLoop { label, etype }),
        (arb_label(), arb_etype(), arb_label()).prop_map(|(src_label, etype, dst_label)| {
            ConsistencyRule::IncomingExactlyOne { src_label, etype, dst_label }
        }),
        (arb_label(), arb_key(), arb_etype(), arb_label(), arb_key()).prop_map(
            |(src_label, src_key, etype, dst_label, dst_key)| ConsistencyRule::TemporalOrder {
                src_label,
                src_key,
                etype,
                dst_label,
                dst_key
            }
        ),
        (arb_label(), arb_etype(), arb_label(), arb_key()).prop_map(
            |(src_label, etype, dst_label, key)| ConsistencyRule::PatternUniqueness {
                src_label,
                etype,
                dst_label,
                key
            }
        ),
    ]
}

proptest! {
    /// NL rendering round-trips for every template rule family over
    /// arbitrary identifiers.
    #[test]
    fn nl_roundtrip(rule in arb_rule()) {
        let nl = to_nl(&rule);
        prop_assert_eq!(from_nl(&nl), Some(rule));
    }

    /// All three reference metric queries parse, for any rule.
    #[test]
    fn reference_queries_always_parse(rule in arb_rule()) {
        let q = reference_queries(&rule);
        for text in [&q.satisfied, &q.body, &q.head_total] {
            prop_assert!(parse(text).is_ok(), "unparseable: {}", text);
        }
        if let Some(v) = violation_query(&rule) {
            prop_assert!(parse(&v).is_ok(), "unparseable: {}", v);
        }
    }

    /// Dedup keys are injective across distinct rules of one family.
    #[test]
    fn dedup_keys_distinguish(
        l1 in arb_label(), l2 in arb_label(), k in arb_key(),
    ) {
        let a = ConsistencyRule::MandatoryProperty { label: l1.clone(), key: k.clone() };
        let b = ConsistencyRule::MandatoryProperty { label: l2.clone(), key: k };
        prop_assert_eq!(a.dedup_key() == b.dedup_key(), l1 == l2);
    }

    /// `from_nl` is total on arbitrary text.
    #[test]
    fn from_nl_never_panics(text in ".{0,200}") {
        let _ = from_nl(&text);
    }
}
