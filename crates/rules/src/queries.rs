//! Reference Cypher translation of consistency rules.
//!
//! §4.2 of the paper adapts AMIE's measures to property graphs:
//!
//! * **support** — "the number of elements in the graph that satisfy a
//!   given rule";
//! * **coverage** — support normalised "by the total number of facts
//!   for the relation in question";
//! * **confidence** — satisfying elements over "the number of times
//!   the rule's body conditions are met".
//!
//! Accordingly every rule translates to **three count queries**
//! ([`RuleQueries`]): `satisfied`, `body`, and `head_total`, each of
//! the shape `... RETURN COUNT(*) AS c`. `grm-metrics` executes them
//! and forms `support = satisfied`, `coverage = satisfied/head_total`,
//! `confidence = satisfied/body`.
//!
//! These are the *reference* (correct) translations — the equivalent
//! of the paper's manually corrected queries. The error-prone
//! LLM-side translation lives in `grm-llm`.

use std::fmt::Write as _;

use grm_pgraph::Value;

use crate::rule::ConsistencyRule;

/// The three metric queries of a rule.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuleQueries {
    /// Counts elements satisfying the rule (numerator everywhere).
    pub satisfied: String,
    /// Counts elements where the rule's body applies.
    pub body: String,
    /// Counts all facts of the head relation.
    pub head_total: String,
}

fn value_list(vals: &[Value]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Builds the reference metric queries for `rule`.
pub fn reference_queries(rule: &ConsistencyRule) -> RuleQueries {
    use ConsistencyRule::*;
    match rule {
        MandatoryProperty { label, key } => RuleQueries {
            satisfied: format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            body: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
        },
        UniqueProperty { label, key } => RuleQueries {
            satisfied: format!(
                "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
                 WITH n.{key} AS v, COUNT(*) AS c WHERE c = 1 RETURN COUNT(*) AS c"
            ),
            body: format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
        },
        PropertyValueIn { label, key, allowed } => RuleQueries {
            satisfied: format!(
                "MATCH (n:{label}) WHERE n.{key} IN {} RETURN COUNT(*) AS c",
                value_list(allowed)
            ),
            body: format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
        },
        PropertyRegex { label, key, pattern } => RuleQueries {
            satisfied: format!(
                "MATCH (n:{label}) WHERE n.{key} =~ '{}' RETURN COUNT(*) AS c",
                pattern.replace('\'', "\\'")
            ),
            body: format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
        },
        PropertyRange { label, key, min, max } => RuleQueries {
            satisfied: format!(
                "MATCH (n:{label}) WHERE n.{key} >= {min} AND n.{key} <= {max} \
                 RETURN COUNT(*) AS c"
            ),
            body: format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (n:{label}) RETURN COUNT(*) AS c"),
        },
        EdgeEndpointLabels { etype, src_label, dst_label } => RuleQueries {
            satisfied: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) RETURN COUNT(*) AS c"
            ),
            body: format!("MATCH ()-[r:{etype}]->() RETURN COUNT(*) AS c"),
            head_total: format!("MATCH ()-[r:{etype}]->() RETURN COUNT(*) AS c"),
        },
        NoSelfLoop { label, etype } => RuleQueries {
            satisfied: format!(
                "MATCH (a:{label})-[r:{etype}]->(b) WHERE id(a) <> id(b) RETURN COUNT(*) AS c"
            ),
            body: format!("MATCH (a:{label})-[r:{etype}]->(b) RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (a:{label})-[r:{etype}]->(b) RETURN COUNT(*) AS c"),
        },
        IncomingExactlyOne { src_label, etype, dst_label } => RuleQueries {
            satisfied: format!(
                "MATCH (t:{dst_label}) OPTIONAL MATCH (s:{src_label})-[r:{etype}]->(t) \
                 WITH t AS t, COUNT(r) AS c WHERE c = 1 RETURN COUNT(*) AS c"
            ),
            body: format!("MATCH (t:{dst_label}) RETURN COUNT(*) AS c"),
            head_total: format!("MATCH (t:{dst_label}) RETURN COUNT(*) AS c"),
        },
        TemporalOrder { src_label, src_key, etype, dst_label, dst_key } => RuleQueries {
            satisfied: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE a.{src_key} >= b.{dst_key} RETURN COUNT(*) AS c"
            ),
            body: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE a.{src_key} IS NOT NULL AND b.{dst_key} IS NOT NULL \
                 RETURN COUNT(*) AS c"
            ),
            head_total: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) RETURN COUNT(*) AS c"
            ),
        },
        PatternUniqueness { src_label, etype, dst_label, key } => RuleQueries {
            satisfied: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE r.{key} IS NOT NULL \
                 WITH a AS a, b AS b, r.{key} AS v, COUNT(*) AS c WHERE c = 1 \
                 RETURN COUNT(*) AS c"
            ),
            body: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE r.{key} IS NOT NULL RETURN COUNT(*) AS c"
            ),
            head_total: format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) RETURN COUNT(*) AS c"
            ),
        },
        Custom { satisfied, body, head_total, .. } => RuleQueries {
            satisfied: satisfied.clone(),
            body: body.clone(),
            head_total: head_total.clone(),
        },
    }
}

/// A query listing (a count of) the rule's *violations*, for the
/// data-auditing examples. `None` for custom rules, whose violation
/// formulation is rule-specific.
pub fn violation_query(rule: &ConsistencyRule) -> Option<String> {
    use ConsistencyRule::*;
    Some(match rule {
        MandatoryProperty { label, key } => {
            format!("MATCH (n:{label}) WHERE n.{key} IS NULL RETURN COUNT(*) AS violations")
        }
        UniqueProperty { label, key } => format!(
            "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
             WITH n.{key} AS v, COUNT(*) AS c WHERE c > 1 RETURN SUM(c) AS violations"
        ),
        PropertyValueIn { label, key, allowed } => format!(
            "MATCH (n:{label}) WHERE n.{key} IS NOT NULL AND NOT (n.{key} IN {}) \
             RETURN COUNT(*) AS violations",
            value_list(allowed)
        ),
        PropertyRegex { label, key, pattern } => format!(
            "MATCH (n:{label}) WHERE n.{key} IS NOT NULL AND NOT (n.{key} =~ '{}') \
             RETURN COUNT(*) AS violations",
            pattern.replace('\'', "\\'")
        ),
        PropertyRange { label, key, min, max } => format!(
            "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
             AND (n.{key} < {min} OR n.{key} > {max}) RETURN COUNT(*) AS violations"
        ),
        NoSelfLoop { label, etype } => format!(
            "MATCH (a:{label})-[r:{etype}]->(b) WHERE id(a) = id(b) \
             RETURN COUNT(*) AS violations"
        ),
        TemporalOrder { src_label, src_key, etype, dst_label, dst_key } => format!(
            "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
             WHERE a.{src_key} < b.{dst_key} RETURN COUNT(*) AS violations"
        ),
        PatternUniqueness { src_label, etype, dst_label, key } => format!(
            "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
             WHERE r.{key} IS NOT NULL \
             WITH a AS a, b AS b, r.{key} AS v, COUNT(*) AS c WHERE c > 1 \
             RETURN SUM(c) AS violations"
        ),
        IncomingExactlyOne { src_label, etype, dst_label } => format!(
            "MATCH (t:{dst_label}) OPTIONAL MATCH (s:{src_label})-[r:{etype}]->(t) \
             WITH t AS t, COUNT(r) AS c WHERE c <> 1 RETURN COUNT(*) AS violations"
        ),
        EdgeEndpointLabels { .. } | Custom { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_cypher::execute;
    use grm_pgraph::{props, PropertyGraph};

    /// A graph with known, countable violations.
    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        // 3 tweets: unique ids except two share id 1; one missing text.
        let t1 = g.add_node(
            ["Tweet"],
            props([("id", Value::Int(1)), ("created_at", Value::DateTime(100))]),
        );
        let t2 = g.add_node(
            ["Tweet"],
            props([
                ("id", Value::Int(1)),
                ("text", Value::from("hi")),
                ("created_at", Value::DateTime(200)),
            ]),
        );
        let t3 = g.add_node(
            ["Tweet"],
            props([
                ("id", Value::Int(3)),
                ("text", Value::from("yo")),
                ("created_at", Value::DateTime(50)),
            ]),
        );
        let u1 = g.add_node(["User"], props([("id", Value::Int(10))]));
        let u2 = g.add_node(["User"], props([("id", Value::Int(11))]));
        g.add_edge(u1, t1, "POSTS", Default::default());
        g.add_edge(u1, t2, "POSTS", Default::default());
        g.add_edge(u2, t3, "POSTS", Default::default());
        // Retweets: t2 (ts 200) retweets t1 (ts 100) — fine.
        // t3 (ts 50) retweets t1 (ts 100) — temporal violation.
        g.add_edge(t2, t1, "RETWEETS", Default::default());
        g.add_edge(t3, t1, "RETWEETS", Default::default());
        // Self-follow violation.
        g.add_edge(u1, u1, "FOLLOWS", Default::default());
        g.add_edge(u1, u2, "FOLLOWS", Default::default());
        g
    }

    fn count(g: &PropertyGraph, q: &str) -> i64 {
        execute(g, q).unwrap().single_int().unwrap()
    }

    #[test]
    fn mandatory_property_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::MandatoryProperty {
            label: "Tweet".into(),
            key: "text".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 2);
        assert_eq!(count(&g, &q.body), 3);
        assert_eq!(count(&g, &q.head_total), 3);
    }

    #[test]
    fn unique_property_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::UniqueProperty {
            label: "Tweet".into(),
            key: "id".into(),
        });
        // ids: 1, 1, 3 → one singleton value.
        assert_eq!(count(&g, &q.satisfied), 1);
        assert_eq!(count(&g, &q.body), 3);
    }

    #[test]
    fn no_self_loop_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::NoSelfLoop {
            label: "User".into(),
            etype: "FOLLOWS".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 1);
        assert_eq!(count(&g, &q.body), 2);
    }

    #[test]
    fn temporal_order_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::TemporalOrder {
            src_label: "Tweet".into(),
            src_key: "created_at".into(),
            etype: "RETWEETS".into(),
            dst_label: "Tweet".into(),
            dst_key: "created_at".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 1);
        assert_eq!(count(&g, &q.body), 2);
    }

    #[test]
    fn incoming_exactly_one_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::IncomingExactlyOne {
            src_label: "User".into(),
            etype: "POSTS".into(),
            dst_label: "Tweet".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 3);
        assert_eq!(count(&g, &q.body), 3);
    }

    #[test]
    fn endpoint_labels_counts() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::EdgeEndpointLabels {
            etype: "POSTS".into(),
            src_label: "User".into(),
            dst_label: "Tweet".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 3);
        assert_eq!(count(&g, &q.body), 3);
    }

    #[test]
    fn violation_queries_complement_satisfied() {
        let g = graph();
        for rule in [
            ConsistencyRule::MandatoryProperty { label: "Tweet".into(), key: "text".into() },
            ConsistencyRule::NoSelfLoop { label: "User".into(), etype: "FOLLOWS".into() },
            ConsistencyRule::TemporalOrder {
                src_label: "Tweet".into(),
                src_key: "created_at".into(),
                etype: "RETWEETS".into(),
                dst_label: "Tweet".into(),
                dst_key: "created_at".into(),
            },
        ] {
            let q = reference_queries(&rule);
            let v = violation_query(&rule).unwrap();
            let body = count(&g, &q.body);
            let sat = count(&g, &q.satisfied);
            let vio = count(&g, &v);
            assert_eq!(body, sat + vio, "rule {rule:?}");
        }
    }

    #[test]
    fn value_domain_counts() {
        let mut g = PropertyGraph::new();
        g.add_node(["Computer"], props([("owned", Value::Bool(true))]));
        g.add_node(["Computer"], props([("owned", Value::Bool(false))]));
        g.add_node(["Computer"], props([("owned", Value::from("maybe"))]));
        let q = reference_queries(&ConsistencyRule::PropertyValueIn {
            label: "Computer".into(),
            key: "owned".into(),
            allowed: vec![Value::Bool(true), Value::Bool(false)],
        });
        assert_eq!(count(&g, &q.satisfied), 2);
        assert_eq!(count(&g, &q.body), 3);
    }

    #[test]
    fn regex_rule_counts() {
        let mut g = PropertyGraph::new();
        g.add_node(["Domain"], props([("name", "good.example.com")]));
        g.add_node(["Domain"], props([("name", "bad domain")]));
        let q = reference_queries(&ConsistencyRule::PropertyRegex {
            label: "Domain".into(),
            key: "name".into(),
            pattern: r"^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 1);
        assert_eq!(count(&g, &q.body), 2);
    }

    #[test]
    fn range_rule_counts() {
        let mut g = PropertyGraph::new();
        g.add_node(["User"], props([("followers", Value::Int(5))]));
        g.add_node(["User"], props([("followers", Value::Int(-2))]));
        let q = reference_queries(&ConsistencyRule::PropertyRange {
            label: "User".into(),
            key: "followers".into(),
            min: 0,
            max: 1_000_000,
        });
        assert_eq!(count(&g, &q.satisfied), 1);
        assert_eq!(count(&g, &q.body), 2);
    }

    #[test]
    fn pattern_uniqueness_counts() {
        let mut g = PropertyGraph::new();
        let p = g.add_node(["Person"], props([("name", "Ada")]));
        let m = g.add_node(["Match"], props([("id", "m1")]));
        g.add_edge(p, m, "SCORED_GOAL", props([("minute", 10i64)]));
        g.add_edge(p, m, "SCORED_GOAL", props([("minute", 10i64)]));
        g.add_edge(p, m, "SCORED_GOAL", props([("minute", 80i64)]));
        let q = reference_queries(&ConsistencyRule::PatternUniqueness {
            src_label: "Person".into(),
            etype: "SCORED_GOAL".into(),
            dst_label: "Match".into(),
            key: "minute".into(),
        });
        assert_eq!(count(&g, &q.satisfied), 1); // the 80' goal
        assert_eq!(count(&g, &q.body), 3);
        let v = violation_query(&ConsistencyRule::PatternUniqueness {
            src_label: "Person".into(),
            etype: "SCORED_GOAL".into(),
            dst_label: "Match".into(),
            key: "minute".into(),
        })
        .unwrap();
        assert_eq!(count(&g, &v), 2);
    }

    #[test]
    fn all_reference_queries_parse() {
        use grm_cypher::parse;
        let rules = [
            ConsistencyRule::MandatoryProperty { label: "A".into(), key: "k".into() },
            ConsistencyRule::UniqueProperty { label: "A".into(), key: "k".into() },
            ConsistencyRule::PropertyValueIn {
                label: "A".into(),
                key: "k".into(),
                allowed: vec![Value::Int(1)],
            },
            ConsistencyRule::PropertyRegex {
                label: "A".into(),
                key: "k".into(),
                pattern: "x+".into(),
            },
            ConsistencyRule::PropertyRange { label: "A".into(), key: "k".into(), min: 0, max: 9 },
            ConsistencyRule::EdgeEndpointLabels {
                etype: "E".into(),
                src_label: "A".into(),
                dst_label: "B".into(),
            },
            ConsistencyRule::NoSelfLoop { label: "A".into(), etype: "E".into() },
            ConsistencyRule::IncomingExactlyOne {
                src_label: "A".into(),
                etype: "E".into(),
                dst_label: "B".into(),
            },
            ConsistencyRule::TemporalOrder {
                src_label: "A".into(),
                src_key: "t".into(),
                etype: "E".into(),
                dst_label: "B".into(),
                dst_key: "t".into(),
            },
            ConsistencyRule::PatternUniqueness {
                src_label: "A".into(),
                etype: "E".into(),
                dst_label: "B".into(),
                key: "k".into(),
            },
        ];
        for rule in &rules {
            let q = reference_queries(rule);
            for text in [&q.satisfied, &q.body, &q.head_total] {
                parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            }
            if let Some(v) = violation_query(rule) {
                parse(&v).unwrap_or_else(|e| panic!("{v}: {e}"));
            }
        }
    }
}
