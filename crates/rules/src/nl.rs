//! Natural-language rendering and parsing of consistency rules.
//!
//! The paper's pipeline is two-step: the LLM first states rules *in
//! natural language* ("this two-step procedure can ensure clarity to
//! those who may not be familiar with Cypher", §3), then translates
//! them to Cypher. Our simulated LLM speaks a canonical NL dialect —
//! one fixed sentence template per rule family — and this module
//! renders it ([`to_nl`]) and parses it back ([`from_nl`]).
//!
//! Round-trip invariant: `from_nl(&to_nl(r)) == Some(r)` for every
//! non-[`Custom`](crate::rule::ConsistencyRule::Custom) rule; custom
//! rules carry free-form NL and parse only as themselves via the
//! pipeline's rule registry.

use grm_pgraph::Value;

use crate::rule::ConsistencyRule;

/// Renders the canonical natural-language statement of a rule.
pub fn to_nl(rule: &ConsistencyRule) -> String {
    use ConsistencyRule::*;
    match rule {
        MandatoryProperty { label, key } => {
            format!("Each {label} node should have a {key} property.")
        }
        UniqueProperty { label, key } => {
            format!("Each {label} node should have a unique {key} property.")
        }
        PropertyValueIn { label, key, allowed } => {
            let vals: Vec<String> = allowed.iter().map(Value::to_string).collect();
            format!(
                "The {key} property of {label} nodes should only be one of [{}].",
                vals.join(", ")
            )
        }
        PropertyRegex { label, key, pattern } => format!(
            "The {key} property of {label} nodes should be a string matching the pattern '{pattern}'."
        ),
        PropertyRange { label, key, min, max } => format!(
            "The {key} property of {label} nodes should be between {min} and {max}."
        ),
        EdgeEndpointLabels { etype, src_label, dst_label } => format!(
            "Every {etype} relationship should connect a {src_label} node to a {dst_label} node."
        ),
        NoSelfLoop { label, etype } => {
            format!("A {label} node cannot have a {etype} relationship to itself.")
        }
        IncomingExactlyOne { src_label, etype, dst_label } => format!(
            "Each {dst_label} node should have exactly one incoming {etype} relationship from a {src_label} node."
        ),
        TemporalOrder { src_label, src_key, etype, dst_label, dst_key } => format!(
            "For every {etype} relationship, the {src_key} of the source {src_label} should not be earlier than the {dst_key} of the target {dst_label}."
        ),
        PatternUniqueness { src_label, etype, dst_label, key } => format!(
            "No two {etype} relationships between a {src_label} and a {dst_label} should have the same {key} property."
        ),
        Custom { nl, .. } => nl.clone(),
    }
}

/// Parses the canonical NL dialect back into a rule. Returns `None`
/// for free-form text (which the pipeline then treats as an
/// unparseable / inaccurate rule, the paper's fourth failure mode).
pub fn from_nl(text: &str) -> Option<ConsistencyRule> {
    let t = text.trim();
    let t = t.strip_suffix('.').unwrap_or(t);

    // "Each {label} node should have a unique {key} property"
    if let Some(rest) = t.strip_prefix("Each ") {
        if let Some((label, rest)) = rest.split_once(" node should have a unique ") {
            let key = rest.strip_suffix(" property")?;
            return Some(ConsistencyRule::UniqueProperty {
                label: label.to_owned(),
                key: key.to_owned(),
            });
        }
        if let Some((label, rest)) = rest.split_once(" node should have a ") {
            let key = rest.strip_suffix(" property")?;
            return Some(ConsistencyRule::MandatoryProperty {
                label: label.to_owned(),
                key: key.to_owned(),
            });
        }
        // "Each {dst} node should have exactly one incoming {etype}
        // relationship from a {src} node"
        if let Some((dst, rest)) = rest.split_once(" node should have exactly one incoming ") {
            let (etype, rest) = rest.split_once(" relationship from a ")?;
            let src = rest.strip_suffix(" node")?;
            return Some(ConsistencyRule::IncomingExactlyOne {
                src_label: src.to_owned(),
                etype: etype.to_owned(),
                dst_label: dst.to_owned(),
            });
        }
        return None;
    }

    // "The {key} property of {label} nodes should ..."
    if let Some(rest) = t.strip_prefix("The ") {
        let (key, rest) = rest.split_once(" property of ")?;
        let (label, rest) = rest.split_once(" nodes should ")?;
        if let Some(list) = rest.strip_prefix("only be one of [") {
            let list = list.strip_suffix(']')?;
            let allowed = parse_value_list(list)?;
            return Some(ConsistencyRule::PropertyValueIn {
                label: label.to_owned(),
                key: key.to_owned(),
                allowed,
            });
        }
        if let Some(pat) = rest.strip_prefix("be a string matching the pattern '") {
            let pattern = pat.strip_suffix('\'')?;
            return Some(ConsistencyRule::PropertyRegex {
                label: label.to_owned(),
                key: key.to_owned(),
                pattern: pattern.to_owned(),
            });
        }
        if let Some(range) = rest.strip_prefix("be between ") {
            let (min, max) = range.split_once(" and ")?;
            return Some(ConsistencyRule::PropertyRange {
                label: label.to_owned(),
                key: key.to_owned(),
                min: min.trim().parse().ok()?,
                max: max.trim().parse().ok()?,
            });
        }
        return None;
    }

    // "Every {etype} relationship should connect a {src} node to a {dst} node"
    if let Some(rest) = t.strip_prefix("Every ") {
        let (etype, rest) = rest.split_once(" relationship should connect a ")?;
        let (src, rest) = rest.split_once(" node to a ")?;
        let dst = rest.strip_suffix(" node")?;
        return Some(ConsistencyRule::EdgeEndpointLabels {
            etype: etype.to_owned(),
            src_label: src.to_owned(),
            dst_label: dst.to_owned(),
        });
    }

    // "A {label} node cannot have a {etype} relationship to itself"
    if let Some(rest) = t.strip_prefix("A ") {
        let (label, rest) = rest.split_once(" node cannot have a ")?;
        let etype = rest.strip_suffix(" relationship to itself")?;
        return Some(ConsistencyRule::NoSelfLoop {
            label: label.to_owned(),
            etype: etype.to_owned(),
        });
    }

    // "For every {etype} relationship, the {src_key} of the source
    // {src} should not be earlier than the {dst_key} of the target {dst}"
    if let Some(rest) = t.strip_prefix("For every ") {
        let (etype, rest) = rest.split_once(" relationship, the ")?;
        let (src_key, rest) = rest.split_once(" of the source ")?;
        let (src, rest) = rest.split_once(" should not be earlier than the ")?;
        let (dst_key, dst) = rest.split_once(" of the target ")?;
        return Some(ConsistencyRule::TemporalOrder {
            src_label: src.to_owned(),
            src_key: src_key.to_owned(),
            etype: etype.to_owned(),
            dst_label: dst.to_owned(),
            dst_key: dst_key.to_owned(),
        });
    }

    // "No two {etype} relationships between a {src} and a {dst}
    // should have the same {key} property"
    if let Some(rest) = t.strip_prefix("No two ") {
        let (etype, rest) = rest.split_once(" relationships between a ")?;
        let (src, rest) = rest.split_once(" and a ")?;
        let (dst, rest) = rest.split_once(" should have the same ")?;
        let key = rest.strip_suffix(" property")?;
        return Some(ConsistencyRule::PatternUniqueness {
            src_label: src.to_owned(),
            etype: etype.to_owned(),
            dst_label: dst.to_owned(),
            key: key.to_owned(),
        });
    }

    None
}

/// Parses a comma-separated literal list: `true, false` / `'a', 'b'` /
/// `1, 2, 3`.
fn parse_value_list(s: &str) -> Option<Vec<Value>> {
    let mut out = Vec::new();
    for part in split_top_level(s) {
        let part = part.trim();
        let v = if part == "true" {
            Value::Bool(true)
        } else if part == "false" {
            Value::Bool(false)
        } else if part == "null" {
            Value::Null
        } else if let Some(inner) = part.strip_prefix('\'').and_then(|p| p.strip_suffix('\'')) {
            Value::Str(inner.replace("\\'", "'"))
        } else if let Ok(i) = part.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = part.parse::<f64>() {
            Value::Float(f)
        } else {
            return None;
        };
        out.push(v);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Splits on commas that are not inside single quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1,
            b'\'' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleComplexity;

    fn roundtrip(rule: ConsistencyRule) {
        let nl = to_nl(&rule);
        let parsed = from_nl(&nl).unwrap_or_else(|| panic!("failed to parse: {nl}"));
        assert_eq!(parsed, rule, "NL was: {nl}");
    }

    #[test]
    fn roundtrip_all_template_rules() {
        roundtrip(ConsistencyRule::MandatoryProperty { label: "Match".into(), key: "date".into() });
        roundtrip(ConsistencyRule::UniqueProperty { label: "Tweet".into(), key: "id".into() });
        roundtrip(ConsistencyRule::PropertyValueIn {
            label: "Computer".into(),
            key: "owned".into(),
            allowed: vec![Value::Bool(true), Value::Bool(false)],
        });
        roundtrip(ConsistencyRule::PropertyRegex {
            label: "Domain".into(),
            key: "name".into(),
            pattern: r"^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$".into(),
        });
        roundtrip(ConsistencyRule::PropertyRange {
            label: "User".into(),
            key: "followers".into(),
            min: 0,
            max: 1_000_000,
        });
        roundtrip(ConsistencyRule::EdgeEndpointLabels {
            etype: "POSTS".into(),
            src_label: "User".into(),
            dst_label: "Tweet".into(),
        });
        roundtrip(ConsistencyRule::NoSelfLoop { label: "User".into(), etype: "FOLLOWS".into() });
        roundtrip(ConsistencyRule::IncomingExactlyOne {
            src_label: "User".into(),
            etype: "POSTS".into(),
            dst_label: "Tweet".into(),
        });
        roundtrip(ConsistencyRule::TemporalOrder {
            src_label: "Tweet".into(),
            src_key: "created_at".into(),
            etype: "RETWEETS".into(),
            dst_label: "Tweet".into(),
            dst_key: "created_at".into(),
        });
        roundtrip(ConsistencyRule::PatternUniqueness {
            src_label: "Person".into(),
            etype: "SCORED_GOAL".into(),
            dst_label: "Match".into(),
            key: "minute".into(),
        });
    }

    #[test]
    fn custom_rules_render_their_own_text() {
        let rule = ConsistencyRule::Custom {
            id: "wwc-squad".into(),
            nl: "A player should be associated with a squad, and that squad should belong to the tournament for which the player has played a match.".into(),
            satisfied: "RETURN 0 AS c".into(),
            body: "RETURN 0 AS c".into(),
            head_total: "RETURN 0 AS c".into(),
            complexity: RuleComplexity::Pattern,
        };
        assert!(to_nl(&rule).contains("squad"));
        // Free-form text does not parse back as a template rule.
        assert_eq!(from_nl(&to_nl(&rule)), None);
    }

    #[test]
    fn string_value_domains_roundtrip() {
        roundtrip(ConsistencyRule::PropertyValueIn {
            label: "Match".into(),
            key: "stage".into(),
            allowed: vec![Value::from("Group"), Value::from("Final, really")],
        });
    }

    #[test]
    fn garbage_does_not_parse() {
        assert_eq!(from_nl("The graph looks consistent to me!"), None);
        assert_eq!(from_nl(""), None);
        assert_eq!(from_nl("Each node should have."), None);
    }

    #[test]
    fn trailing_period_is_optional() {
        assert!(from_nl("Each Tweet node should have a unique id property").is_some());
    }
}
