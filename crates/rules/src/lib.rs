//! # grm-rules — the consistency-rule model
//!
//! Consistency rules over property graphs, in the GFD/GED spirit the
//! paper targets (§3.2): a rule family enum covering every rule the
//! paper quotes ([`rule::ConsistencyRule`]), a canonical
//! natural-language dialect with round-trip parsing ([`nl`]) — the
//! intermediate representation of the paper's two-step pipeline — and
//! the *reference* Cypher translation used for metric evaluation
//! ([`queries`]).
//!
//! ```
//! use grm_rules::{from_nl, reference_queries, to_nl, ConsistencyRule};
//!
//! let rule = ConsistencyRule::UniqueProperty { label: "Tweet".into(), key: "id".into() };
//! let nl = to_nl(&rule);
//! assert_eq!(nl, "Each Tweet node should have a unique id property.");
//! assert_eq!(from_nl(&nl), Some(rule.clone()));
//! assert!(reference_queries(&rule).satisfied.contains("COUNT"));
//! ```

pub mod catalog;
pub mod nl;
pub mod queries;
pub mod rule;

pub use catalog::available_complex_rules;
pub use nl::{from_nl, to_nl};
pub use queries::{reference_queries, violation_query, RuleQueries};
pub use rule::{ConsistencyRule, RuleComplexity};
