//! The consistency-rule model.
//!
//! The paper asks LLMs for rules "in terms of graph functional and
//! entity dependency rules" (§3.2) and observes (§4.5) that what comes
//! back is mostly *schema-shaped*: primary keys, attribute uniqueness,
//! mandatory properties, label enforcement — plus occasional complex
//! patterns and temporal constraints. This enum covers every rule
//! family quoted in the paper:
//!
//! | Variant | Paper example |
//! |---|---|
//! | [`ConsistencyRule::MandatoryProperty`] | "Each match node should have a date and stage property" |
//! | [`ConsistencyRule::UniqueProperty`] | "Each tweet node should have a unique id property" |
//! | [`ConsistencyRule::PropertyValueIn`] | "The owned property should only be True or False" |
//! | [`ConsistencyRule::PropertyRegex`] | "The domain property should be a string value matching domain format" |
//! | [`ConsistencyRule::PropertyRange`] | (schema-derived numeric bound) |
//! | [`ConsistencyRule::EdgeEndpointLabels`] | label enforcement on relationships |
//! | [`ConsistencyRule::NoSelfLoop`] | "users cannot follow themselves" |
//! | [`ConsistencyRule::IncomingExactlyOne`] | "every tweet must be associated with a valid user who posted it" |
//! | [`ConsistencyRule::TemporalOrder`] | "a retweet can occur only after the original tweet" |
//! | [`ConsistencyRule::PatternUniqueness`] | "no two SCORED_GOAL relationships ... same minute property" |
//! | [`ConsistencyRule::Custom`] | "a player should be associated with a squad, and that squad should belong to the tournament ..." |

use grm_pgraph::Value;

/// Coarse complexity classes, used for the §4.5 rule-type analysis
/// (Llama-3 prefers `Schema`, Mixtral reaches for `Pattern` and
/// `Temporal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RuleComplexity {
    /// Single-element schema constraints.
    Schema,
    /// Multi-element / graph-pattern constraints.
    Pattern,
    /// Constraints over timestamps or event ordering.
    Temporal,
}

/// A consistency rule over a property graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConsistencyRule {
    /// Every node with `label` carries property `key`.
    MandatoryProperty { label: String, key: String },
    /// `key` is unique among nodes with `label` (primary-key style).
    UniqueProperty { label: String, key: String },
    /// `key` on `label` nodes takes only the listed values.
    PropertyValueIn { label: String, key: String, allowed: Vec<Value> },
    /// `key` on `label` nodes matches a regular expression.
    PropertyRegex { label: String, key: String, pattern: String },
    /// Numeric `key` on `label` nodes lies in `[min, max]`.
    PropertyRange { label: String, key: String, min: i64, max: i64 },
    /// Every `etype` relationship runs from a `src_label` node to a
    /// `dst_label` node.
    EdgeEndpointLabels { etype: String, src_label: String, dst_label: String },
    /// No `etype` relationship connects a `label` node to itself.
    NoSelfLoop { label: String, etype: String },
    /// Every `dst_label` node has exactly one incoming `etype`
    /// relationship from a `src_label` node.
    IncomingExactlyOne { src_label: String, etype: String, dst_label: String },
    /// For every `etype` edge, the source's `src_key` timestamp is
    /// not earlier than the target's `dst_key` (e.g. retweet after
    /// original tweet).
    TemporalOrder {
        src_label: String,
        src_key: String,
        etype: String,
        dst_label: String,
        dst_key: String,
    },
    /// No two `etype` relationships between the same `src_label` and
    /// `dst_label` pair share the same `key` value.
    PatternUniqueness { src_label: String, etype: String, dst_label: String, key: String },
    /// A bespoke rule carrying its own natural language and metric
    /// queries — how the rare complex GFD-style rules (e.g. the
    /// WWC2019 player/squad/tournament rule) are represented.
    Custom {
        /// Short stable identifier for dedup.
        id: String,
        /// The natural-language statement.
        nl: String,
        /// Cypher counting elements satisfying the rule.
        satisfied: String,
        /// Cypher counting elements the rule's body matches.
        body: String,
        /// Cypher counting all facts of the head relation.
        head_total: String,
        /// Complexity class for the rule-type analysis.
        complexity: RuleComplexity,
    },
}

impl ConsistencyRule {
    /// Complexity class of the rule.
    pub fn complexity(&self) -> RuleComplexity {
        use ConsistencyRule::*;
        match self {
            MandatoryProperty { .. }
            | UniqueProperty { .. }
            | PropertyValueIn { .. }
            | PropertyRegex { .. }
            | PropertyRange { .. }
            | EdgeEndpointLabels { .. } => RuleComplexity::Schema,
            NoSelfLoop { .. } | IncomingExactlyOne { .. } | PatternUniqueness { .. } => {
                RuleComplexity::Pattern
            }
            TemporalOrder { .. } => RuleComplexity::Temporal,
            Custom { complexity, .. } => *complexity,
        }
    }

    /// Short kind name for reporting.
    pub fn kind(&self) -> &'static str {
        use ConsistencyRule::*;
        match self {
            MandatoryProperty { .. } => "mandatory-property",
            UniqueProperty { .. } => "unique-property",
            PropertyValueIn { .. } => "value-domain",
            PropertyRegex { .. } => "regex",
            PropertyRange { .. } => "range",
            EdgeEndpointLabels { .. } => "endpoint-labels",
            NoSelfLoop { .. } => "no-self-loop",
            IncomingExactlyOne { .. } => "cardinality",
            TemporalOrder { .. } => "temporal-order",
            PatternUniqueness { .. } => "pattern-uniqueness",
            Custom { .. } => "custom",
        }
    }

    /// Stable deduplication key: two generations of the same logical
    /// rule (e.g. from overlapping windows) collapse to one.
    pub fn dedup_key(&self) -> String {
        use ConsistencyRule::*;
        match self {
            MandatoryProperty { label, key } => format!("mand|{label}|{key}"),
            UniqueProperty { label, key } => format!("uniq|{label}|{key}"),
            PropertyValueIn { label, key, allowed } => {
                let mut vals: Vec<String> = allowed.iter().map(Value::group_key).collect();
                vals.sort();
                format!("domain|{label}|{key}|{}", vals.join(","))
            }
            PropertyRegex { label, key, pattern } => format!("regex|{label}|{key}|{pattern}"),
            PropertyRange { label, key, min, max } => {
                format!("range|{label}|{key}|{min}|{max}")
            }
            EdgeEndpointLabels { etype, src_label, dst_label } => {
                format!("endpoints|{etype}|{src_label}|{dst_label}")
            }
            NoSelfLoop { label, etype } => format!("noself|{label}|{etype}"),
            IncomingExactlyOne { src_label, etype, dst_label } => {
                format!("card|{src_label}|{etype}|{dst_label}")
            }
            TemporalOrder { src_label, src_key, etype, dst_label, dst_key } => {
                format!("temporal|{src_label}|{src_key}|{etype}|{dst_label}|{dst_key}")
            }
            PatternUniqueness { src_label, etype, dst_label, key } => {
                format!("patuniq|{src_label}|{etype}|{dst_label}|{key}")
            }
            Custom { id, .. } => format!("custom|{id}"),
        }
    }

    /// Removes duplicate rules (first occurrence wins), preserving
    /// order — the "combined to create a comprehensive set of rules"
    /// step at the end of the sliding-window flow (§3.1.1).
    pub fn dedup(rules: Vec<ConsistencyRule>) -> Vec<ConsistencyRule> {
        let mut seen = std::collections::HashSet::new();
        rules.into_iter().filter(|r| seen.insert(r.dedup_key())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mand() -> ConsistencyRule {
        ConsistencyRule::MandatoryProperty { label: "Match".into(), key: "date".into() }
    }

    #[test]
    fn complexity_classes() {
        assert_eq!(mand().complexity(), RuleComplexity::Schema);
        assert_eq!(
            ConsistencyRule::NoSelfLoop { label: "User".into(), etype: "FOLLOWS".into() }
                .complexity(),
            RuleComplexity::Pattern
        );
        assert_eq!(
            ConsistencyRule::TemporalOrder {
                src_label: "Tweet".into(),
                src_key: "created_at".into(),
                etype: "RETWEETS".into(),
                dst_label: "Tweet".into(),
                dst_key: "created_at".into(),
            }
            .complexity(),
            RuleComplexity::Temporal
        );
    }

    #[test]
    fn dedup_collapses_identical_rules() {
        let rules = vec![mand(), mand(), mand()];
        assert_eq!(ConsistencyRule::dedup(rules).len(), 1);
    }

    #[test]
    fn dedup_preserves_distinct_rules_and_order() {
        let other = ConsistencyRule::UniqueProperty { label: "Match".into(), key: "id".into() };
        let out = ConsistencyRule::dedup(vec![mand(), other.clone(), mand()]);
        assert_eq!(out, vec![mand(), other]);
    }

    #[test]
    fn value_domain_key_is_order_insensitive() {
        let a = ConsistencyRule::PropertyValueIn {
            label: "User".into(),
            key: "owned".into(),
            allowed: vec![Value::Bool(true), Value::Bool(false)],
        };
        let b = ConsistencyRule::PropertyValueIn {
            label: "User".into(),
            key: "owned".into(),
            allowed: vec![Value::Bool(false), Value::Bool(true)],
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn kinds_are_distinct() {
        let rules = [
            mand().kind(),
            ConsistencyRule::UniqueProperty { label: "X".into(), key: "k".into() }.kind(),
        ];
        assert_ne!(rules[0], rules[1]);
    }
}
