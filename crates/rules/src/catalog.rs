//! Catalogue of known complex (GFD-style) rules.
//!
//! The paper's complex rules are bespoke, dataset-specific patterns —
//! a handful per dataset, discovered mostly by Mixtral (§4.3, §4.5).
//! They are represented as [`ConsistencyRule::Custom`] values carrying
//! their own metric queries. Centralising them here lets both the
//! dataset generators (ground truth) and the LLM simulator (candidate
//! pool) refer to the *same* rule objects, keyed by the schema
//! elements they require.

use grm_pgraph::GraphSchema;

use crate::rule::{ConsistencyRule, RuleComplexity};

/// §4.3: *"A player should be associated with a squad, and that squad
/// should belong to the tournament for which the player has played a
/// match"* — the complex WWC2019 rule the paper credits to Mixtral.
pub fn squad_tournament_rule() -> ConsistencyRule {
    ConsistencyRule::Custom {
        id: "wwc-squad-tournament".into(),
        nl: "A player should be associated with a squad, and that squad should \
             belong to the tournament for which the player has played a match."
            .into(),
        satisfied: "MATCH (p:Person)-[:PLAYED_IN]->(m:Match)-[:IN_TOURNAMENT]->(t:Tournament) \
                    MATCH (p)-[:IN_SQUAD]->(s:Squad)-[:FOR_TOURNAMENT]->(t) \
                    RETURN COUNT(DISTINCT p.id) AS c"
            .into(),
        body: "MATCH (p:Person)-[:PLAYED_IN]->(m:Match)-[:IN_TOURNAMENT]->(t:Tournament) \
               RETURN COUNT(DISTINCT p.id) AS c"
            .into(),
        head_total: "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) RETURN COUNT(DISTINCT p.id) AS c"
            .into(),
        complexity: RuleComplexity::Pattern,
    }
}

/// §4.5: *"each match must have a score for both teams if the score
/// has been determined"* — approximated over the generated schema as
/// "a match with a home team must have been played by someone".
pub fn match_played_rule() -> ConsistencyRule {
    ConsistencyRule::Custom {
        id: "wwc-match-played".into(),
        nl: "Each match with a home team should have at least one player who \
             played in it."
            .into(),
        satisfied: "MATCH (tm:Team)-[:HOME_TEAM]->(m:Match)<-[:PLAYED_IN]-(p:Person) \
                    RETURN COUNT(DISTINCT m.id) AS c"
            .into(),
        body: "MATCH (tm:Team)-[:HOME_TEAM]->(m:Match) RETURN COUNT(DISTINCT m.id) AS c".into(),
        head_total: "MATCH (m:Match) RETURN COUNT(DISTINCT m.id) AS c".into(),
        complexity: RuleComplexity::Pattern,
    }
}

/// Cybersecurity: an admin session should belong to a user contained
/// in some OU — a cross-relationship pattern in the BloodHound style.
pub fn session_containment_rule() -> ConsistencyRule {
    ConsistencyRule::Custom {
        id: "cyber-session-containment".into(),
        nl: "Every user with a session on a computer should be contained in an \
             organizational unit."
            .into(),
        satisfied: "MATCH (c:Computer)-[:HAS_SESSION]->(u:User)<-[:CONTAINS]-(o:OU) \
                    RETURN COUNT(DISTINCT u.id) AS c"
            .into(),
        body: "MATCH (c:Computer)-[:HAS_SESSION]->(u:User) RETURN COUNT(DISTINCT u.id) AS c".into(),
        head_total: "MATCH (u:User) RETURN COUNT(DISTINCT u.id) AS c".into(),
        complexity: RuleComplexity::Pattern,
    }
}

/// Cybersecurity: every user belongs to some group, directly or via
/// nested group membership — a variable-length (GED-style) pattern
/// exercising the engine's `*1..3` paths.
pub fn transitive_membership_rule() -> ConsistencyRule {
    ConsistencyRule::Custom {
        id: "cyber-transitive-membership".into(),
        nl: "Every user should belong to at least one group, directly or through \
             nested group membership."
            .into(),
        satisfied: "MATCH (u:User)-[:MEMBER_OF*1..3]->(g:Group) \
                    RETURN COUNT(DISTINCT u) AS c"
            .into(),
        body: "MATCH (u:User) RETURN COUNT(*) AS c".into(),
        head_total: "MATCH (u:User) RETURN COUNT(*) AS c".into(),
        complexity: RuleComplexity::Pattern,
    }
}

/// Twitter: a retweeted tweet should itself have an author — the
/// "valid user who posted it" rule of the paper's introduction lifted
/// to retweets.
pub fn retweet_author_rule() -> ConsistencyRule {
    ConsistencyRule::Custom {
        id: "twitter-retweet-author".into(),
        nl: "Every tweet that is retweeted should have a user who posted it.".into(),
        satisfied: "MATCH (rt:Tweet)-[:RETWEETS]->(t:Tweet)<-[:POSTS]-(u:User) \
                    RETURN COUNT(DISTINCT t.id) AS c"
            .into(),
        body: "MATCH (rt:Tweet)-[:RETWEETS]->(t:Tweet) RETURN COUNT(DISTINCT t.id) AS c".into(),
        head_total: "MATCH (t:Tweet) RETURN COUNT(DISTINCT t.id) AS c".into(),
        complexity: RuleComplexity::Pattern,
    }
}

/// Complex rules whose required labels and relationship types are all
/// present in `schema` — the candidate pool a complexity-seeking
/// persona (Mixtral) draws from.
pub fn available_complex_rules(schema: &GraphSchema) -> Vec<ConsistencyRule> {
    let mut out = Vec::new();
    let has = |labels: &[&str], etypes: &[&str]| {
        labels.iter().all(|l| schema.has_node_label(l))
            && etypes.iter().all(|t| schema.has_edge_label(t))
    };
    if has(
        &["Person", "Match", "Tournament", "Squad"],
        &["PLAYED_IN", "IN_TOURNAMENT", "IN_SQUAD", "FOR_TOURNAMENT"],
    ) {
        out.push(squad_tournament_rule());
    }
    if has(&["Team", "Match", "Person"], &["HOME_TEAM", "PLAYED_IN"]) {
        out.push(match_played_rule());
    }
    if has(&["Computer", "User", "OU"], &["HAS_SESSION", "CONTAINS"]) {
        out.push(session_containment_rule());
    }
    if has(&["User", "Group"], &["MEMBER_OF"]) {
        out.push(transitive_membership_rule());
    }
    if has(&["Tweet", "User"], &["RETWEETS", "POSTS"]) {
        out.push(retweet_author_rule());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::{PropertyGraph, PropertyMap};

    fn schema_with(labels: &[&str], etypes: &[&str]) -> GraphSchema {
        let mut g = PropertyGraph::new();
        let mut ids = Vec::new();
        for l in labels {
            ids.push(g.add_node([*l], PropertyMap::new()));
        }
        for (i, t) in etypes.iter().enumerate() {
            let a = ids[i % ids.len()];
            let b = ids[(i + 1) % ids.len()];
            g.add_edge(a, b, *t, PropertyMap::new());
        }
        GraphSchema::infer(&g)
    }

    #[test]
    fn wwc_schema_unlocks_squad_rule() {
        let s = schema_with(
            &["Person", "Match", "Tournament", "Squad", "Team"],
            &["PLAYED_IN", "IN_TOURNAMENT", "IN_SQUAD", "FOR_TOURNAMENT", "HOME_TEAM"],
        );
        let rules = available_complex_rules(&s);
        assert!(rules.iter().any(
            |r| matches!(r, ConsistencyRule::Custom { id, .. } if id == "wwc-squad-tournament")
        ));
    }

    #[test]
    fn twitter_schema_unlocks_retweet_rule() {
        let s = schema_with(&["Tweet", "User"], &["RETWEETS", "POSTS"]);
        let rules = available_complex_rules(&s);
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn empty_schema_unlocks_nothing() {
        let s = GraphSchema::default();
        assert!(available_complex_rules(&s).is_empty());
    }

    #[test]
    fn partial_schema_does_not_unlock() {
        // Missing FOR_TOURNAMENT: no squad rule.
        let s = schema_with(
            &["Person", "Match", "Tournament", "Squad"],
            &["PLAYED_IN", "IN_TOURNAMENT", "IN_SQUAD"],
        );
        assert!(available_complex_rules(&s).iter().all(
            |r| !matches!(r, ConsistencyRule::Custom { id, .. } if id == "wwc-squad-tournament")
        ));
    }
}

#[cfg(test)]
mod var_length_tests {
    use super::*;
    use crate::queries::reference_queries;
    use grm_cypher::execute;
    use grm_pgraph::{props, PropertyGraph, Value};

    #[test]
    fn transitive_membership_counts_nested_members() {
        let mut g = PropertyGraph::new();
        let u1 = g.add_node(["User"], props([("id", Value::Int(1))]));
        let u2 = g.add_node(["User"], props([("id", Value::Int(2))]));
        let _u3 = g.add_node(["User"], props([("id", Value::Int(3))])); // no membership
        let inner = g.add_node(["Group"], props([("id", Value::Int(10))]));
        let outer = g.add_node(["Group"], props([("id", Value::Int(11))]));
        g.add_edge(u1, inner, "MEMBER_OF", Default::default());
        g.add_edge(inner, outer, "MEMBER_OF", Default::default());
        // u2 is only a member through two levels of nesting.
        let middle = g.add_node(["Group"], props([("id", Value::Int(12))]));
        g.add_edge(u2, middle, "MEMBER_OF", Default::default());
        g.add_edge(middle, inner, "MEMBER_OF", Default::default());

        let q = reference_queries(&transitive_membership_rule());
        let sat = execute(&g, &q.satisfied).unwrap().single_int().unwrap();
        let body = execute(&g, &q.body).unwrap().single_int().unwrap();
        assert_eq!(sat, 2, "u1 and u2 are (transitively) members");
        assert_eq!(body, 3);
    }

    #[test]
    fn cyber_schema_unlocks_transitive_rule() {
        let mut g = PropertyGraph::new();
        let u = g.add_node(["User"], Default::default());
        let grp = g.add_node(["Group"], Default::default());
        g.add_edge(u, grp, "MEMBER_OF", Default::default());
        let rules = available_complex_rules(&grm_pgraph::GraphSchema::infer(&g));
        assert!(rules.iter().any(
            |r| matches!(r, ConsistencyRule::Custom { id, .. } if id == "cyber-transitive-membership")
        ));
    }
}
