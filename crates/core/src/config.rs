//! Pipeline configuration: the experimental grid of the paper.
//!
//! Every cell of Tables 2–6 is one [`PipelineConfig`]: a model
//! persona × a context strategy (Figure 2) × a prompting style
//! (Figure 3), plus the seed that makes the run reproducible.

use grm_llm::{ModelKind, PromptStyle};
use grm_textenc::{EncoderKind, SummaryConfig, WindowConfig};
use grm_vecstore::RagConfig;

/// How the encoded graph reaches the model's context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContextStrategy {
    /// Figure 2a: fixed-size overlapping windows; one prompt per
    /// window; rules unioned.
    SlidingWindow(WindowConfig),
    /// Figure 2b: embed + retrieve; a single prompt over the top-k
    /// chunks.
    Rag(RagConfig),
    /// The paper's §5 future-work direction, implemented: a single
    /// prompt over a stratified exemplar summary of the graph —
    /// near-window quality at near-RAG cost.
    Summary(SummaryConfig),
}

impl ContextStrategy {
    /// Display name as in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ContextStrategy::SlidingWindow(_) => "Sliding Window Attention",
            ContextStrategy::Rag(_) => "RAG",
            ContextStrategy::Summary(_) => "Summary",
        }
    }

    /// The paper's defaults for both strategies.
    pub fn default_sliding_window() -> Self {
        ContextStrategy::SlidingWindow(WindowConfig::default())
    }

    /// Default RAG configuration.
    pub fn default_rag() -> Self {
        ContextStrategy::Rag(RagConfig::default())
    }

    /// Default summarization configuration (§5 extension).
    pub fn default_summary() -> Self {
        ContextStrategy::Summary(SummaryConfig::default())
    }
}

/// How the evaluation stage executes rule queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringConfig {
    /// Route scoring through the optimizing query layer (rewrites +
    /// plan cache + result memo). Off, every query parses and walks
    /// naively — `grm mine --no-optimizer`.
    pub optimize: bool,
    /// Plan-cache capacity in entries — `grm mine --plan-cache-size`.
    pub plan_cache_size: usize,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig { optimize: true, plan_cache_size: 256 }
    }
}

/// One experimental configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Which model persona to run.
    pub model: ModelKind,
    /// Window or RAG context strategy.
    pub strategy: ContextStrategy,
    /// Zero- or few-shot prompting.
    pub prompting: PromptStyle,
    /// Graph-to-text encoder (the paper uses the incident encoder).
    /// Note: the simulated models read their prompt through the
    /// incident-format fragment decoder, so `Adjacency` is only
    /// useful for encoding-cost experiments, not end-to-end mining.
    pub encoder: EncoderKind,
    /// Seed for the whole run (model randomness + rule selection).
    pub seed: u64,
    /// Cap on the final merged rule set; `None` derives a
    /// paper-plausible budget from the configuration and seed.
    pub rule_budget: Option<usize>,
    /// Query-layer knobs for the evaluation stage.
    pub scoring: ScoringConfig,
}

impl PipelineConfig {
    /// A configuration with the paper's defaults.
    pub fn new(model: ModelKind, strategy: ContextStrategy, prompting: PromptStyle) -> Self {
        PipelineConfig {
            model,
            strategy,
            prompting,
            encoder: EncoderKind::Incident,
            seed: 42,
            rule_budget: None,
            scoring: ScoringConfig::default(),
        }
    }

    /// All eight (model × strategy × prompting) combinations — the
    /// grid of one dataset's table.
    pub fn grid(seed: u64) -> Vec<PipelineConfig> {
        let mut out = Vec::with_capacity(8);
        for prompting in PromptStyle::ALL {
            for strategy in
                [ContextStrategy::default_sliding_window(), ContextStrategy::default_rag()]
            {
                for model in ModelKind::ALL {
                    out.push(PipelineConfig {
                        model,
                        strategy,
                        prompting,
                        encoder: EncoderKind::Incident,
                        seed,
                        rule_budget: None,
                        scoring: ScoringConfig::default(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_eight_configs() {
        let g = PipelineConfig::grid(1);
        assert_eq!(g.len(), 8);
        let sw =
            g.iter().filter(|c| matches!(c.strategy, ContextStrategy::SlidingWindow(_))).count();
        assert_eq!(sw, 4);
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(ContextStrategy::default_sliding_window().name(), "Sliding Window Attention");
        assert_eq!(ContextStrategy::default_rag().name(), "RAG");
    }
}
