//! Interactive rule mining — the paper's §5 human-in-the-loop
//! direction ("developing interactive rule mining techniques could
//! allow users to engage in the rule extraction process, offering
//! real-time feedback to refine the rules"), implemented.
//!
//! An [`InteractiveSession`] mines a candidate pool once, then
//! *proposes* rules one at a time — each with its metrics and an
//! evidence-grounded explanation — and adapts to feedback:
//!
//! * [`Feedback::Accept`] — the rule joins the accepted set;
//! * [`Feedback::Reject`] — the rule is dropped, and further
//!   proposals of the same family on the same element are suppressed
//!   (the expert said this *kind* of constraint is not wanted there);
//! * [`Feedback::Refine`] — the expert supplies a corrected rule
//!   (e.g. tightening a range, fixing a value domain), which is
//!   scored immediately and accepted in place of the proposal.
//!
//! The paper notes the LLM-based design "has the opportunity to
//! design rule mining pipelines that are inherently interactive,
//! allowing also domain experts (who may not possess technical
//! knowledge) to refine the rules to their needs" — this module is
//! that loop, with the NL dialect as the expert-facing surface.

use std::collections::HashSet;

use grm_llm::explain_rule;
use grm_metrics::{classify, evaluate, QueryClass, RuleMetrics};
use grm_pgraph::{GraphSchema, PropertyGraph};
use grm_rules::{reference_queries, to_nl, ConsistencyRule};

use crate::config::PipelineConfig;
use crate::pipeline::MiningPipeline;

/// A rule proposed to the expert.
#[derive(Debug, Clone)]
pub struct Proposal {
    pub rule: ConsistencyRule,
    pub nl: String,
    pub explanation: String,
    /// Metrics of the *reference* translation (the expert reviews the
    /// rule's meaning, not the model's possibly-corrupted Cypher).
    pub metrics: Option<RuleMetrics>,
    /// True when the rule references schema elements that do not
    /// exist — surfaced so the expert can reject confidently.
    pub suspected_hallucination: bool,
}

/// Expert feedback on a proposal.
#[derive(Debug, Clone)]
pub enum Feedback {
    Accept,
    Reject,
    /// Replace the proposal with a corrected rule.
    Refine(ConsistencyRule),
}

/// Suppression key: rule family + the element it constrains.
fn family_key(rule: &ConsistencyRule) -> String {
    use ConsistencyRule::*;
    match rule {
        MandatoryProperty { label, .. } => format!("mand|{label}"),
        UniqueProperty { label, .. } => format!("uniq|{label}"),
        PropertyValueIn { label, key, .. } => format!("domain|{label}|{key}"),
        PropertyRegex { label, key, .. } => format!("regex|{label}|{key}"),
        PropertyRange { label, key, .. } => format!("range|{label}|{key}"),
        EdgeEndpointLabels { etype, .. } => format!("endpoints|{etype}"),
        NoSelfLoop { etype, .. } => format!("noself|{etype}"),
        IncomingExactlyOne { etype, .. } => format!("card|{etype}"),
        TemporalOrder { etype, .. } => format!("temporal|{etype}"),
        PatternUniqueness { etype, key, .. } => format!("patuniq|{etype}|{key}"),
        Custom { id, .. } => format!("custom|{id}"),
    }
}

/// An interactive mining session over one graph.
pub struct InteractiveSession {
    schema: GraphSchema,
    graph: PropertyGraph,
    /// Remaining candidates, best-ranked first.
    queue: Vec<ConsistencyRule>,
    /// Currently outstanding proposal.
    pending: Option<ConsistencyRule>,
    /// Families the expert rejected.
    suppressed: HashSet<String>,
    /// Accepted rules with their metrics.
    accepted: Vec<(ConsistencyRule, Option<RuleMetrics>)>,
    rejected: usize,
    refined: usize,
}

impl InteractiveSession {
    /// Mines the candidate pool with `config` and opens the session.
    /// The candidate pool is the *unbudgeted* merged rule list, so the
    /// expert can go deeper than the batch pipeline's cut-off.
    pub fn start(config: PipelineConfig, graph: &PropertyGraph) -> Self {
        let mut config = config;
        config.rule_budget = Some(usize::MAX); // expert applies the budget
        let report = MiningPipeline::new(config).run(graph);
        let queue: Vec<ConsistencyRule> = report.rules.into_iter().map(|o| o.rule).collect();
        InteractiveSession {
            schema: GraphSchema::infer(graph),
            graph: graph.clone(),
            queue,
            pending: None,
            suppressed: HashSet::new(),
            accepted: Vec::new(),
            rejected: 0,
            refined: 0,
        }
    }

    /// Number of candidates still queued.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }

    /// The accepted rule set so far.
    pub fn accepted(&self) -> &[(ConsistencyRule, Option<RuleMetrics>)] {
        &self.accepted
    }

    /// `(accepted, rejected, refined)` counts.
    pub fn tally(&self) -> (usize, usize, usize) {
        (self.accepted.len(), self.rejected, self.refined)
    }

    /// Scores a rule's reference translation, if it is sound.
    fn score(&self, rule: &ConsistencyRule) -> (Option<RuleMetrics>, bool) {
        let queries = reference_queries(rule);
        let assessment = classify(&queries.satisfied, &self.schema);
        let hallucinated = assessment.class == QueryClass::HallucinatedProperty;
        let metrics = evaluate(&self.graph, &queries).ok();
        (metrics, hallucinated)
    }

    /// Produces the next proposal, skipping suppressed families.
    /// `None` when the pool is exhausted.
    ///
    /// # Panics
    /// Panics if the previous proposal has not received feedback yet —
    /// the protocol is strictly alternate propose/feedback.
    pub fn next_proposal(&mut self) -> Option<Proposal> {
        assert!(self.pending.is_none(), "previous proposal still awaiting feedback");
        loop {
            if self.queue.is_empty() {
                return None;
            }
            let rule = self.queue.remove(0);
            if self.suppressed.contains(&family_key(&rule)) {
                continue;
            }
            let (metrics, suspected_hallucination) = self.score(&rule);
            let proposal = Proposal {
                nl: to_nl(&rule),
                explanation: explain_rule(&rule, &self.schema),
                metrics,
                suspected_hallucination,
                rule: rule.clone(),
            };
            self.pending = Some(rule);
            return Some(proposal);
        }
    }

    /// Applies expert feedback to the outstanding proposal.
    ///
    /// # Panics
    /// Panics when no proposal is outstanding.
    pub fn feedback(&mut self, feedback: Feedback) {
        let rule = self.pending.take().expect("no outstanding proposal");
        match feedback {
            Feedback::Accept => {
                let (metrics, _) = self.score(&rule);
                self.accepted.push((rule, metrics));
            }
            Feedback::Reject => {
                self.suppressed.insert(family_key(&rule));
                self.rejected += 1;
            }
            Feedback::Refine(replacement) => {
                let (metrics, _) = self.score(&replacement);
                self.accepted.push((replacement, metrics));
                self.refined += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ContextStrategy;
    use grm_datasets::{generate, DatasetId, GenConfig};
    use grm_llm::{ModelKind, PromptStyle};

    fn session() -> InteractiveSession {
        let data = generate(DatasetId::Twitter, &GenConfig { seed: 3, scale: 0.02, clean: false });
        let config = PipelineConfig::new(
            ModelKind::Mixtral,
            ContextStrategy::default_summary(),
            PromptStyle::ZeroShot,
        );
        InteractiveSession::start(config, &data.graph)
    }

    #[test]
    fn proposals_come_with_metrics_and_explanations() {
        let mut s = session();
        let p = s.next_proposal().expect("pool is non-empty");
        assert!(!p.nl.is_empty());
        assert!(p.explanation.len() > 20);
        s.feedback(Feedback::Accept);
        assert_eq!(s.tally().0, 1);
    }

    #[test]
    fn reject_suppresses_the_family() {
        let mut s = session();
        let first = s.next_proposal().expect("pool is non-empty");
        let key = family_key(&first.rule);
        s.feedback(Feedback::Reject);
        // No later proposal shares the rejected family.
        while let Some(p) = s.next_proposal() {
            assert_ne!(family_key(&p.rule), key);
            s.feedback(Feedback::Accept);
        }
        assert!(s.tally().1 == 1);
    }

    #[test]
    fn refine_replaces_and_scores() {
        let mut s = session();
        let _ = s.next_proposal().expect("pool is non-empty");
        let replacement = ConsistencyRule::PropertyRange {
            label: "User".into(),
            key: "followers".into(),
            min: 0,
            max: 10_000_000,
        };
        s.feedback(Feedback::Refine(replacement.clone()));
        let accepted = s.accepted();
        assert_eq!(accepted[0].0, replacement);
        assert!(accepted[0].1.is_some(), "refined rule is scored");
        assert_eq!(s.tally(), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "awaiting feedback")]
    fn double_proposal_panics() {
        let mut s = session();
        let _ = s.next_proposal();
        let _ = s.next_proposal();
    }

    #[test]
    fn session_drains_to_none() {
        let mut s = session();
        let mut n = 0;
        while let Some(_p) = s.next_proposal() {
            s.feedback(Feedback::Accept);
            n += 1;
            assert!(n < 1000, "runaway session");
        }
        assert!(n > 0);
        assert_eq!(s.remaining(), 0);
    }
}
