//! Parallel rule mining — the paper's §5 future-work direction
//! ("future research on efficient rule mining with LLMs should focus
//! on parallelizing the prompting process (e.g., distributing
//! different parts of the graph to multiple LLMs)"), implemented.
//!
//! Windows are dealt round-robin to `workers` independent model
//! instances (in deployment: `workers` model replicas), each running
//! on its own OS thread. The simulated mining time becomes the
//! *maximum* over workers — the wall-clock of the fleet — while the
//! summed compute is also reported. Results are deterministic for a
//! fixed `(seed, workers)`: each worker's model is seeded from the
//! run seed and its worker index, and mined rules are concatenated in
//! worker order before the merge step.

use std::collections::HashMap;

use grm_llm::{
    CallSkip, GeneratedRule, MiningPrompt, MiningResponse, PromptStyle, ResilientLlm, SimLlm,
};
use grm_obs::{CheckpointRecord, Counter, DegradedRecord, Scope};
use grm_resil::{FaultPlan, StageSchedule};

use crate::config::PipelineConfig;

/// Outcome of mining a set of contexts with a worker fleet.
#[derive(Debug, Clone)]
pub struct ParallelMining {
    /// Mined rules, in deterministic (worker-major) order.
    pub rules: Vec<GeneratedRule>,
    /// Simulated wall-clock: the slowest worker's total.
    pub wall_seconds: f64,
    /// Simulated total compute across all workers.
    pub compute_seconds: f64,
    /// Workers that actually received work.
    pub busy_workers: usize,
}

/// Mines `contexts` with `workers` model replicas.
///
/// # Panics
/// Panics when `workers == 0`.
pub fn mine_parallel(
    contexts: &[String],
    cfg: &PipelineConfig,
    style: PromptStyle,
    target_rules: Option<usize>,
    workers: usize,
) -> ParallelMining {
    mine_parallel_traced(contexts, cfg, style, target_rules, workers, &Scope::disabled(), 0.0)
}

/// [`mine_parallel`] with instrumentation: one `worker-<id>` child
/// span per replica under `obs_scope`, carrying that worker's prompt
/// and rule counters plus its simulated busy time. Every worker span
/// starts at `stage_start` — the stage's simulated start offset (all
/// replicas begin mining the moment the stage opens), so `grm trace
/// timeline` can place each worker's busy segment on the sim axis.
///
/// Worker spans are opened *before* the threads spawn so span ids in
/// the journal are deterministic; each thread records onto its own
/// span, which keeps per-worker counter sums exact under concurrency.
///
/// # Panics
/// Panics when `workers == 0`.
#[allow(clippy::too_many_arguments)]
pub fn mine_parallel_traced(
    contexts: &[String],
    cfg: &PipelineConfig,
    style: PromptStyle,
    target_rules: Option<usize>,
    workers: usize,
    obs_scope: &Scope,
    stage_start: f64,
) -> ParallelMining {
    assert!(workers > 0, "at least one worker is required");
    let workers = workers.min(contexts.len().max(1));

    // Deal contexts round-robin, preserving index order per worker.
    // Each context keeps its original index so mined rules can be
    // stamped with their origin for lineage records.
    let mut assignments: Vec<Vec<(usize, &String)>> = vec![Vec::new(); workers];
    for (i, context) in contexts.iter().enumerate() {
        assignments[i % workers].push((i, context));
    }

    let results: Vec<(Vec<GeneratedRule>, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .enumerate()
            .map(|(worker_id, batch)| {
                let cfg = cfg.clone();
                let span = obs_scope.span_at(&format!("worker-{worker_id}"), stage_start);
                scope.spawn(move || {
                    // Each replica gets its own deterministic stream.
                    let mut model = SimLlm::new(cfg.model, cfg.seed ^ ((worker_id as u64) << 32));
                    let worker_scope = span.scope();
                    let mut rules = Vec::new();
                    let mut seconds = 0.0;
                    for (ci, context) in batch {
                        let mut prompt = MiningPrompt::new(style, (*context).clone());
                        prompt.target_rules = target_rules;
                        let resp = model.mine_traced(&prompt, &worker_scope);
                        seconds += resp.seconds;
                        // Stamped after mining, so the model's RNG
                        // stream is identical to the serial path.
                        rules.extend(resp.rules.into_iter().map(|mut r| {
                            r.origin = *ci;
                            r
                        }));
                    }
                    span.finish();
                    (rules, seconds)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });

    let wall_seconds = results.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    let compute_seconds = results.iter().map(|(_, s)| *s).sum();
    let busy_workers = results.iter().filter(|(r, _)| !r.is_empty()).count();
    let rules = results.into_iter().flat_map(|(r, _)| r).collect();
    ParallelMining { rules, wall_seconds, compute_seconds, busy_workers }
}

/// Outcome of chaos-mode parallel mining.
#[derive(Debug, Clone)]
pub struct ResilientMining {
    /// Mined rules, reassembled in context order — so the merge step
    /// sees the same sequence regardless of the worker count, and a
    /// killed run can be resumed with a different fleet size.
    pub rules: Vec<GeneratedRule>,
    /// Simulated wall-clock: the slowest worker's total, including
    /// fault costs and backoff.
    pub wall_seconds: f64,
    /// Simulated total compute across all workers.
    pub compute_seconds: f64,
    /// Contexts that produced nothing (abandoned or breaker-open).
    pub degraded_contexts: usize,
}

/// [`mine_parallel_traced`] under a fault plan: each worker runs its
/// units through [`ResilientLlm`], emitting fault/retry/checkpoint
/// records onto its own `worker-<id>` span (started at
/// `stage_start`, like the fault-free path). `checkpoints` holds a
/// resumed run's completed mine responses by context index; replayed
/// units skip the model but re-emit identical records.
///
/// # Panics
/// Panics when `workers == 0`.
#[allow(clippy::too_many_arguments)]
pub fn mine_parallel_resilient(
    contexts: &[String],
    cfg: &PipelineConfig,
    style: PromptStyle,
    target_rules: Option<usize>,
    workers: usize,
    plan: &FaultPlan,
    schedule: &StageSchedule,
    checkpoints: &HashMap<u64, MiningResponse>,
    obs_scope: &Scope,
    stage_start: f64,
) -> ResilientMining {
    assert!(workers > 0, "at least one worker is required");
    let workers = workers.min(contexts.len().max(1));

    let mut assignments: Vec<Vec<(usize, &String)>> = vec![Vec::new(); workers];
    for (i, context) in contexts.iter().enumerate() {
        assignments[i % workers].push((i, context));
    }

    let llm = ResilientLlm::new(cfg.model, cfg.seed);
    let results: Vec<(Vec<GeneratedRule>, f64, usize)> = std::thread::scope(|ts| {
        let handles: Vec<_> = assignments
            .iter()
            .enumerate()
            .map(|(worker_id, batch)| {
                let span = obs_scope.span_at(&format!("worker-{worker_id}"), stage_start);
                ts.spawn(move || {
                    let worker_scope = span.scope();
                    let mut rules = Vec::new();
                    let mut seconds = 0.0;
                    let mut degraded = 0usize;
                    for (ci, context) in batch {
                        let unit = &schedule.units[*ci];
                        let mut prompt = MiningPrompt::new(style, (*context).clone());
                        prompt.target_rules = target_rules;
                        let replay = checkpoints.get(&(*ci as u64)).cloned();
                        match llm.mine(plan, unit, &prompt, replay, &worker_scope) {
                            Ok(call) => {
                                seconds += call.response.seconds + call.fault_seconds;
                                worker_scope.checkpoint(CheckpointRecord {
                                    span: None,
                                    stage: unit.stage.name().to_owned(),
                                    unit: *ci as u64,
                                    payload: serde_json::to_string(&call.response)
                                        .unwrap_or_default(),
                                });
                                rules.extend(call.response.rules.into_iter().map(|mut r| {
                                    r.origin = *ci;
                                    r
                                }));
                            }
                            Err(skip) => {
                                if let CallSkip::Abandoned { fault_seconds, .. } = skip {
                                    seconds += fault_seconds;
                                }
                                degraded += 1;
                                worker_scope.add(Counter::WindowsDegraded, 1);
                                worker_scope.degraded(DegradedRecord {
                                    span: None,
                                    stage: unit.stage.name().to_owned(),
                                    unit: format!("context-{ci}"),
                                    reason: match skip {
                                        CallSkip::BreakerOpen => "breaker_open",
                                        CallSkip::Abandoned { .. } => "retries_exhausted",
                                    }
                                    .to_owned(),
                                });
                            }
                        }
                    }
                    span.finish();
                    (rules, seconds, degraded)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
    });

    let wall_seconds = results.iter().map(|(_, s, _)| *s).fold(0.0, f64::max);
    let compute_seconds = results.iter().map(|(_, s, _)| *s).sum();
    let degraded_contexts = results.iter().map(|(_, _, d)| *d).sum();
    let mut rules: Vec<GeneratedRule> = results.into_iter().flat_map(|(r, _, _)| r).collect();
    // Stable by origin: within one context the model's order holds,
    // across contexts the serial order is restored.
    rules.sort_by_key(|r| r.origin);
    ResilientMining { rules, wall_seconds, compute_seconds, degraded_contexts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ContextStrategy;
    use grm_llm::ModelKind;
    use grm_pgraph::{props, PropertyGraph, Value};
    use grm_textenc::{chunk, encode_incident, WindowConfig};

    fn contexts() -> Vec<String> {
        let mut g = PropertyGraph::new();
        for i in 0..200i64 {
            g.add_node(["User"], props([("id", Value::Int(i))]));
        }
        let text = encode_incident(&g);
        chunk(&text, WindowConfig::new(400, 40)).windows.into_iter().map(|w| w.text).collect()
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::new(
            ModelKind::Llama3,
            ContextStrategy::default_sliding_window(),
            PromptStyle::ZeroShot,
        )
    }

    #[test]
    fn parallel_mining_produces_rules() {
        let ctxs = contexts();
        let out = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 4);
        assert!(!out.rules.is_empty());
        assert!(out.busy_workers > 1);
    }

    #[test]
    fn wall_clock_shrinks_with_workers() {
        let ctxs = contexts();
        let serial = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 1);
        let four = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 4);
        assert!(
            four.wall_seconds < serial.wall_seconds / 2.0,
            "4 workers: {:.1}s vs serial {:.1}s",
            four.wall_seconds,
            serial.wall_seconds
        );
        // Compute is conserved within a small factor (per-call overhead).
        assert!(four.compute_seconds <= serial.compute_seconds * 1.2);
    }

    #[test]
    fn deterministic_for_fixed_worker_count() {
        let ctxs = contexts();
        let a = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 3);
        let b = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 3);
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.wall_seconds, b.wall_seconds);
    }

    #[test]
    fn more_workers_than_contexts_is_fine() {
        let ctxs = vec!["Node n0 with labels A has properties {x: 1}.".to_owned()];
        let out = mine_parallel(&ctxs, &cfg(), PromptStyle::ZeroShot, None, 16);
        assert!(out.busy_workers <= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        mine_parallel(&[], &cfg(), PromptStyle::ZeroShot, None, 0);
    }
}
