//! Pipeline output types: per-rule outcomes and the run report that
//! backs every table of the paper.

use grm_llm::ModelKind;
use grm_llm::PromptStyle;
use grm_metrics::{AggregateMetrics, ClassTally, QueryClass, RuleMetrics};
use grm_rules::ConsistencyRule;

/// Everything the pipeline learned about one mined rule.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RuleOutcome {
    /// The rule (as mined — possibly hallucinated).
    pub rule: ConsistencyRule,
    /// Its natural-language statement.
    pub nl: String,
    /// The Cypher the model generated (step 2), possibly corrupted.
    pub generated_cypher: String,
    /// The query after the §4.4 correction policy.
    pub corrected_cypher: String,
    /// Classification of the generated query.
    pub original_class: QueryClass,
    /// Classification after correction.
    pub final_class: QueryClass,
    /// True when the §4.4 corrector changed the query text.
    pub corrected: bool,
    /// Translation attempts: the initial translation plus one per
    /// repair the corrector applied.
    pub translation_attempts: usize,
    /// Support/coverage/confidence of the corrected query; `None`
    /// when it remained unexecutable.
    pub metrics: Option<RuleMetrics>,
    /// How many prompts produced this rule (merge frequency).
    pub frequency: usize,
    /// Generator-level hallucination flag (ground truth for tests).
    pub hallucinated: bool,
    /// Evidence-grounded rationale for the rule (§5 transparency
    /// extension; see `grm_llm::explain`).
    pub explanation: String,
}

/// The outcome of one pipeline run — one cell of Tables 2–6.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MiningReport {
    pub model: ModelKind,
    pub strategy_name: &'static str,
    pub prompting: PromptStyle,
    /// Final merged rule set with all per-rule data.
    pub rules: Vec<RuleOutcome>,
    /// Rule-mining prompts issued (windows, or 1 for RAG).
    pub prompts: usize,
    /// Windows produced by the chunker (0 for RAG).
    pub windows: usize,
    /// Encoder lines split across every window (§4.5's counts).
    pub broken_patterns: usize,
    /// Fraction of graph elements visible to the model (RAG only).
    pub rag_coverage: Option<f64>,
    /// Simulated seconds spent mining rules (Table 5).
    pub mining_seconds: f64,
    /// Simulated seconds spent translating rules to Cypher.
    pub translation_seconds: f64,
    /// Aggregated metrics over scored rules (Tables 2–4).
    pub aggregate: AggregateMetrics,
    /// Cypher correctness tally (Table 6 + §4.4 breakdown).
    pub correctness: ClassTally,
    /// Per-stage timing breakdown (one row per top-level span).
    pub stage_timings: Vec<grm_obs::StageTiming>,
    /// What the fault plan did to the run; `None` outside chaos mode.
    pub resilience: Option<ResilienceSummary>,
}

/// What a chaos run lost and recovered — the run-level rollup of the
/// journal's `Fault`/`Retry`/`Degraded` records.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ResilienceSummary {
    /// Seed of the fault stream.
    pub fault_seed: u64,
    /// Per-attempt fault probability.
    pub fault_rate: f64,
    /// Transient errors injected across all stages.
    pub faults_injected: u64,
    /// LLM units that recovered after at least one retry.
    pub llm_calls_retried: u64,
    /// LLM units abandoned after exhausting retries.
    pub llm_calls_abandoned: u64,
    /// Mine contexts skipped (abandoned or breaker-open).
    pub windows_degraded: u64,
    /// Selected rules dropped because translation failed.
    pub rules_degraded: u64,
    /// Scoreable rules left unscored because evaluation failed.
    pub queries_degraded: u64,
    /// Circuit-breaker trips across all stages.
    pub breaker_trips: u64,
    /// Mine units replayed from a resumed journal's checkpoints.
    pub resumed_mine_units: u64,
    /// Translate units replayed from a resumed journal's checkpoints.
    pub resumed_translate_units: u64,
}

impl MiningReport {
    /// Number of rules in the final set (`#rules` column).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Rules whose corrected query could be scored.
    pub fn scored_rules(&self) -> impl Iterator<Item = &RuleOutcome> {
        self.rules.iter().filter(|r| r.metrics.is_some())
    }

    /// Serializes the report to pretty JSON (for `grm mine --json`).
    pub fn to_json_pretty(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// One-line table row: `#rules, support, coverage, confidence`.
    pub fn table_row(&self) -> String {
        format!(
            "{:>6} {:>10.0} {:>8.2} {:>8.2}",
            self.rule_count(),
            self.aggregate.support,
            self.aggregate.coverage_pct,
            self.aggregate.confidence_pct
        )
    }
}
