//! # grm-core — the LLM rule-mining pipeline
//!
//! The paper's primary contribution (Figure 1): encode a property
//! graph, fit it into model context via sliding windows or RAG,
//! prompt a model (zero- or few-shot) for consistency rules,
//! translate them to Cypher, correct the translation errors the way
//! the authors did, and score every rule with support / coverage /
//! confidence.
//!
//! ```
//! use grm_core::{ContextStrategy, MiningPipeline, PipelineConfig};
//! use grm_datasets::{generate, DatasetId, GenConfig};
//! use grm_llm::{ModelKind, PromptStyle};
//!
//! let data = generate(DatasetId::Twitter, &GenConfig { scale: 0.005, ..Default::default() });
//! let config = PipelineConfig::new(
//!     ModelKind::Llama3,
//!     ContextStrategy::default_rag(),
//!     PromptStyle::ZeroShot,
//! );
//! let report = MiningPipeline::new(config).run(&data.graph);
//! assert!(report.rule_count() > 0);
//! ```

pub mod config;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod session;

pub use config::{ContextStrategy, PipelineConfig, ScoringConfig};
pub use parallel::{
    mine_parallel, mine_parallel_resilient, mine_parallel_traced, ParallelMining, ResilientMining,
};
pub use pipeline::{MiningPipeline, RAG_QUERY};
pub use report::{MiningReport, ResilienceSummary, RuleOutcome};
pub use resilience::{Resilience, ResumeState, RunStatus};
pub use session::{Feedback, InteractiveSession, Proposal};
