//! The mining pipeline — Figure 1 of the paper, end to end.
//!
//! 1. encode the property graph to text (`grm-textenc`);
//! 2. split into context(s): sliding windows (one prompt each) or a
//!    single RAG retrieval (`grm-vecstore`);
//! 3. prompt the model for rules, zero- or few-shot (`grm-llm`);
//! 4. merge per-prompt rules into one deduplicated set (§3.1.1);
//! 5. ask the model to translate each rule to Cypher;
//! 6. classify and correct the queries per the §4.4 policy
//!    (`grm-metrics`);
//! 7. execute the corrected queries to score support / coverage /
//!    confidence (§4.2).

use std::collections::HashMap;

use grm_cypher::{BatchConfig, BatchSession, PlanCacheConfig};
use grm_llm::{CallSkip, MiningPrompt, ResilientLlm, SimLlm, TranslationResponse};
use grm_metrics::{
    aggregate, class_counter, classify, correct, evaluate_labeled, evaluate_labeled_batched,
    evaluate_resilient, evaluate_resilient_batched, record_batch_stats, ClassTally, QueryClass,
    RuleMetrics,
};
use grm_obs::{
    ChaosRecord, CheckpointRecord, Counter, DegradedRecord, FootprintRow, Histo, LineageRecord,
    MemRecord, OriginRef, Recorder, Scope, Span,
};
use grm_pgraph::{GraphSchema, PropertyGraph};
use grm_resil::{ChaosConfig, FaultPlan, Stage};
use grm_rules::RuleQueries;
use grm_textenc::{chunk_traced, encode_summary_traced, encode_traced, token_count};
use grm_vecstore::Retriever;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{ContextStrategy, PipelineConfig};
use crate::report::{MiningReport, ResilienceSummary, RuleOutcome};
use crate::resilience::{Resilience, ResumeState, RunStatus};

/// The retrieval query of the RAG pathway — deliberately generic, as
/// in the paper ("the prompt itself indicates only the request to
/// generate consistency rules", §4.5).
pub const RAG_QUERY: &str = "Generate consistency rules for this property graph";

/// The rule-mining pipeline.
#[derive(Debug, Clone)]
pub struct MiningPipeline {
    pub config: PipelineConfig,
}

impl MiningPipeline {
    /// Builds a pipeline for `config`.
    pub fn new(config: PipelineConfig) -> Self {
        MiningPipeline { config }
    }

    /// Builds the model context(s) per the configured strategy, with
    /// encode/chunk/retrieve spans recorded on `scope`. Alongside each
    /// context comes its list of origin references — the stable ids
    /// (`window-<i>`, `chunk-<i>`, `summary`) and token spans lineage
    /// records trace rules back to.
    /// Returns `(contexts, origins, windows, broken_patterns, rag_coverage)`.
    #[allow(clippy::type_complexity)]
    fn build_contexts(
        &self,
        graph: &PropertyGraph,
        scope: &Scope,
    ) -> (Vec<String>, Vec<Vec<OriginRef>>, usize, usize, Option<f64>) {
        let cfg = &self.config;
        // Deterministic graph footprint for the journal's memory
        // records — capacity arithmetic only, identical on the
        // serial, parallel and chaos paths (all three call through
        // here), so byte-identity comparisons are unaffected. Guarded
        // so untraced runs pay nothing.
        if scope.is_enabled() {
            scope.mem(MemRecord::footprint_of(
                "graph",
                graph
                    .footprint()
                    .entries
                    .iter()
                    .map(|e| FootprintRow {
                        name: e.name.to_owned(),
                        count: e.count,
                        bytes: e.bytes,
                    })
                    .collect(),
            ));
        }
        let encoded = encode_traced(graph, cfg.encoder, scope);
        match &cfg.strategy {
            ContextStrategy::SlidingWindow(wc) => {
                let ws = chunk_traced(&encoded, *wc, scope);
                let windows = ws.len();
                let broken = ws.broken_patterns;
                let origins = ws
                    .windows
                    .iter()
                    .map(|w| {
                        vec![OriginRef {
                            id: format!("window-{}", w.index),
                            start_token: w.start_token as u64,
                            token_len: w.token_len as u64,
                        }]
                    })
                    .collect();
                let contexts = ws.windows.into_iter().map(|w| w.text).collect();
                (contexts, origins, windows, broken, None)
            }
            ContextStrategy::Rag(rc) => {
                let retriever = Retriever::ingest_traced(&encoded, *rc, scope);
                if scope.is_enabled() {
                    let fp = retriever.footprint();
                    scope.mem(MemRecord::footprint_of(
                        "vecstore",
                        vec![
                            FootprintRow {
                                name: "entries".to_owned(),
                                count: fp.chunks,
                                bytes: fp.entry_bytes,
                            },
                            FootprintRow {
                                name: "texts".to_owned(),
                                count: fp.chunks,
                                bytes: fp.text_bytes,
                            },
                            FootprintRow {
                                name: "embeddings".to_owned(),
                                count: fp.chunks,
                                bytes: fp.embedding_bytes,
                            },
                        ],
                    ));
                }
                let retrieval = retriever.retrieve_traced(RAG_QUERY, scope);
                let cov = retrieval.coverage();
                let origins = retrieval
                    .chunk_ids
                    .iter()
                    .zip(&retrieval.chunk_spans)
                    .map(|(id, (start, len))| OriginRef {
                        id: format!("chunk-{id}"),
                        start_token: *start as u64,
                        token_len: *len as u64,
                    })
                    .collect();
                (vec![retrieval.context()], vec![origins], 0, 0, Some(cov))
            }
            ContextStrategy::Summary(sc) => {
                let text = encode_summary_traced(graph, *sc, scope);
                let origins = vec![vec![OriginRef {
                    id: "summary".to_owned(),
                    start_token: 0,
                    token_len: token_count(&text) as u64,
                }]];
                (vec![text], origins, 0, 0, None)
            }
        }
    }

    /// Per-prompt rule target: single-prompt strategies must elicit
    /// the whole rule set at once; a window prompt only needs a few
    /// rules per window because the union across windows builds the
    /// set.
    fn per_prompt_target(&self, budget: usize) -> Option<usize> {
        match self.config.strategy {
            ContextStrategy::Rag(_) | ContextStrategy::Summary(_) => Some(budget),
            ContextStrategy::SlidingWindow(_) => None,
        }
    }

    /// Runs the full pipeline against `graph`.
    ///
    /// Always records through an internal [`Recorder`] so the
    /// report's stage-timing breakdown is populated; use
    /// [`MiningPipeline::run_traced`] to keep the journal too.
    pub fn run(&self, graph: &PropertyGraph) -> MiningReport {
        self.run_traced(graph, &Recorder::new())
    }

    /// [`MiningPipeline::run`] recording spans and counters on
    /// `recorder` — one stage span per Figure-1 step under a root
    /// `pipeline` span. Tracing never touches the model's RNG
    /// streams, so traced and untraced runs produce identical
    /// reports.
    pub fn run_traced(&self, graph: &PropertyGraph, recorder: &Recorder) -> MiningReport {
        let cfg = &self.config;
        let mut model = SimLlm::new(cfg.model, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        let root = recorder.root_scope().span("pipeline");
        let root_scope = root.scope();

        // Steps 1–2: encode and build contexts.
        let (contexts, origins, windows, broken_patterns, rag_coverage) =
            self.build_contexts(graph, &root_scope);

        // Step 3: mine rules per context.
        let budget = cfg.rule_budget.unwrap_or_else(|| self.derive_budget(&mut rng));
        let per_prompt_target = self.per_prompt_target(budget);
        let mine_span = root_scope.span("mine");
        let mine_scope = mine_span.scope();
        let mut mining_seconds = 0.0;
        let mut mined: Vec<grm_llm::GeneratedRule> = Vec::new();
        for (ci, context) in contexts.iter().enumerate() {
            let mut prompt = MiningPrompt::new(cfg.prompting, context.clone());
            prompt.target_rules = per_prompt_target;
            let resp = model.mine_traced(&prompt, &mine_scope);
            mining_seconds += resp.seconds;
            // Stamp the context index after mining: the model never
            // sees it, so traced lineage cannot perturb its RNG.
            mined.extend(resp.rules.into_iter().map(|mut r| {
                r.origin = ci;
                r
            }));
        }
        mine_span.finish();

        self.finish(
            graph,
            &mut model,
            mined,
            &origins,
            budget,
            contexts.len(),
            windows,
            broken_patterns,
            rag_coverage,
            mining_seconds,
            root,
            recorder,
        )
    }

    /// Parallel variant of [`MiningPipeline::run`] — the §5
    /// future-work direction, distributing window prompts over
    /// `workers` model replicas (see [`crate::parallel`]). Reported
    /// `mining_seconds` is the fleet wall-clock (the slowest
    /// replica); deterministic for a fixed `(seed, workers)`.
    pub fn run_with_workers(&self, graph: &PropertyGraph, workers: usize) -> MiningReport {
        self.run_with_workers_traced(graph, workers, &Recorder::new())
    }

    /// [`MiningPipeline::run_with_workers`] recording on `recorder`,
    /// with one `worker-<id>` child span per replica under the `mine`
    /// stage span. The `mine` span itself carries the fleet
    /// wall-clock; each worker span carries that replica's busy time.
    pub fn run_with_workers_traced(
        &self,
        graph: &PropertyGraph,
        workers: usize,
        recorder: &Recorder,
    ) -> MiningReport {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        let root = recorder.root_scope().span("pipeline");
        let root_scope = root.scope();
        let (contexts, origins, windows, broken_patterns, rag_coverage) =
            self.build_contexts(graph, &root_scope);
        let budget = cfg.rule_budget.unwrap_or_else(|| self.derive_budget(&mut rng));
        let mine_span = root_scope.span("mine");
        let mining = crate::parallel::mine_parallel_traced(
            &contexts,
            cfg,
            cfg.prompting,
            self.per_prompt_target(budget),
            workers,
            &mine_span.scope(),
            0.0, // mining starts at the sim origin
        );
        mine_span.scope().add_sim_seconds(mining.wall_seconds);
        mine_span.finish();
        // The translator is one dedicated replica with its own stream.
        let mut translator = SimLlm::new(cfg.model, cfg.seed ^ 0x7a41_5000);
        self.finish(
            graph,
            &mut translator,
            mining.rules,
            &origins,
            budget,
            contexts.len(),
            windows,
            broken_patterns,
            rag_coverage,
            mining.wall_seconds,
            root,
            recorder,
        )
    }

    /// Runs the pipeline under a [`Resilience`] plan: the entry point
    /// behind `grm mine --fault-rate/--resume/--kill-after`.
    ///
    /// Without chaos this *is* the plain traced run (fault rate 0 is
    /// normalised away by [`Resilience::chaos`]), so fault-free
    /// resilient runs produce byte-identical journals to
    /// [`MiningPipeline::run_traced`] by construction. With chaos,
    /// every LLM call and rule evaluation runs under the fault plan:
    /// transient errors are injected deterministically, retried with
    /// backoff, and degraded out of the run when retries exhaust or a
    /// stage breaker opens — the pipeline keeps mining with what it
    /// has. Completed LLM units are checkpointed into the journal;
    /// `resil.resume` replays them without re-calling the model.
    pub fn run_resilient(
        &self,
        graph: &PropertyGraph,
        workers: usize,
        recorder: &Recorder,
        resil: &Resilience,
    ) -> RunStatus {
        match resil.chaos {
            None => RunStatus::Complete(Box::new(if workers > 1 {
                self.run_with_workers_traced(graph, workers, recorder)
            } else {
                self.run_traced(graph, recorder)
            })),
            Some(chaos) => self.run_chaos(graph, workers, recorder, chaos, resil),
        }
    }

    /// The chaos-mode pipeline: [`MiningPipeline::run_traced`] with
    /// every fallible call routed through the fault plan.
    fn run_chaos(
        &self,
        graph: &PropertyGraph,
        workers: usize,
        recorder: &Recorder,
        chaos: ChaosConfig,
        resil: &Resilience,
    ) -> RunStatus {
        let cfg = &self.config;
        let plan = FaultPlan::new(chaos);
        let llm = ResilientLlm::new(cfg.model, cfg.seed);
        let empty = ResumeState::default();
        let resume = resil.resume.as_ref().unwrap_or(&empty);
        recorder.set_chaos(ChaosRecord {
            run_seed: cfg.seed,
            fault_seed: chaos.fault_seed,
            fault_rate: chaos.fault_rate,
            max_retries: chaos.max_retries,
            breaker_threshold: chaos.breaker_threshold,
            model: cfg.model.name().to_owned(),
            strategy: cfg.strategy.name().to_owned(),
            prompting: cfg.prompting.name().to_owned(),
            graph_nodes: graph.node_count() as u64,
            graph_edges: graph.edge_count() as u64,
        });
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        let root = recorder.root_scope().span("pipeline");
        let root_scope = root.scope();
        let (contexts, origins, windows, broken_patterns, rag_coverage) =
            self.build_contexts(graph, &root_scope);
        let budget = cfg.rule_budget.unwrap_or_else(|| self.derive_budget(&mut rng));
        let per_prompt_target = self.per_prompt_target(budget);

        // Step 3 under the fault plan. The whole stage schedule is a
        // pure function of the chaos config, so the breaker state
        // cannot depend on worker scheduling.
        let mine_span = root_scope.span("mine");
        let schedule = plan.schedule(Stage::Mine, contexts.len());
        if schedule.breaker_trips > 0 {
            mine_span.scope().add(Counter::BreakerTrips, schedule.breaker_trips);
        }
        let (mined, mining_seconds) = if workers > 1 {
            let mining = crate::parallel::mine_parallel_resilient(
                &contexts,
                cfg,
                cfg.prompting,
                per_prompt_target,
                workers,
                &plan,
                &schedule,
                &resume.mined,
                &mine_span.scope(),
                0.0, // mining starts at the sim origin
            );
            mine_span.scope().add_sim_seconds(mining.wall_seconds);
            (mining.rules, mining.wall_seconds)
        } else {
            let mine_scope = mine_span.scope();
            let mut mining_seconds = 0.0;
            let mut mined: Vec<grm_llm::GeneratedRule> = Vec::new();
            for (ci, context) in contexts.iter().enumerate() {
                let unit = &schedule.units[ci];
                let mut prompt = MiningPrompt::new(cfg.prompting, context.clone());
                prompt.target_rules = per_prompt_target;
                let replay = resume.mined.get(&(ci as u64)).cloned();
                match llm.mine(&plan, unit, &prompt, replay, &mine_scope) {
                    Ok(call) => {
                        mining_seconds += call.response.seconds + call.fault_seconds;
                        mine_scope.checkpoint(CheckpointRecord {
                            span: None,
                            stage: Stage::Mine.name().to_owned(),
                            unit: ci as u64,
                            payload: serde_json::to_string(&call.response).unwrap_or_default(),
                        });
                        mined.extend(call.response.rules.into_iter().map(|mut r| {
                            r.origin = ci;
                            r
                        }));
                    }
                    Err(skip) => {
                        if let CallSkip::Abandoned { fault_seconds, .. } = skip {
                            mining_seconds += fault_seconds;
                        }
                        mine_scope.add(Counter::WindowsDegraded, 1);
                        mine_scope.degraded(DegradedRecord {
                            span: None,
                            stage: Stage::Mine.name().to_owned(),
                            unit: format!("context-{ci}"),
                            reason: skip_reason(skip).to_owned(),
                        });
                    }
                }
                // The deterministic kill point: stop once `ci + 1`
                // units are done, leaving their checkpoints behind
                // for `--resume` (serial runs only; the CLI rejects
                // `--kill-after` with workers > 1).
                if let Some(k) = resil.kill_after {
                    if ci + 1 >= k && ci + 1 < contexts.len() {
                        mine_span.finish();
                        root.finish();
                        return RunStatus::Killed {
                            stage: Stage::Mine.name(),
                            completed_units: ci + 1,
                        };
                    }
                }
            }
            (mined, mining_seconds)
        };
        mine_span.finish();

        let mut report = self.finish_chaos(
            graph,
            &llm,
            &plan,
            resume,
            mined,
            &origins,
            budget,
            contexts.len(),
            windows,
            broken_patterns,
            rag_coverage,
            mining_seconds,
            root,
            recorder,
        );
        report.resilience = Some(ResilienceSummary {
            fault_seed: chaos.fault_seed,
            fault_rate: chaos.fault_rate,
            faults_injected: recorder.total(Counter::FaultsInjected),
            llm_calls_retried: recorder.total(Counter::LlmCallsRetried),
            llm_calls_abandoned: recorder.total(Counter::LlmCallsAbandoned),
            windows_degraded: recorder.total(Counter::WindowsDegraded),
            rules_degraded: recorder.total(Counter::RulesDegraded),
            queries_degraded: recorder.total(Counter::QueriesDegraded),
            breaker_trips: recorder.total(Counter::BreakerTrips),
            resumed_mine_units: resume.mined.len() as u64,
            resumed_translate_units: resume.translated.len() as u64,
        });
        RunStatus::Complete(Box::new(report))
    }

    /// Steps 4–7 under the fault plan: merge is pure (it cannot
    /// fault), translation runs unit-by-unit with retries and
    /// checkpointing (a degraded translation drops the rule),
    /// evaluation retries transient query errors per rule (a degraded
    /// evaluation leaves the rule unscored but keeps it in the set —
    /// its lineage records the loss).
    #[allow(clippy::too_many_arguments)]
    fn finish_chaos(
        &self,
        graph: &PropertyGraph,
        llm: &ResilientLlm,
        plan: &FaultPlan,
        resume: &ResumeState,
        mined: Vec<grm_llm::GeneratedRule>,
        origins: &[Vec<OriginRef>],
        budget: usize,
        prompts: usize,
        windows: usize,
        broken_patterns: usize,
        rag_coverage: Option<f64>,
        mining_seconds: f64,
        root_span: Span,
        recorder: &Recorder,
    ) -> MiningReport {
        let cfg = &self.config;
        let root_scope = root_span.scope();
        // Step 4: merge, exactly as in the fault-free path. Post-mine
        // stages carry their simulated start offsets (merge itself is
        // pure, so translate starts at the same sim instant) — the
        // same f64 arithmetic on the plain, chaos and resume paths,
        // keeping byte-identity comparisons intact.
        let merge_span = root_scope.span_at("merge", mining_seconds);
        let merge_scope = merge_span.scope();
        let merged = merge_rules(mined);
        merge_scope.add(Counter::RulesDeduped, merged.len() as u64);
        let selected: Vec<MergedRule> = merged.into_iter().take(budget).collect();
        for m in &selected {
            merge_scope.observe(Histo::RuleFrequency, m.frequency as f64);
        }
        merge_span.finish();

        let schema = GraphSchema::infer(graph);
        let schema_summary = schema.summary();

        // Step 5: translate each selected rule under its unit plan.
        // Unit keys are post-merge rule indices, which are stable for
        // a fixed run seed — the property resume relies on.
        let translate_span = root_scope.span_at("translate", mining_seconds);
        let translate_scope = translate_span.scope();
        let t_sched = plan.schedule(Stage::Translate, selected.len());
        if t_sched.breaker_trips > 0 {
            translate_scope.add(Counter::BreakerTrips, t_sched.breaker_trips);
        }
        let mut translation_seconds = 0.0;
        let translations: Vec<Option<TranslationResponse>> = selected
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let unit = &t_sched.units[i];
                let replay = resume.translated.get(&(i as u64)).cloned();
                match llm.translate(
                    plan,
                    unit,
                    &m.rule.rule,
                    &schema_summary,
                    replay,
                    &translate_scope,
                ) {
                    Ok(call) => {
                        translation_seconds += call.response.seconds + call.fault_seconds;
                        translate_scope.checkpoint(CheckpointRecord {
                            span: None,
                            stage: Stage::Translate.name().to_owned(),
                            unit: i as u64,
                            payload: serde_json::to_string(&call.response).unwrap_or_default(),
                        });
                        Some(call.response)
                    }
                    Err(skip) => {
                        if let CallSkip::Abandoned { fault_seconds, .. } = skip {
                            translation_seconds += fault_seconds;
                        }
                        translate_scope.add(Counter::RulesDegraded, 1);
                        translate_scope.degraded(DegradedRecord {
                            span: None,
                            stage: Stage::Translate.name().to_owned(),
                            unit: format!("rule-{i}"),
                            reason: skip_reason(skip).to_owned(),
                        });
                        None
                    }
                }
            })
            .collect();
        translate_span.finish();

        // Steps 6–7: untranslated rules are dropped (their indices
        // stay reserved, so `rule-<i>` labels match across resumes);
        // evaluation faults retry per unit without a breaker — the
        // query engine is local, not a shared provider.
        let evaluate_span = root_scope.span_at("evaluate", mining_seconds + translation_seconds);
        let evaluate_scope = evaluate_span.scope();
        let mut session = self.scoring_session();
        let mut correctness = ClassTally::default();
        let mut outcomes = Vec::with_capacity(selected.len());
        for (i, (m, resp)) in selected.into_iter().zip(translations).enumerate() {
            let Some(resp) = resp else { continue };
            let unit = plan.unit(Stage::Evaluate, i as u64);
            outcomes.push(self.assess_rule(
                i,
                m,
                &resp,
                &schema,
                origins,
                &evaluate_scope,
                &mut correctness,
                |queries, label| match session.as_mut() {
                    Some(session) => evaluate_resilient_batched(
                        graph,
                        queries,
                        &evaluate_scope,
                        label,
                        &unit,
                        session,
                    ),
                    None => evaluate_resilient(graph, queries, &evaluate_scope, label, &unit),
                },
            ));
        }
        if let Some(session) = &session {
            record_batch_stats(&evaluate_scope, &session.stats());
        }
        evaluate_span.finish();
        root_span.finish();

        let scored: Vec<_> = outcomes.iter().filter_map(|o| o.metrics).collect();
        MiningReport {
            model: cfg.model,
            strategy_name: cfg.strategy.name(),
            prompting: cfg.prompting,
            rules: outcomes,
            prompts,
            windows,
            broken_patterns,
            rag_coverage,
            mining_seconds,
            translation_seconds,
            aggregate: aggregate(&scored),
            correctness,
            stage_timings: recorder.snapshot().stage_timings(),
            resilience: None,
        }
    }

    /// The scoring session of one evaluate pass, or `None` on the
    /// naive path (`--no-optimizer`). Built identically for the plain
    /// and chaos loops: the session keys every decision on query text
    /// and the graph epoch, so a resumed or chaos run replaying the
    /// same rule sequence journals byte-identical counters.
    fn scoring_session(&self) -> Option<BatchSession> {
        let scoring = self.config.scoring;
        scoring.optimize.then(|| {
            BatchSession::new(BatchConfig {
                plan_cache: PlanCacheConfig {
                    capacity: scoring.plan_cache_size,
                    ..PlanCacheConfig::default()
                },
                ..BatchConfig::default()
            })
        })
    }

    /// Steps 4–7: merge, translate, classify/correct, score.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        graph: &PropertyGraph,
        model: &mut SimLlm,
        mined: Vec<grm_llm::GeneratedRule>,
        origins: &[Vec<OriginRef>],
        budget: usize,
        prompts: usize,
        windows: usize,
        broken_patterns: usize,
        rag_coverage: Option<f64>,
        mining_seconds: f64,
        root_span: Span,
        recorder: &Recorder,
    ) -> MiningReport {
        let cfg = &self.config;
        let root_scope = root_span.scope();
        // Step 4: merge — dedup with frequency ranking (§3.1.1:
        // per-window rules "combined to create a comprehensive set").
        // Post-mine stages are stamped with their simulated start
        // offsets; merge is pure (no sim cost), so translate starts
        // at the same sim instant.
        let merge_span = root_scope.span_at("merge", mining_seconds);
        let merge_scope = merge_span.scope();
        let merged = merge_rules(mined);
        merge_scope.add(Counter::RulesDeduped, merged.len() as u64);
        let selected: Vec<MergedRule> = merged.into_iter().take(budget).collect();
        // The cross-prompt frequency distribution of the selected set
        // — how stable the surviving rules were across windows.
        for m in &selected {
            merge_scope.observe(Histo::RuleFrequency, m.frequency as f64);
        }
        merge_span.finish();

        let schema = GraphSchema::infer(graph);
        let schema_summary = schema.summary();

        // Step 5: translate every selected rule. One pass for all
        // rules keeps the translator's RNG stream identical to the
        // historical interleaved loop while giving the stage its own
        // span.
        let translate_span = root_scope.span_at("translate", mining_seconds);
        let translate_scope = translate_span.scope();
        let mut translation_seconds = 0.0;
        let translations: Vec<_> = selected
            .iter()
            .map(|m| {
                let resp =
                    model.translate_rule_traced(&m.rule.rule, &schema_summary, &translate_scope);
                translation_seconds += resp.seconds;
                resp
            })
            .collect();
        translate_span.finish();

        // Steps 6–7: classify, correct, score.
        let evaluate_span = root_scope.span_at("evaluate", mining_seconds + translation_seconds);
        let evaluate_scope = evaluate_span.scope();
        let mut session = self.scoring_session();
        let mut correctness = ClassTally::default();
        let mut outcomes = Vec::with_capacity(selected.len());
        for (i, (m, resp)) in selected.into_iter().zip(translations).enumerate() {
            outcomes.push(self.assess_rule(
                i,
                m,
                &resp,
                &schema,
                origins,
                &evaluate_scope,
                &mut correctness,
                |queries, label| {
                    match session.as_mut() {
                        Some(session) => evaluate_labeled_batched(
                            graph,
                            queries,
                            &evaluate_scope,
                            label,
                            session,
                        )
                        .ok(),
                        None => evaluate_labeled(graph, queries, &evaluate_scope, label).ok(),
                    }
                },
            ));
        }
        if let Some(session) = &session {
            record_batch_stats(&evaluate_scope, &session.stats());
        }
        evaluate_span.finish();
        root_span.finish();

        let scored: Vec<_> = outcomes.iter().filter_map(|o| o.metrics).collect();
        MiningReport {
            model: cfg.model,
            strategy_name: cfg.strategy.name(),
            prompting: cfg.prompting,
            rules: outcomes,
            prompts,
            windows,
            broken_patterns,
            rag_coverage,
            mining_seconds,
            translation_seconds,
            aggregate: aggregate(&scored),
            correctness,
            stage_timings: recorder.snapshot().stage_timings(),
            resilience: None,
        }
    }

    /// Steps 6–7 for one rule: classify the generated Cypher, tally
    /// and correct it, score it via `metrics_for`, and emit its
    /// lineage record. Shared verbatim between the plain and chaos
    /// paths so their per-rule operation order — and therefore their
    /// journals — cannot drift apart.
    #[allow(clippy::too_many_arguments)]
    fn assess_rule(
        &self,
        i: usize,
        m: MergedRule,
        resp: &TranslationResponse,
        schema: &GraphSchema,
        origins: &[Vec<OriginRef>],
        evaluate_scope: &Scope,
        correctness: &mut ClassTally,
        metrics_for: impl FnOnce(&RuleQueries, &str) -> Option<RuleMetrics>,
    ) -> RuleOutcome {
        let cfg = &self.config;
        let generated = resp.translation.cypher.clone();
        let assessment = classify(&generated, schema);
        correctness.add(assessment.class);
        // One class counter per rule: the five `rules_*` counters
        // partition `rules_translated` exactly (Correct included).
        evaluate_scope.add(class_counter(assessment.class), 1);

        let fixed = correct(&generated, schema);
        let metrics = if matches!(
            fixed.final_class,
            QueryClass::Correct | QueryClass::HallucinatedProperty
        ) {
            let queries = RuleQueries {
                satisfied: fixed.corrected.clone(),
                body: resp.translation.reference.body.clone(),
                head_total: resp.translation.reference.head_total.clone(),
            };
            // Per-rule plan scopes: `grm trace plans` aggregates
            // profiles by this label.
            metrics_for(&queries, &format!("rule-{i}"))
        } else {
            None
        };
        // Lineage: the rule's full ancestry chain, from origin
        // context(s) through merge and translation to its scores.
        evaluate_scope.lineage(LineageRecord {
            span: None,
            index: i as u64,
            rule: format!("rule-{i}"),
            nl: m.rule.nl.clone(),
            strategy: cfg.strategy.name().to_owned(),
            origins: m
                .origins
                .iter()
                .flat_map(|ci| origins.get(*ci).cloned().unwrap_or_default())
                .collect(),
            frequency: m.frequency as u64,
            translation_attempts: 1 + fixed.repairs as u64,
            error_class: assessment.class.name().to_owned(),
            final_class: fixed.final_class.name().to_owned(),
            corrected: fixed.changed,
            support: metrics.map(|s| s.support),
            coverage_pct: metrics.map(|s| s.coverage_pct),
            confidence_pct: metrics.map(|s| s.confidence_pct),
        });
        RuleOutcome {
            explanation: grm_llm::explain_rule(&m.rule.rule, schema),
            nl: m.rule.nl.clone(),
            generated_cypher: generated,
            corrected_cypher: fixed.corrected,
            original_class: assessment.class,
            final_class: fixed.final_class,
            corrected: fixed.changed,
            translation_attempts: 1 + fixed.repairs,
            metrics,
            frequency: m.frequency,
            hallucinated: m.rule.hallucinated,
            rule: m.rule.rule,
        }
    }

    /// Derives a paper-plausible rule budget: sliding windows see the
    /// whole graph and support a larger final set than a single RAG
    /// prompt; few-shot focuses the model on fewer rules.
    fn derive_budget(&self, rng: &mut StdRng) -> usize {
        use grm_llm::PromptStyle::*;
        let (lo, hi) = match (&self.config.strategy, self.config.prompting) {
            (ContextStrategy::SlidingWindow(_), ZeroShot) => (8, 12),
            (ContextStrategy::SlidingWindow(_), FewShot) => (5, 9),
            (ContextStrategy::Rag(_), ZeroShot) => (6, 8),
            (ContextStrategy::Rag(_), FewShot) => (4, 6),
            // The summary prompt carries representative evidence for
            // the whole graph; it supports a window-sized rule set.
            (ContextStrategy::Summary(_), ZeroShot) => (8, 11),
            (ContextStrategy::Summary(_), FewShot) => (5, 8),
        };
        rng.gen_range(lo..=hi)
    }
}

/// A merged rule with its cross-prompt frequency and the context
/// indices that produced it (first-seen order, deduplicated).
#[derive(Debug, Clone)]
struct MergedRule {
    rule: grm_llm::GeneratedRule,
    frequency: usize,
    origins: Vec<usize>,
}

/// Journal reason string for a skipped unit.
fn skip_reason(skip: CallSkip) -> &'static str {
    match skip {
        CallSkip::BreakerOpen => "breaker_open",
        CallSkip::Abandoned { .. } => "retries_exhausted",
    }
}

/// Deduplicates mined rules, ranking by how many prompts produced
/// them (stability across windows ≈ reliability), then by evidence.
/// Merged rules live in the vector itself and the map only holds
/// indices into it, so first-seen order falls out for free — no
/// second keyed pass, nothing to panic on.
fn merge_rules(mined: Vec<grm_llm::GeneratedRule>) -> Vec<MergedRule> {
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut merged: Vec<MergedRule> = Vec::new();
    for rule in mined {
        let key = rule.rule.dedup_key();
        match index.get(&key) {
            Some(&at) => {
                let existing = &mut merged[at];
                existing.frequency += 1;
                if !existing.origins.contains(&rule.origin) {
                    existing.origins.push(rule.origin);
                }
                if rule.evidence > existing.rule.evidence {
                    existing.rule = rule;
                }
            }
            None => {
                index.insert(key, merged.len());
                let origins = vec![rule.origin];
                merged.push(MergedRule { rule, frequency: 1, origins });
            }
        }
    }
    // Stable sort: insertion (first-seen) order breaks ties, exactly
    // as the historical keyed rebuild did.
    merged.sort_by(|a, b| {
        b.frequency.cmp(&a.frequency).then(
            b.rule.evidence.partial_cmp(&a.rule.evidence).unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_datasets::{generate, DatasetId, GenConfig};
    use grm_llm::{ModelKind, PromptStyle};
    use grm_textenc::WindowConfig;
    use grm_vecstore::RagConfig;

    fn small_graph() -> PropertyGraph {
        generate(DatasetId::Twitter, &GenConfig { scale: 0.01, ..Default::default() }).graph
    }

    fn sw_config(model: ModelKind, prompting: PromptStyle) -> PipelineConfig {
        PipelineConfig {
            // Small windows so the tiny test graph still chunks.
            strategy: ContextStrategy::SlidingWindow(WindowConfig::new(2000, 200)),
            ..PipelineConfig::new(model, ContextStrategy::default_sliding_window(), prompting)
        }
    }

    #[test]
    fn sliding_window_run_produces_scored_rules() {
        let g = small_graph();
        let report =
            MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot)).run(&g);
        assert!(report.rule_count() > 0);
        assert!(report.windows > 1);
        assert!(report.prompts == report.windows);
        assert!(report.scored_rules().count() > 0);
        assert!(report.mining_seconds > 0.0);
    }

    #[test]
    fn rag_run_prompts_once() {
        let g = small_graph();
        let cfg = PipelineConfig::new(
            ModelKind::Llama3,
            ContextStrategy::Rag(RagConfig::default()),
            PromptStyle::ZeroShot,
        );
        let report = MiningPipeline::new(cfg).run(&g);
        assert_eq!(report.prompts, 1);
        assert_eq!(report.windows, 0);
        assert!(report.rag_coverage.unwrap() > 0.0);
        assert!(report.rag_coverage.unwrap() <= 1.0);
    }

    #[test]
    fn rag_is_much_faster_than_sliding_window() {
        let g = small_graph();
        let sw = MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot)).run(&g);
        let rag = MiningPipeline::new(PipelineConfig::new(
            ModelKind::Llama3,
            ContextStrategy::Rag(RagConfig::default()),
            PromptStyle::ZeroShot,
        ))
        .run(&g);
        assert!(
            sw.mining_seconds > 3.0 * rag.mining_seconds,
            "sw {} vs rag {}",
            sw.mining_seconds,
            rag.mining_seconds
        );
    }

    #[test]
    fn deterministic_runs() {
        let g = small_graph();
        let a = MiningPipeline::new(sw_config(ModelKind::Mixtral, PromptStyle::FewShot)).run(&g);
        let b = MiningPipeline::new(sw_config(ModelKind::Mixtral, PromptStyle::FewShot)).run(&g);
        assert_eq!(a.rule_count(), b.rule_count());
        assert_eq!(a.mining_seconds, b.mining_seconds);
        assert_eq!(a.aggregate.support, b.aggregate.support);
    }

    #[test]
    fn correctness_tally_covers_all_rules() {
        let g = small_graph();
        let report =
            MiningPipeline::new(sw_config(ModelKind::Mixtral, PromptStyle::ZeroShot)).run(&g);
        assert_eq!(report.correctness.total, report.rule_count());
    }

    #[test]
    fn rule_budget_caps_output() {
        let g = small_graph();
        let cfg = PipelineConfig {
            rule_budget: Some(3),
            ..sw_config(ModelKind::Llama3, PromptStyle::ZeroShot)
        };
        let report = MiningPipeline::new(cfg).run(&g);
        assert!(report.rule_count() <= 3);
    }

    fn chaos(rate: f64) -> Resilience {
        Resilience::chaos(ChaosConfig { fault_rate: rate, ..ChaosConfig::default() })
    }

    #[test]
    fn zero_fault_rate_is_byte_identical_to_plain_run() {
        let g = small_graph();
        let pipe = MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot));
        let plain = Recorder::deterministic();
        pipe.run_traced(&g, &plain);
        let resilient = Recorder::deterministic();
        let status = pipe.run_resilient(&g, 1, &resilient, &chaos(0.0));
        assert!(matches!(status, RunStatus::Complete(_)));
        assert_eq!(plain.snapshot().to_jsonl(), resilient.snapshot().to_jsonl());
        // Deterministic mode keeps the v7 start offsets: they are
        // pure sim arithmetic, so byte-identity and the timeline
        // coexist in one journal.
        assert!(plain.snapshot().has_timeline());
    }

    #[test]
    fn chaos_run_is_deterministic_and_degrades_gracefully() {
        let g = small_graph();
        let pipe = MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot));
        let run = |rec: &Recorder| {
            pipe.run_resilient(&g, 1, rec, &chaos(0.35)).report().expect("completes")
        };
        let rec_a = Recorder::deterministic();
        let a = run(&rec_a);
        let rec_b = Recorder::deterministic();
        let b = run(&rec_b);
        assert_eq!(rec_a.snapshot().to_jsonl(), rec_b.snapshot().to_jsonl());
        let resil = a.resilience.expect("chaos summary present");
        assert!(resil.faults_injected > 0, "rate 0.35 injects faults");
        assert_eq!(a.rule_count(), b.rule_count());
        // The run survived: faults degrade units, not the pipeline.
        assert!(a.rule_count() > 0);
        let journal = rec_a.snapshot();
        assert!(journal.chaos.is_some());
        assert!(!journal.checkpoints.is_empty());
    }

    #[test]
    fn killed_run_resumes_to_byte_identical_journal() {
        let g = small_graph();
        let pipe = MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot));
        // Uninterrupted reference run.
        let full = Recorder::deterministic();
        let full_report =
            pipe.run_resilient(&g, 1, &full, &chaos(0.3)).report().expect("completes");

        // Killed after 2 mine units...
        let killed = Recorder::deterministic();
        let resil = Resilience { kill_after: Some(2), ..chaos(0.3) };
        let status = pipe.run_resilient(&g, 1, &killed, &resil);
        let RunStatus::Killed { stage, completed_units } = status else {
            panic!("expected a killed run");
        };
        assert_eq!(stage, "mine");
        assert_eq!(completed_units, 2);

        // ...then resumed from the partial journal.
        let partial = killed.snapshot();
        let (record, state) = ResumeState::from_journal(&partial).expect("resumable");
        assert_eq!(record.run_seed, 42);
        assert!(state.units() > 0, "killed run left checkpoints behind");
        let resumed_rec = Recorder::deterministic();
        let resumed = pipe
            .run_resilient(&g, 1, &resumed_rec, &Resilience { resume: Some(state), ..chaos(0.3) })
            .report()
            .expect("resumed run completes");
        assert_eq!(full.snapshot().to_jsonl(), resumed_rec.snapshot().to_jsonl());
        assert_eq!(full_report.rule_count(), resumed.rule_count());
        assert_eq!(full_report.aggregate.support, resumed.aggregate.support);
        // Replayed checkpoints contribute the same sim seconds as
        // live calls, so the resumed run's stage start offsets (and
        // therefore `grm trace timeline`) are identical too.
        assert!(resumed_rec.snapshot().has_timeline());
    }

    #[test]
    fn corrupt_checkpoint_payload_resumes_to_byte_identical_journal() {
        // Adversarial journal: flip bytes *inside* a Checkpoint
        // payload of a killed run (not just a truncated tail). Lossy
        // recovery must drop that unit — re-running it live — and the
        // resumed journal must still byte-compare with an
        // uninterrupted run's.
        let g = small_graph();
        let pipe = MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot));
        let full = Recorder::deterministic();
        pipe.run_resilient(&g, 1, &full, &chaos(0.3)).report().expect("completes");

        let killed = Recorder::deterministic();
        let resil = Resilience { kill_after: Some(2), ..chaos(0.3) };
        let RunStatus::Killed { .. } = pipe.run_resilient(&g, 1, &killed, &resil) else {
            panic!("expected a killed run");
        };
        let mut partial = killed.snapshot();
        assert!(partial.checkpoints.len() >= 2, "kill-after-2 leaves at least two checkpoints");
        partial.checkpoints[0].payload = "{\"garbage\": tru".into();

        let (_, state) = ResumeState::from_journal(&partial).expect("lossy recovery never fails");
        assert_eq!(state.dropped.len(), 1, "{:?}", state.dropped);
        let replayable = state.units();
        assert_eq!(replayable, partial.checkpoints.len() - 1, "one unit dropped for re-run");
        let resumed_rec = Recorder::deterministic();
        pipe.run_resilient(&g, 1, &resumed_rec, &Resilience { resume: Some(state), ..chaos(0.3) })
            .report()
            .expect("resumed run completes despite the corrupt checkpoint");
        assert_eq!(full.snapshot().to_jsonl(), resumed_rec.snapshot().to_jsonl());
    }

    #[test]
    fn parallel_chaos_matches_serial_rule_set() {
        let g = small_graph();
        let pipe = MiningPipeline::new(sw_config(ModelKind::Mixtral, PromptStyle::ZeroShot));
        let serial =
            pipe.run_resilient(&g, 1, &Recorder::new(), &chaos(0.3)).report().expect("serial");
        let fleet =
            pipe.run_resilient(&g, 3, &Recorder::new(), &chaos(0.3)).report().expect("fleet");
        // Per-unit model seeds + context-order reassembly: the final
        // rule set is independent of the worker count.
        let keys = |r: &MiningReport| -> Vec<String> {
            r.rules.iter().map(|o| o.rule.dedup_key()).collect()
        };
        assert_eq!(keys(&serial), keys(&fleet));
        assert_eq!(serial.aggregate.support, fleet.aggregate.support);
    }

    #[test]
    fn merged_rules_are_unique() {
        let g = small_graph();
        let report =
            MiningPipeline::new(sw_config(ModelKind::Llama3, PromptStyle::ZeroShot)).run(&g);
        let mut keys: Vec<String> = report.rules.iter().map(|r| r.rule.dedup_key()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }
}
