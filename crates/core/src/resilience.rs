//! Run-level resilience controls: chaos configuration, checkpoint
//! resume, and the deterministic mid-run kill used to test it.
//!
//! [`Resilience`] is what `grm mine --fault-rate` hands the pipeline:
//! an optional [`ChaosConfig`] (fault rate 0 normalises back to the
//! plain pipeline, so fault-free chaos runs are byte-identical to
//! pre-chaos journals *by construction*), an optional [`ResumeState`]
//! replayed from a previous run's journal, and an optional
//! deterministic kill point for exercising resume in tests and CI.
//!
//! Resume works because every completed LLM unit of a chaos run is
//! checkpointed into the journal with its full serialized response.
//! [`ResumeState::from_journal`] lifts those checkpoints back out of
//! a (possibly truncated) journal; the pipeline then replays them
//! through the same record-emitting code path, so a resumed run's
//! journal is byte-identical to an uninterrupted one. That includes
//! the v7 timeline fields: replayed units contribute the same
//! simulated seconds as live calls, so the `sim_start_seconds` the
//! pipeline stamps on post-mine stage spans — and therefore `grm
//! trace timeline` output — is identical across kill/resume.

use std::collections::HashMap;

use grm_llm::{MiningResponse, TranslationResponse};
use grm_obs::{ChaosRecord, RunJournal};
use grm_resil::ChaosConfig;

use crate::report::MiningReport;

/// Fault-injection and recovery controls for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct Resilience {
    /// Fault plan parameters; `None` runs the plain pipeline.
    pub chaos: Option<ChaosConfig>,
    /// Checkpointed work from a previous run to replay.
    pub resume: Option<ResumeState>,
    /// Deterministic kill: stop after this many mine units (serial
    /// runs only), returning [`RunStatus::Killed`]. Test/CI hook for
    /// the resume path.
    pub kill_after: Option<usize>,
}

impl Resilience {
    /// No chaos, no resume: the plain pipeline.
    pub fn none() -> Self {
        Resilience::default()
    }

    /// A chaos run under `chaos`. A fault rate of zero injects
    /// nothing, so it is normalised to [`Resilience::none`] — the
    /// run takes the exact fault-free code path and its journal is
    /// byte-identical to a plain traced run.
    pub fn chaos(chaos: ChaosConfig) -> Self {
        if chaos.fault_rate <= 0.0 {
            Resilience::none()
        } else {
            Resilience { chaos: Some(chaos), resume: None, kill_after: None }
        }
    }

    /// True when this run injects faults.
    pub fn is_chaos(&self) -> bool {
        self.chaos.is_some()
    }
}

/// Completed work lifted from a previous chaos run's journal:
/// stage responses keyed by unit (context index for mining, selected
/// rule index for translation), replayed instead of re-calling the
/// model.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Checkpointed mining responses by context index.
    pub mined: HashMap<u64, MiningResponse>,
    /// Checkpointed translation responses by rule index.
    pub translated: HashMap<u64, TranslationResponse>,
    /// Human-readable notes about checkpoints dropped during lossy
    /// recovery (corrupt payloads, unknown stages). Each dropped
    /// unit is simply absent from the maps above, so the pipeline
    /// re-runs it — deterministically converging to the same journal
    /// an uninterrupted run would have written.
    pub dropped: Vec<String>,
}

impl ResumeState {
    /// Total units this state will replay.
    pub fn units(&self) -> usize {
        self.mined.len() + self.translated.len()
    }

    /// Extracts the chaos identity and every checkpoint from a
    /// journal — typically one cut short by a crash. The `Chaos`
    /// record is written right after `Meta`, so it survives any
    /// truncation that leaves the journal non-empty. Recovery is
    /// lossy: a checkpoint whose payload no longer parses (corrupt
    /// bytes *inside* a record, not just a torn tail) is dropped
    /// with a note in [`ResumeState::dropped`] rather than failing
    /// the whole resume — the pipeline simply re-runs that unit and
    /// still converges to a byte-identical journal.
    pub fn from_journal(journal: &RunJournal) -> Result<(ChaosRecord, ResumeState), String> {
        let chaos = journal.chaos.clone().ok_or_else(|| {
            "journal has no Chaos record — only chaos runs (--fault-rate > 0) checkpoint work \
             and can be resumed"
                .to_owned()
        })?;
        let mut state = ResumeState::default();
        for cp in &journal.checkpoints {
            match cp.stage.as_str() {
                "mine" => match serde_json::from_str::<MiningResponse>(&cp.payload) {
                    Ok(resp) => {
                        state.mined.insert(cp.unit, resp);
                    }
                    Err(e) => state
                        .dropped
                        .push(format!("corrupt mine checkpoint for unit {}: {e}", cp.unit)),
                },
                "translate" => match serde_json::from_str::<TranslationResponse>(&cp.payload) {
                    Ok(resp) => {
                        state.translated.insert(cp.unit, resp);
                    }
                    Err(e) => state
                        .dropped
                        .push(format!("corrupt translate checkpoint for unit {}: {e}", cp.unit)),
                },
                other => state
                    .dropped
                    .push(format!("unknown checkpoint stage {other:?} for unit {}", cp.unit)),
            }
        }
        Ok((chaos, state))
    }
}

/// How a resilient run ended.
#[derive(Debug)]
pub enum RunStatus {
    /// The pipeline ran to the end (possibly degraded — see the
    /// report's [`crate::report::ResilienceSummary`]).
    Complete(Box<MiningReport>),
    /// The deterministic kill point fired mid-mine; the journal holds
    /// a checkpoint per completed unit for `--resume`.
    Killed {
        /// Stage the kill hit (always `mine` today).
        stage: &'static str,
        /// Mine units processed before stopping.
        completed_units: usize,
    },
}

impl RunStatus {
    /// The report of a completed run, if it completed.
    pub fn report(self) -> Option<MiningReport> {
        match self {
            RunStatus::Complete(report) => Some(*report),
            RunStatus::Killed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_normalises_to_plain_run() {
        let r = Resilience::chaos(ChaosConfig { fault_rate: 0.0, ..ChaosConfig::default() });
        assert!(!r.is_chaos());
        let r = Resilience::chaos(ChaosConfig { fault_rate: 0.3, ..ChaosConfig::default() });
        assert!(r.is_chaos());
    }

    #[test]
    fn resume_requires_a_chaos_journal() {
        let journal = RunJournal::default();
        let err = ResumeState::from_journal(&journal).unwrap_err();
        assert!(err.contains("no Chaos record"), "{err}");
    }

    #[test]
    fn resume_drops_corrupt_checkpoint_payloads_lossily() {
        // Corrupt bytes *inside* a Checkpoint payload (the line still
        // parses as a record, the embedded response does not) must
        // not fail the resume: the unit is dropped so the pipeline
        // re-runs it.
        let journal = RunJournal {
            chaos: Some(ChaosRecord::default()),
            checkpoints: vec![
                grm_obs::CheckpointRecord {
                    span: None,
                    stage: "mine".into(),
                    unit: 3,
                    payload: "{not json".into(),
                },
                grm_obs::CheckpointRecord {
                    span: None,
                    stage: "translate".into(),
                    unit: 1,
                    payload: "\"wrong shape\"".into(),
                },
            ],
            ..RunJournal::default()
        };
        let (_, state) = ResumeState::from_journal(&journal).expect("lossy recovery never fails");
        assert!(state.mined.is_empty(), "the corrupt mine unit must be re-run, not replayed");
        assert!(state.translated.is_empty());
        assert_eq!(state.dropped.len(), 2, "{:?}", state.dropped);
        assert!(state.dropped[0].contains("corrupt mine checkpoint for unit 3"));
        assert!(state.dropped[1].contains("corrupt translate checkpoint for unit 1"));
    }

    #[test]
    fn resume_drops_unknown_checkpoint_stages_lossily() {
        let journal = RunJournal {
            chaos: Some(ChaosRecord::default()),
            checkpoints: vec![grm_obs::CheckpointRecord {
                span: None,
                stage: "frobnicate".into(),
                unit: 0,
                payload: "{}".into(),
            }],
            ..RunJournal::default()
        };
        let (_, state) = ResumeState::from_journal(&journal).expect("lossy recovery never fails");
        assert_eq!(state.units(), 0);
        assert_eq!(state.dropped.len(), 1);
        assert!(state.dropped[0].contains("unknown checkpoint stage"), "{:?}", state.dropped);
    }
}
