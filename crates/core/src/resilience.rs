//! Run-level resilience controls: chaos configuration, checkpoint
//! resume, and the deterministic mid-run kill used to test it.
//!
//! [`Resilience`] is what `grm mine --fault-rate` hands the pipeline:
//! an optional [`ChaosConfig`] (fault rate 0 normalises back to the
//! plain pipeline, so fault-free chaos runs are byte-identical to
//! pre-chaos journals *by construction*), an optional [`ResumeState`]
//! replayed from a previous run's journal, and an optional
//! deterministic kill point for exercising resume in tests and CI.
//!
//! Resume works because every completed LLM unit of a chaos run is
//! checkpointed into the journal with its full serialized response.
//! [`ResumeState::from_journal`] lifts those checkpoints back out of
//! a (possibly truncated) journal; the pipeline then replays them
//! through the same record-emitting code path, so a resumed run's
//! journal is byte-identical to an uninterrupted one. That includes
//! the v7 timeline fields: replayed units contribute the same
//! simulated seconds as live calls, so the `sim_start_seconds` the
//! pipeline stamps on post-mine stage spans — and therefore `grm
//! trace timeline` output — is identical across kill/resume.

use std::collections::HashMap;

use grm_llm::{MiningResponse, TranslationResponse};
use grm_obs::{ChaosRecord, RunJournal};
use grm_resil::ChaosConfig;

use crate::report::MiningReport;

/// Fault-injection and recovery controls for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct Resilience {
    /// Fault plan parameters; `None` runs the plain pipeline.
    pub chaos: Option<ChaosConfig>,
    /// Checkpointed work from a previous run to replay.
    pub resume: Option<ResumeState>,
    /// Deterministic kill: stop after this many mine units (serial
    /// runs only), returning [`RunStatus::Killed`]. Test/CI hook for
    /// the resume path.
    pub kill_after: Option<usize>,
}

impl Resilience {
    /// No chaos, no resume: the plain pipeline.
    pub fn none() -> Self {
        Resilience::default()
    }

    /// A chaos run under `chaos`. A fault rate of zero injects
    /// nothing, so it is normalised to [`Resilience::none`] — the
    /// run takes the exact fault-free code path and its journal is
    /// byte-identical to a plain traced run.
    pub fn chaos(chaos: ChaosConfig) -> Self {
        if chaos.fault_rate <= 0.0 {
            Resilience::none()
        } else {
            Resilience { chaos: Some(chaos), resume: None, kill_after: None }
        }
    }

    /// True when this run injects faults.
    pub fn is_chaos(&self) -> bool {
        self.chaos.is_some()
    }
}

/// Completed work lifted from a previous chaos run's journal:
/// stage responses keyed by unit (context index for mining, selected
/// rule index for translation), replayed instead of re-calling the
/// model.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Checkpointed mining responses by context index.
    pub mined: HashMap<u64, MiningResponse>,
    /// Checkpointed translation responses by rule index.
    pub translated: HashMap<u64, TranslationResponse>,
}

impl ResumeState {
    /// Total units this state will replay.
    pub fn units(&self) -> usize {
        self.mined.len() + self.translated.len()
    }

    /// Extracts the chaos identity and every checkpoint from a
    /// journal — typically one cut short by a crash. The `Chaos`
    /// record is written right after `Meta`, so it survives any
    /// truncation that leaves the journal non-empty; a checkpoint
    /// whose payload no longer parses is an error (the journal was
    /// corrupted beyond losing its tail).
    pub fn from_journal(journal: &RunJournal) -> Result<(ChaosRecord, ResumeState), String> {
        let chaos = journal.chaos.clone().ok_or_else(|| {
            "journal has no Chaos record — only chaos runs (--fault-rate > 0) checkpoint work \
             and can be resumed"
                .to_owned()
        })?;
        let mut state = ResumeState::default();
        for cp in &journal.checkpoints {
            match cp.stage.as_str() {
                "mine" => {
                    let resp: MiningResponse = serde_json::from_str(&cp.payload).map_err(|e| {
                        format!("corrupt mine checkpoint for unit {}: {e}", cp.unit)
                    })?;
                    state.mined.insert(cp.unit, resp);
                }
                "translate" => {
                    let resp: TranslationResponse =
                        serde_json::from_str(&cp.payload).map_err(|e| {
                            format!("corrupt translate checkpoint for unit {}: {e}", cp.unit)
                        })?;
                    state.translated.insert(cp.unit, resp);
                }
                other => return Err(format!("unknown checkpoint stage {other:?}")),
            }
        }
        Ok((chaos, state))
    }
}

/// How a resilient run ended.
#[derive(Debug)]
pub enum RunStatus {
    /// The pipeline ran to the end (possibly degraded — see the
    /// report's [`crate::report::ResilienceSummary`]).
    Complete(Box<MiningReport>),
    /// The deterministic kill point fired mid-mine; the journal holds
    /// a checkpoint per completed unit for `--resume`.
    Killed {
        /// Stage the kill hit (always `mine` today).
        stage: &'static str,
        /// Mine units processed before stopping.
        completed_units: usize,
    },
}

impl RunStatus {
    /// The report of a completed run, if it completed.
    pub fn report(self) -> Option<MiningReport> {
        match self {
            RunStatus::Complete(report) => Some(*report),
            RunStatus::Killed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_normalises_to_plain_run() {
        let r = Resilience::chaos(ChaosConfig { fault_rate: 0.0, ..ChaosConfig::default() });
        assert!(!r.is_chaos());
        let r = Resilience::chaos(ChaosConfig { fault_rate: 0.3, ..ChaosConfig::default() });
        assert!(r.is_chaos());
    }

    #[test]
    fn resume_requires_a_chaos_journal() {
        let journal = RunJournal::default();
        let err = ResumeState::from_journal(&journal).unwrap_err();
        assert!(err.contains("no Chaos record"), "{err}");
    }

    #[test]
    fn resume_rejects_corrupt_checkpoint_payloads() {
        let journal = RunJournal {
            chaos: Some(ChaosRecord::default()),
            checkpoints: vec![grm_obs::CheckpointRecord {
                span: None,
                stage: "mine".into(),
                unit: 3,
                payload: "{not json".into(),
            }],
            ..RunJournal::default()
        };
        let err = ResumeState::from_journal(&journal).unwrap_err();
        assert!(err.contains("corrupt mine checkpoint for unit 3"), "{err}");
    }
}
