//! End-to-end tracing: a full pipeline run must emit one span per
//! Figure-1 stage, and the journal's counters must agree with the
//! `MiningReport` the same run returned.

use grm_core::{ContextStrategy, MiningPipeline, PipelineConfig};
use grm_datasets::{generate, DatasetId, GenConfig};
use grm_llm::{ModelKind, PromptStyle};
use grm_obs::{Recorder, RunJournal};
use grm_pgraph::PropertyGraph;
use grm_textenc::WindowConfig;
use grm_vecstore::RagConfig;

fn small_graph() -> PropertyGraph {
    generate(DatasetId::Twitter, &GenConfig { scale: 0.01, ..Default::default() }).graph
}

fn sw_config() -> PipelineConfig {
    PipelineConfig {
        strategy: ContextStrategy::SlidingWindow(WindowConfig::new(2000, 200)),
        ..PipelineConfig::new(
            ModelKind::Llama3,
            ContextStrategy::default_sliding_window(),
            PromptStyle::ZeroShot,
        )
    }
}

fn stage_names(journal: &RunJournal) -> Vec<String> {
    let root = journal.span("pipeline").expect("root span");
    journal.children(root).iter().map(|s| s.name.clone()).collect()
}

#[test]
fn sliding_window_run_emits_one_span_per_stage() {
    let g = small_graph();
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();

    assert_eq!(
        stage_names(&journal),
        ["encode", "chunk", "mine", "merge", "translate", "evaluate"]
    );

    // Counters agree with the report.
    assert_eq!(journal.total("prompts_issued"), report.prompts as u64);
    assert_eq!(journal.total("windows_produced"), report.windows as u64);
    assert_eq!(journal.total("broken_patterns"), report.broken_patterns as u64);
    assert_eq!(journal.total("rules_translated"), report.rule_count() as u64);
    assert!(journal.total("rules_mined") >= journal.total("rules_deduped"));
    assert!(journal.total("rules_deduped") >= report.rule_count() as u64);
    assert_eq!(journal.total("nodes_encoded"), g.node_count() as u64);
    assert_eq!(journal.total("edges_encoded"), g.edge_count() as u64);
    assert!(journal.total("tokens_emitted") > 0);
    assert!(journal.total("support_evaluations") > 0);
    assert!(journal.total("cypher_queries_executed") >= journal.total("support_evaluations"));

    // Stage sim time agrees with the report's timing columns.
    let mine = journal.span("mine").unwrap();
    assert!((mine.sim_seconds - report.mining_seconds).abs() < 1e-9);
    let translate = journal.span("translate").unwrap();
    assert!((translate.sim_seconds - report.translation_seconds).abs() < 1e-9);

    // The report embeds the same breakdown.
    let stages: Vec<&str> = report.stage_timings.iter().map(|t| t.stage.as_str()).collect();
    assert_eq!(stages, ["encode", "chunk", "mine", "merge", "translate", "evaluate"]);
    let mine_row = report.stage_timings.iter().find(|t| t.stage == "mine").unwrap();
    assert!((mine_row.sim_seconds - report.mining_seconds).abs() < 1e-9);
}

#[test]
fn rag_run_emits_retrieval_spans_and_coverage_gauge() {
    let g = small_graph();
    let cfg = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::Rag(RagConfig::default()),
        PromptStyle::ZeroShot,
    );
    let rec = Recorder::new();
    let report = MiningPipeline::new(cfg).run_traced(&g, &rec);
    let journal = rec.snapshot();

    assert_eq!(
        stage_names(&journal),
        ["encode", "rag.ingest", "rag.retrieve", "mine", "merge", "translate", "evaluate"]
    );
    assert!(journal.total("chunks_ingested") > 0);
    assert!(journal.total("chunks_retrieved") > 0);
    assert_eq!(journal.gauge("rag_coverage"), report.rag_coverage);
    assert_eq!(journal.total("prompts_issued"), 1);
}

#[test]
fn traced_runs_record_deterministic_graph_footprints() {
    let g = small_graph();
    let rec = Recorder::new();
    MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();

    assert!(journal.has_mem());
    let graph_fp =
        journal.mems.iter().find(|m| m.kind == "footprint" && m.component == "graph").unwrap();
    let by_name = |name: &str| graph_fp.footprint.iter().find(|r| r.name == name).unwrap();
    assert_eq!(by_name("nodes").count, g.node_count() as u64);
    assert_eq!(by_name("edges").count, g.edge_count() as u64);
    assert!(graph_fp.footprint_bytes() > 0);
    // The table matches the graph's own accounting exactly.
    let direct = g.footprint();
    assert_eq!(graph_fp.footprint_bytes(), direct.total_bytes());

    // A second identical run records the identical footprint —
    // capacity arithmetic, not allocator readings.
    let rec2 = Recorder::new();
    MiningPipeline::new(sw_config()).run_traced(&small_graph(), &rec2);
    let journal2 = rec2.snapshot();
    let graph_fp2 =
        journal2.mems.iter().find(|m| m.kind == "footprint" && m.component == "graph").unwrap();
    assert_eq!(graph_fp.footprint, graph_fp2.footprint);

    // The RAG path additionally records the vector store.
    let cfg = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::Rag(RagConfig::default()),
        PromptStyle::ZeroShot,
    );
    let rec3 = Recorder::new();
    MiningPipeline::new(cfg).run_traced(&g, &rec3);
    let journal3 = rec3.snapshot();
    let vec_fp =
        journal3.mems.iter().find(|m| m.kind == "footprint" && m.component == "vecstore").unwrap();
    assert!(vec_fp.footprint.iter().any(|r| r.name == "embeddings" && r.bytes > 0));
}

#[test]
fn parallel_run_emits_worker_child_spans_that_sum_to_totals() {
    let g = small_graph();
    let workers = 4;
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_with_workers_traced(&g, workers, &rec);
    let journal = rec.snapshot();

    let mine = journal.span("mine").expect("mine span");
    let children = journal.children(mine);
    assert_eq!(children.len(), workers);
    for (i, child) in children.iter().enumerate() {
        assert_eq!(child.name, format!("worker-{i}"));
    }

    // Per-worker counters sum to the run totals.
    let prompts: u64 = children.iter().map(|c| c.counter("prompts_issued")).sum();
    assert_eq!(prompts, journal.total("prompts_issued"));
    assert_eq!(prompts, report.prompts as u64);
    let mined: u64 = children.iter().map(|c| c.counter("rules_mined")).sum();
    assert_eq!(mined, journal.total("rules_mined"));

    // The mine span carries the fleet wall-clock; workers carry
    // per-replica busy time, so the slowest worker equals the stage.
    let slowest = children.iter().map(|c| c.sim_seconds).fold(0.0, f64::max);
    assert!((mine.sim_seconds - slowest).abs() < 1e-9);
    assert!((mine.sim_seconds - report.mining_seconds).abs() < 1e-9);
}

#[test]
fn run_populates_latency_and_cardinality_histograms() {
    let g = small_graph();
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();

    // One mine-call latency observation per prompt, one translate-call
    // observation per surviving rule.
    let mine_calls = journal.histogram("mine_call_seconds").expect("mine_call_seconds");
    assert_eq!(mine_calls.count(), report.prompts as u64);
    assert!(mine_calls.p50() > 0.0);
    assert!(mine_calls.p99() >= mine_calls.p50());
    let translate = journal.histogram("translate_call_seconds").expect("translate_call_seconds");
    assert_eq!(translate.count(), report.rule_count() as u64);

    // One token-count observation per window, attributed to `chunk`.
    let tokens = journal.histogram("window_tokens").expect("window_tokens");
    assert_eq!(tokens.count(), report.windows as u64);
    let chunk_id = journal.span("chunk").unwrap().id;
    assert!(journal
        .span_histograms(chunk_id)
        .iter()
        .any(|h| h.name == "window_tokens" && h.histogram.count() == report.windows as u64));

    // Every evaluated Cypher query contributes a row-count sample, and
    // every selected rule a frequency sample.
    assert!(journal.histogram("cypher_rows_per_query").is_some());
    let freq = journal.histogram("rule_frequency").expect("rule_frequency");
    assert!(freq.count() > 0);
}

#[test]
fn rag_run_records_retrieval_score_distribution() {
    let g = small_graph();
    let cfg = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::Rag(RagConfig::default()),
        PromptStyle::ZeroShot,
    );
    let rec = Recorder::new();
    let _ = MiningPipeline::new(cfg).run_traced(&g, &rec);
    let journal = rec.snapshot();
    let scores = journal.histogram("retrieval_score").expect("retrieval_score");
    assert_eq!(scores.count(), journal.total("chunks_retrieved"));
}

#[test]
fn traced_and_untraced_runs_are_identical() {
    let g = small_graph();
    let plain = MiningPipeline::new(sw_config()).run(&g);
    let rec = Recorder::new();
    let traced = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    assert_eq!(plain.rule_count(), traced.rule_count());
    assert_eq!(plain.mining_seconds, traced.mining_seconds);
    assert_eq!(plain.translation_seconds, traced.translation_seconds);
    assert_eq!(plain.aggregate.support, traced.aggregate.support);
    assert_eq!(plain.correctness.total, traced.correctness.total);
    // And the always-on internal recorder populates the breakdown.
    assert_eq!(plain.stage_timings.len(), traced.stage_timings.len());
}

#[test]
fn journal_round_trips_through_jsonl_after_a_real_run() {
    let g = small_graph();
    let rec = Recorder::new();
    let _ = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();
    let text = journal.to_jsonl();
    let parsed = RunJournal::from_jsonl(&text).expect("round trip");
    assert_eq!(parsed, journal);
    assert!(!parsed.summary().is_empty());
}

#[test]
fn traced_run_attaches_per_rule_query_plans() {
    let g = small_graph();
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();

    // Every scored rule folded its executed metric-query profiles
    // into one plan record labelled `rule-{i}` under the evaluate
    // span. Queries answered by the scoring session's result memo
    // attach no profile (nothing ran), so a rule profiles 1–3
    // queries and the memoized counter accounts for the rest.
    let scored = report.rules.iter().filter(|o| o.metrics.is_some()).count();
    assert!(scored > 0, "seed config should score at least one rule");
    let rule_plans: Vec<_> =
        journal.plans.iter().filter(|p| p.scope.starts_with("rule-")).collect();
    assert!(!rule_plans.is_empty());
    assert!(rule_plans.len() <= scored);
    let evaluate_id = journal.span("evaluate").unwrap().id;
    for plan in &rule_plans {
        assert_eq!(plan.span, Some(evaluate_id));
        assert!(
            (1..=3).contains(&plan.queries),
            "scope {} ran {} queries",
            plan.scope,
            plan.queries
        );
        assert!(plan.db_hits() > 0, "scope {} profiled no db-hits", plan.scope);
        assert!(!plan.ops.is_empty());
        assert!(plan.ops.iter().all(|op| !op.path.is_empty()));
    }

    // The profiled-query counter and db-hit histogram agree with the
    // plans, and profiled + memoized covers all 3 queries per rule.
    let profiled: u64 = journal.plans.iter().map(|p| p.queries).sum();
    assert_eq!(journal.total("cypher_queries_profiled"), profiled);
    let memoized = journal.total("cypher_queries_memoized");
    assert!(memoized > 0, "shared head-total queries should memoize");
    assert_eq!(profiled + memoized, 3 * scored as u64);
    let hits = journal.histogram("cypher_db_hits_per_query").expect("cypher_db_hits_per_query");
    assert_eq!(hits.count(), profiled);

    // The session's run-wide cache counters landed on the journal.
    assert!(journal.total("plan_cache_misses") > 0);
    assert_eq!(
        journal.total("plan_cache_hits") + journal.total("plan_cache_misses"),
        3 * scored as u64,
    );
}

#[test]
fn traced_run_attaches_rule_lineage() {
    let g = small_graph();
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_traced(&g, &rec);
    let journal = rec.snapshot();

    // One lineage record per rule, indexed in rule order, attached
    // under the evaluate span.
    assert!(journal.has_lineage());
    assert_eq!(journal.lineages.len(), report.rule_count());
    let evaluate_id = journal.span("evaluate").unwrap().id;
    for (i, (l, o)) in journal.lineages.iter().zip(&report.rules).enumerate() {
        assert_eq!(l.span, Some(evaluate_id));
        assert_eq!(l.index, i as u64);
        assert_eq!(l.rule, format!("rule-{i}"));
        assert_eq!(l.nl, o.nl);
        assert_eq!(l.strategy, report.strategy_name);
        assert_eq!(l.frequency, o.frequency as u64);
        assert_eq!(l.corrected, o.corrected);
        assert_eq!(l.translation_attempts, o.translation_attempts as u64);
        assert!(!l.origins.is_empty(), "rule-{i} has no origin windows");
        for origin in &l.origins {
            assert!(origin.id.starts_with("window-"), "{}", origin.id);
            assert!(origin.token_len > 0);
        }
        assert_eq!(l.support, o.metrics.map(|m| m.support));
        // A rule mined by k distinct windows carries k origins, and
        // was seen at least that often.
        assert!(l.frequency >= l.origins.len() as u64);
    }

    // Satellite: the five class counters partition rules_translated.
    let class_sum: u64 = [
        "rules_correct",
        "rules_syntax_error",
        "rules_hallucinated_property",
        "rules_wrong_direction",
        "rules_other_semantic",
    ]
    .iter()
    .map(|c| journal.total(c))
    .sum();
    assert_eq!(class_sum, journal.total("rules_translated"));
    assert_eq!(journal.total("rules_correct"), report.correctness.correct as u64);
}

#[test]
fn parallel_run_attaches_rule_lineage_with_window_origins() {
    let g = small_graph();
    let rec = Recorder::new();
    let report = MiningPipeline::new(sw_config()).run_with_workers_traced(&g, 4, &rec);
    let journal = rec.snapshot();
    assert_eq!(journal.lineages.len(), report.rule_count());
    for l in &journal.lineages {
        assert!(!l.origins.is_empty(), "{} has no origins", l.rule);
        assert!(l.origins.iter().all(|o| o.id.starts_with("window-")));
    }
}

#[test]
fn rag_run_lineage_uses_chunk_origins() {
    let g = small_graph();
    let cfg = PipelineConfig::new(
        ModelKind::Llama3,
        ContextStrategy::Rag(RagConfig::default()),
        PromptStyle::ZeroShot,
    );
    let rec = Recorder::new();
    let report = MiningPipeline::new(cfg).run_traced(&g, &rec);
    let journal = rec.snapshot();
    assert_eq!(journal.lineages.len(), report.rule_count());
    for l in &journal.lineages {
        assert!(!l.origins.is_empty(), "{} has no origins", l.rule);
        assert!(l.origins.iter().all(|o| o.id.starts_with("chunk-")), "{:?}", l.origins);
        // All rules come from the single RAG prompt.
        assert_eq!(l.frequency, 1);
    }
}

mod lineage_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The five error-class counters always partition
        /// `rules_translated`, whatever the seed.
        #[test]
        fn class_counters_partition_rules_translated(seed in 0u64..1000) {
            let g = small_graph();
            let cfg = PipelineConfig { seed, ..sw_config() };
            let rec = Recorder::new();
            let report = MiningPipeline::new(cfg).run_traced(&g, &rec);
            let journal = rec.snapshot();
            let class_sum: u64 = [
                "rules_correct",
                "rules_syntax_error",
                "rules_hallucinated_property",
                "rules_wrong_direction",
                "rules_other_semantic",
            ]
            .iter()
            .map(|c| journal.total(c))
            .sum();
            prop_assert_eq!(class_sum, journal.total("rules_translated"));
            prop_assert_eq!(class_sum, report.rule_count() as u64);
            // And every translated rule carries a lineage record.
            prop_assert_eq!(journal.lineages.len(), report.rule_count());
        }
    }
}
