//! Property-based tests for histogram invariants and the v2 journal
//! round-trip.

use grm_obs::{Counter, Histo, Histogram, Recorder, RunJournal};
use proptest::prelude::*;

/// Records every value of `values` into a fresh histogram.
fn histogram_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Structural equality up to floating-point summation order: exact
/// counts, min/max and percentiles, approximate sum.
fn assert_equivalent(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
        assert_eq!(a.percentile(q), b.percentile(q));
    }
    let scale = a.sum().abs().max(b.sum().abs()).max(1.0);
    assert!((a.sum() - b.sum()).abs() <= 1e-9 * scale);
}

proptest! {
    /// Percentiles never decrease as the quantile grows, and every
    /// percentile lies within the recorded [min, max] range.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in prop::collection::vec(1e-7f64..1e4, 1..80),
    ) {
        let h = histogram_of(&values);
        let quantiles = [0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0];
        let mut prev = f64::NEG_INFINITY;
        for q in quantiles {
            let p = h.percentile(q);
            prop_assert!(p >= prev, "p{} = {} < previous {}", q, p, prev);
            prop_assert!(p >= h.min() && p <= h.max());
            prev = p;
        }
    }

    /// A histogram holding one distinct value reports it exactly at
    /// every quantile — the bucket midpoint is clamped to [min, max].
    #[test]
    fn single_value_is_exact(v in 1e-7f64..1e4, n in 1usize..50, q in 0.0f64..100.0) {
        let h = histogram_of(&vec![v; n]);
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.percentile(q), v);
    }

    /// Merging is associative and commutative, and merging is
    /// equivalent to recording the concatenation directly.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(1e-7f64..1e4, 0..40),
        ys in prop::collection::vec(1e-7f64..1e4, 0..40),
        zs in prop::collection::vec(1e-7f64..1e4, 0..40),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        let mut left = a.clone();
        left.merge(&b);
        let mut left_then_c = left.clone();
        left_then_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_equivalent(&left_then_c, &right);

        let mut ba = b.clone();
        ba.merge(&a);
        assert_equivalent(&left, &ba);

        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        assert_equivalent(&left_then_c, &histogram_of(&all));
    }

    /// A journal carrying Histo records round-trips through JSONL
    /// byte-exactly into an equal journal.
    #[test]
    fn journal_v2_round_trips_with_histograms(
        mine_calls in prop::collection::vec(0.01f64..30.0, 1..20),
        rows in prop::collection::vec(0u32..500, 0..20),
        bump in 0u64..1000,
    ) {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        for &s in &mine_calls {
            mine.scope().observe(Histo::MineCallSeconds, s);
        }
        mine.scope().add(Counter::PromptsIssued, bump);
        mine.finish();
        let eval = root.scope().span("evaluate");
        for &r in &rows {
            eval.scope().observe(Histo::CypherRowsPerQuery, r as f64);
        }
        eval.finish();
        root.finish();

        let journal = rec.snapshot();
        let text = journal.to_jsonl();
        let parsed = RunJournal::from_jsonl(&text).unwrap();
        prop_assert_eq!(&parsed, &journal);
        // And the lossy reader agrees on intact input.
        prop_assert_eq!(&RunJournal::from_jsonl_lossy(&text).unwrap(), &journal);

        let h = parsed.histogram("mine_call_seconds").unwrap();
        prop_assert_eq!(h.count(), mine_calls.len() as u64);
        prop_assert_eq!(parsed.total("prompts_issued"), bump);
    }
}
