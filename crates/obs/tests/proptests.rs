//! Property-based tests for histogram invariants, the v2 journal
//! round-trip, and the v7 timeline reconstruction.

use grm_obs::{
    Counter, CriticalPathReport, Histo, Histogram, Recorder, RunJournal, TimelineReport,
};
use proptest::prelude::*;

/// Records every value of `values` into a fresh histogram.
fn histogram_of(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Structural equality up to floating-point summation order: exact
/// counts, min/max and percentiles, approximate sum.
fn assert_equivalent(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
        assert_eq!(a.percentile(q), b.percentile(q));
    }
    let scale = a.sum().abs().max(b.sum().abs()).max(1.0);
    assert!((a.sum() - b.sum()).abs() <= 1e-9 * scale);
}

proptest! {
    /// Percentiles never decrease as the quantile grows, and every
    /// percentile lies within the recorded [min, max] range.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        values in prop::collection::vec(1e-7f64..1e4, 1..80),
    ) {
        let h = histogram_of(&values);
        let quantiles = [0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0];
        let mut prev = f64::NEG_INFINITY;
        for q in quantiles {
            let p = h.percentile(q);
            prop_assert!(p >= prev, "p{} = {} < previous {}", q, p, prev);
            prop_assert!(p >= h.min() && p <= h.max());
            prev = p;
        }
    }

    /// A histogram holding one distinct value reports it exactly at
    /// every quantile — the bucket midpoint is clamped to [min, max].
    #[test]
    fn single_value_is_exact(v in 1e-7f64..1e4, n in 1usize..50, q in 0.0f64..100.0) {
        let h = histogram_of(&vec![v; n]);
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.percentile(q), v);
    }

    /// Merging is associative and commutative, and merging is
    /// equivalent to recording the concatenation directly.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(1e-7f64..1e4, 0..40),
        ys in prop::collection::vec(1e-7f64..1e4, 0..40),
        zs in prop::collection::vec(1e-7f64..1e4, 0..40),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        let mut left = a.clone();
        left.merge(&b);
        let mut left_then_c = left.clone();
        left_then_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_equivalent(&left_then_c, &right);

        let mut ba = b.clone();
        ba.merge(&a);
        assert_equivalent(&left, &ba);

        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        assert_equivalent(&left_then_c, &histogram_of(&all));
    }

    /// A journal carrying Histo records round-trips through JSONL
    /// byte-exactly into an equal journal.
    #[test]
    fn journal_v2_round_trips_with_histograms(
        mine_calls in prop::collection::vec(0.01f64..30.0, 1..20),
        rows in prop::collection::vec(0u32..500, 0..20),
        bump in 0u64..1000,
    ) {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        for &s in &mine_calls {
            mine.scope().observe(Histo::MineCallSeconds, s);
        }
        mine.scope().add(Counter::PromptsIssued, bump);
        mine.finish();
        let eval = root.scope().span("evaluate");
        for &r in &rows {
            eval.scope().observe(Histo::CypherRowsPerQuery, r as f64);
        }
        eval.finish();
        root.finish();

        let journal = rec.snapshot();
        let text = journal.to_jsonl();
        let parsed = RunJournal::from_jsonl(&text).unwrap();
        prop_assert_eq!(&parsed, &journal);
        // And the lossy reader agrees on intact input.
        prop_assert_eq!(&RunJournal::from_jsonl_lossy(&text).unwrap(), &journal);

        let h = parsed.histogram("mine_call_seconds").unwrap();
        prop_assert_eq!(h.count(), mine_calls.len() as u64);
        prop_assert_eq!(parsed.total("prompts_issued"), bump);
    }

    /// Timeline invariants over pipeline-shaped runs: the critical
    /// path never exceeds the run wall-clock and never falls below
    /// the longest single span on it; every worker's busy fraction is
    /// a fraction; and summed worker busy time never exceeds
    /// wall-clock × worker count.
    #[test]
    fn timeline_invariants_hold_for_pipeline_shapes(
        busy in prop::collection::vec(0.01f64..50.0, 1..8),
        translate_s in 0.0f64..20.0,
        evaluate_s in 0.0f64..20.0,
    ) {
        // Mirror the pipeline's stamping: workers at the sim origin,
        // the mine span carrying the fleet wall-clock, post-mine
        // stages offset sequentially.
        let mine_wall = busy.iter().cloned().fold(0.0, f64::max);
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        for (w, &b) in busy.iter().enumerate() {
            let worker = mine.scope().span_at(&format!("worker-{w}"), 0.0);
            worker.scope().add_sim_seconds(b);
            worker.finish();
        }
        mine.scope().add_sim_seconds(mine_wall);
        mine.finish();
        let translate = root.scope().span_at("translate", mine_wall);
        translate.scope().add_sim_seconds(translate_s);
        translate.finish();
        let evaluate = root.scope().span_at("evaluate", mine_wall + translate_s);
        evaluate.scope().add_sim_seconds(evaluate_s);
        evaluate.finish();
        root.finish();
        let journal = rec.snapshot();

        let report = TimelineReport::from_journal(&journal);
        prop_assert_eq!(report.workers.len(), busy.len());
        let mut busy_sum = 0.0;
        for lane in &report.workers {
            prop_assert!((0.0..=1.0).contains(&lane.busy_fraction), "{:?}", lane);
            prop_assert!(lane.busy_seconds <= report.wall_seconds + 1e-9);
            busy_sum += lane.busy_seconds;
        }
        prop_assert!(
            busy_sum <= report.wall_seconds * report.workers.len() as f64 + 1e-9,
            "sum {} vs wall {} x {}", busy_sum, report.wall_seconds, report.workers.len()
        );
        // Compute is conserved: lanes + post-mine stages, and the
        // speedup never exceeds the worker count.
        let expected: f64 = busy.iter().sum::<f64>() + translate_s + evaluate_s;
        prop_assert!((report.compute_seconds - expected).abs() < 1e-9);

        let critical = CriticalPathReport::from_journal(&journal);
        let top = &critical.chains[0];
        prop_assert!(top.seconds <= report.wall_seconds + 1e-9,
            "critical path {} exceeds wall {}", top.seconds, report.wall_seconds);
        let max_step = top.steps.iter().map(|s| s.seconds).fold(0.0, f64::max);
        prop_assert!(top.seconds >= max_step - 1e-9);
        prop_assert!((top.end_seconds - report.wall_seconds).abs() <= 1e-9);
        // Steps are back-to-back and chronological.
        for pair in top.steps.windows(2) {
            prop_assert!(
                (pair[0].start_seconds + pair[0].seconds - pair[1].start_seconds).abs() <= 1e-9
            );
        }
    }
}
