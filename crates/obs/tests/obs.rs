//! grm-obs behaviour: span nesting, counter attribution, histogram
//! observations, journal round-trips (strict and lossy), and the
//! disabled-recorder fast path.

use std::thread;

use grm_obs::{
    BoundaryRecord, Counter, FootprintRow, Gauge, Histo, LineageRecord, MemRecord, OriginRef,
    PlanOpRecord, PlanRecord, Recorder, RunJournal, Scope, SlowQueryPolicy, TelemetryEvent,
};

#[test]
fn span_nesting_is_recorded() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let encode = root.scope().span("encode");
    encode.finish();
    let mine = root.scope().span("mine");
    let worker = mine.scope().span("worker-0");
    worker.finish();
    mine.finish();
    root.finish();

    let journal = rec.snapshot();
    let names: Vec<&str> = journal.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["pipeline", "encode", "mine", "worker-0"]);

    let root = journal.span("pipeline").unwrap();
    assert_eq!(root.parent, None);
    let children: Vec<&str> = journal.children(root).iter().map(|s| s.name.as_str()).collect();
    assert_eq!(children, ["encode", "mine"]);
    let mine = journal.span("mine").unwrap();
    assert_eq!(journal.children(mine)[0].name, "worker-0");
}

#[test]
fn counters_attribute_to_span_and_totals() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let encode = root.scope().span("encode");
    encode.scope().add(Counter::NodesEncoded, 10);
    encode.scope().add(Counter::NodesEncoded, 5);
    encode.finish();
    root.scope().add(Counter::NodesEncoded, 1);
    root.finish();

    assert_eq!(rec.total(Counter::NodesEncoded), 16);
    let journal = rec.snapshot();
    assert_eq!(journal.span("encode").unwrap().counter("nodes_encoded"), 15);
    assert_eq!(journal.span("pipeline").unwrap().counter("nodes_encoded"), 1);
    assert_eq!(journal.total("nodes_encoded"), 16);
}

#[test]
fn worker_span_counters_sum_to_totals() {
    // The attribution contract the parallel miner relies on: bumps
    // from concurrent worker threads land on their own spans, and the
    // run total is exactly their sum.
    let rec = Recorder::new();
    let mine = rec.root_scope().span("mine");
    let spans: Vec<_> = (0..4).map(|i| mine.scope().span(&format!("worker-{i}"))).collect();
    thread::scope(|s| {
        for (i, span) in spans.iter().enumerate() {
            let scope = span.scope();
            s.spawn(move || {
                for _ in 0..100 {
                    scope.add(Counter::RulesMined, (i + 1) as u64);
                }
            });
        }
    });
    for span in spans {
        span.finish();
    }
    mine.finish();

    let journal = rec.snapshot();
    let per_span: u64 = journal
        .spans
        .iter()
        .filter(|s| s.name.starts_with("worker-"))
        .map(|s| s.counter("rules_mined"))
        .sum();
    assert_eq!(per_span, 100 * (1 + 2 + 3 + 4));
    assert_eq!(journal.total("rules_mined"), per_span);
    assert_eq!(journal.span("mine").unwrap().counter("rules_mined"), 0);
}

#[test]
fn sim_seconds_attribute_per_span() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let mine = root.scope().span("mine");
    let worker = mine.scope().span("worker-0");
    worker.scope().add_sim_seconds(2.5);
    worker.finish();
    mine.scope().add_sim_seconds(1.0);
    mine.finish();
    root.finish();

    let journal = rec.snapshot();
    assert_eq!(journal.span("worker-0").unwrap().sim_seconds, 2.5);
    assert_eq!(journal.span("mine").unwrap().sim_seconds, 1.0);
    // Subtree roll-up is available as a helper…
    assert_eq!(journal.subtree_sim_seconds(journal.span("mine").unwrap()), 3.5);
    // …but stage rows report the stage span's own attribution.
    let timings = journal.stage_timings();
    assert_eq!(timings.len(), 1);
    assert_eq!(timings[0].stage, "mine");
    assert_eq!(timings[0].sim_seconds, 1.0);
}

#[test]
fn gauges_record_last_value() {
    let rec = Recorder::new();
    let span = rec.root_scope().span("retrieve");
    span.scope().gauge(Gauge::RagCoverage, 0.25);
    span.scope().gauge(Gauge::RagCoverage, 0.75);
    span.finish();
    let journal = rec.snapshot();
    assert_eq!(journal.gauge("rag_coverage"), Some(0.75));
    assert_eq!(journal.span("retrieve").unwrap().gauges, vec![("rag_coverage".into(), 0.75)]);
}

#[test]
fn journal_jsonl_round_trip() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let encode = root.scope().span("encode");
    encode.scope().add(Counter::NodesEncoded, 7);
    encode.scope().add(Counter::TokensEmitted, 1234);
    encode.finish();
    root.scope().gauge(Gauge::RagCoverage, 0.5);
    root.scope().add_sim_seconds(9.25);
    root.finish();

    let journal = rec.snapshot();
    let text = journal.to_jsonl();
    // One meta line + one line per span + one totals line.
    assert_eq!(text.lines().count(), 2 + journal.spans.len());
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed, journal);
}

#[test]
fn from_jsonl_rejects_garbage_and_bad_versions() {
    assert!(RunJournal::from_jsonl("not json").is_err());
    let bad_version = r#"{"Meta": {"version": 99, "spans": 0}}"#;
    assert!(RunJournal::from_jsonl(bad_version).unwrap_err().contains("version"));
}

#[test]
fn histograms_attribute_to_span_and_run_totals() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let mine = root.scope().span("mine");
    for s in [0.5, 1.0, 2.0] {
        mine.scope().observe(Histo::MineCallSeconds, s);
    }
    mine.finish();
    let eval = root.scope().span("evaluate");
    eval.scope().observe(Histo::MineCallSeconds, 4.0);
    eval.finish();
    root.finish();

    let journal = rec.snapshot();
    // Run-wide histogram merges all spans' observations.
    let total = journal.histogram("mine_call_seconds").unwrap();
    assert_eq!(total.count(), 4);
    assert_eq!(total.min(), 0.5);
    assert_eq!(total.max(), 4.0);
    // Per-span rows carry only their own observations.
    let mine_id = journal.span("mine").unwrap().id;
    let per_span = journal.span_histograms(mine_id);
    assert_eq!(per_span.len(), 1);
    assert_eq!(per_span[0].name, "mine_call_seconds");
    assert_eq!(per_span[0].histogram.count(), 3);
    assert_eq!(per_span[0].histogram.max(), 2.0);
}

#[test]
fn journal_v2_jsonl_includes_histo_lines() {
    let rec = Recorder::new();
    let span = rec.root_scope().span("mine");
    span.scope().observe(Histo::MineCallSeconds, 1.25);
    span.scope().observe(Histo::WindowTokens, 800.0);
    span.finish();

    let journal = rec.snapshot();
    let text = journal.to_jsonl();
    // Meta + 1 span + (2 per-span + 2 run-wide) histo lines + totals.
    assert_eq!(text.lines().count(), 2 + 1 + 4);
    assert_eq!(text.lines().filter(|l| l.starts_with(r#"{"Histo""#)).count(), 4);
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed, journal);
}

#[test]
fn lossy_reader_tolerates_truncated_final_line() {
    let rec = Recorder::new();
    let span = rec.root_scope().span("mine");
    span.scope().observe(Histo::MineCallSeconds, 1.0);
    span.scope().add(Counter::PromptsIssued, 3);
    span.finish();
    let text = rec.snapshot().to_jsonl();

    // Chop the journal mid-way through its last line, as a crashed
    // writer would.
    let cut = text.trim_end().len() - 10;
    let truncated = &text[..cut];
    assert!(RunJournal::from_jsonl(truncated).is_err());
    let lossy = RunJournal::from_jsonl_lossy(truncated).unwrap();
    assert_eq!(lossy.spans.len(), 1);
    assert_eq!(lossy.histogram("mine_call_seconds").unwrap().count(), 1);
}

#[test]
fn unknown_record_variants_are_skipped() {
    let rec = Recorder::new();
    rec.root_scope().span("mine").finish();
    let mut text = rec.snapshot().to_jsonl();
    // A future journal version may interleave record kinds this
    // reader has never heard of; both readers skip them.
    text.push_str("{\"Annotation\": {\"note\": \"from the future\"}}\n");
    let strict = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(strict.spans.len(), 1);
    assert_eq!(RunJournal::from_jsonl_lossy(&text).unwrap(), strict);
}

/// A plan record with two operators, absorbed in the given order.
fn plan_fixture(scope: &str, order: &[(&str, &str, u64)]) -> PlanRecord {
    let mut plan = PlanRecord::new(scope);
    let ops = order
        .iter()
        .map(|(path, op, hits)| PlanOpRecord {
            path: path.to_string(),
            op: op.to_string(),
            detail: "(n:Person)".into(),
            calls: 1,
            rows_in: *hits,
            rows: hits / 2,
            db_nodes: *hits,
            db_props: 2 * hits,
            self_us: 30,
            sim_us: 10,
            ..PlanOpRecord::default()
        })
        .collect();
    plan.absorb(ops, 5, 250, 100);
    plan
}

/// A recorded run whose `evaluate` span carries two plan records.
fn journal_with_plans() -> RunJournal {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let eval = root.scope().span("evaluate");
    // Deliberately unsorted op paths and reverse-ordered scopes: the
    // serialised form must not depend on either.
    eval.scope().plan(plan_fixture(
        "rule-1",
        &[("Root/Scan", "NodeByLabelScan", 20), ("Root", "ProduceResults", 0)],
    ));
    eval.scope().plan(plan_fixture(
        "rule-0",
        &[("Root", "ProduceResults", 0), ("Root/Scan", "NodeByLabelScan", 10)],
    ));
    eval.finish();
    root.finish();
    rec.snapshot()
}

#[test]
fn journal_v3_plan_lines_round_trip_deterministically() {
    let journal = journal_with_plans();
    let text = journal.to_jsonl();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let plan_lines: Vec<&str> = text.lines().filter(|l| l.starts_with(r#"{"Plan""#)).collect();
    assert_eq!(plan_lines.len(), 2);
    // Plan lines come scope-sorted, operators path-sorted within.
    assert!(plan_lines[0].contains("rule-0"));
    assert!(plan_lines[1].contains("rule-1"));
    let root_pos = plan_lines[0].find(r#""path":"Root""#).unwrap();
    let scan_pos = plan_lines[0].find(r#""path":"Root/Scan""#).unwrap();
    assert!(root_pos < scan_pos, "operators must serialise name-sorted");

    // Round trip: parse → re-serialise is byte-identical, and two
    // separately produced journals serialise to the same bytes
    // (modulo timing fields, which to_jsonl of the *parsed* journal
    // preserves exactly).
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed.plans.len(), 2);
    assert_eq!(parsed.plan("rule-0").unwrap().db_hits(), 10 + 20);
    assert_eq!(parsed.to_jsonl(), text);
}

#[test]
fn v2_readers_skip_v3_plan_records() {
    // A v2 reader has no `Plan` variant: its serde parse fails on a
    // Plan line and falls through to the unknown-record-key skip —
    // "Plan" is not in v2's known-key list, exactly like the renamed
    // key below is not in ours. Emulate that reader by downgrading
    // the Meta version and renaming the Plan key to one no reader
    // knows.
    let text = journal_with_plans()
        .to_jsonl()
        .replace(r#""version":8"#, r#""version":2"#)
        .replace(r#"{"Plan""#, r#"{"PlanV9""#);
    let strict = RunJournal::from_jsonl(&text).expect("v2 strict reader must not error");
    assert_eq!(strict.spans.len(), 2, "spans survive the skip");
    assert!(strict.plans.is_empty(), "plan-shaped lines are skipped, not parsed");
    let lossy = RunJournal::from_jsonl_lossy(&text).expect("v2 lossy reader must not error");
    assert_eq!(lossy, strict);

    // And a genuine v2 journal (no Plan lines at all) still parses
    // strict under the current reader.
    let rec = Recorder::new();
    rec.root_scope().span("mine").finish();
    let v2 = rec.snapshot().to_jsonl().replace(r#""version":8"#, r#""version":2"#);
    assert!(RunJournal::from_jsonl(&v2).is_ok());
}

/// A recorded run with lineage for two rules (one corrected) and one
/// window-boundary breakage, origins deliberately recorded unsorted.
fn journal_with_lineage() -> RunJournal {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let encode = root.scope().span("encode");
    encode.scope().boundary(BoundaryRecord {
        span: None,
        node: "n7".into(),
        first_window: 1,
        last_window: 2,
    });
    encode.finish();
    let eval = root.scope().span("evaluate");
    let origin =
        |i: u64| OriginRef { id: format!("window-{i}"), start_token: i * 800, token_len: 1000 };
    // Reverse index order and unsorted origins: the serialised form
    // must not depend on either.
    eval.scope().lineage(LineageRecord {
        index: 1,
        rule: "rule-1".into(),
        nl: "every Squad has a coach".into(),
        strategy: "sliding-window".into(),
        origins: vec![origin(2)],
        frequency: 1,
        translation_attempts: 2,
        error_class: "syntax_error".into(),
        final_class: "correct".into(),
        corrected: true,
        support: None,
        coverage_pct: None,
        confidence_pct: None,
        ..LineageRecord::default()
    });
    eval.scope().lineage(LineageRecord {
        index: 0,
        rule: "rule-0".into(),
        nl: "every Person has a name".into(),
        strategy: "sliding-window".into(),
        origins: vec![origin(1), origin(0), origin(1)],
        frequency: 3,
        translation_attempts: 1,
        error_class: "correct".into(),
        final_class: "correct".into(),
        corrected: false,
        support: Some(42),
        coverage_pct: Some(100.0),
        confidence_pct: Some(97.5),
        ..LineageRecord::default()
    });
    eval.finish();
    root.finish();
    rec.snapshot()
}

#[test]
fn journal_v4_lineage_lines_round_trip_deterministically() {
    let journal = journal_with_lineage();
    let text = journal.to_jsonl();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let lineage_lines: Vec<&str> =
        text.lines().filter(|l| l.starts_with(r#"{"Lineage""#)).collect();
    assert_eq!(lineage_lines.len(), 2);
    // Lineage lines come index-sorted, origins (start, id)-sorted and
    // deduped within.
    assert!(lineage_lines[0].contains("rule-0"));
    assert!(lineage_lines[1].contains("rule-1"));
    let w0 = lineage_lines[0].find("window-0").unwrap();
    let w1 = lineage_lines[0].find("window-1").unwrap();
    assert!(w0 < w1, "origins must serialise start-sorted");
    assert_eq!(lineage_lines[0].matches("window-1").count(), 1, "duplicate origins dedup");
    assert_eq!(text.lines().filter(|l| l.starts_with(r#"{"Boundary""#)).count(), 1);
    // Lineage sits between the plan/histo block and the totals line.
    let boundary_pos = text.find(r#"{"Boundary""#).unwrap();
    let totals_pos = text.find(r#"{"Totals""#).unwrap();
    assert!(boundary_pos < totals_pos);

    // Round trip: parse → re-serialise is byte-identical.
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed.lineages.len(), 2);
    assert!(parsed.has_lineage());
    assert_eq!(parsed.lineage("rule-0").unwrap().frequency, 3);
    assert_eq!(parsed.boundaries.len(), 1);
    assert_eq!(parsed.to_jsonl(), text);
    // The summary surfaces the lineage digest.
    assert!(parsed.summary().contains("2 rules attributed, 1 window-boundary breakages"));
}

#[test]
fn v3_readers_skip_v4_lineage_records() {
    // A v3 reader has no `Lineage`/`Boundary` variants: its serde
    // parse fails on those lines and falls through to the unknown-
    // record-key skip. Emulate that reader by downgrading the Meta
    // version and renaming both keys to ones no reader knows.
    let text = journal_with_lineage()
        .to_jsonl()
        .replace(r#""version":8"#, r#""version":3"#)
        .replace(r#"{"Lineage""#, r#"{"LineageV9""#)
        .replace(r#"{"Boundary""#, r#"{"BoundaryV9""#);
    let strict = RunJournal::from_jsonl(&text).expect("v3 strict reader must not error");
    assert_eq!(strict.spans.len(), 3, "spans survive the skip");
    assert!(strict.lineages.is_empty(), "lineage-shaped lines are skipped, not parsed");
    assert!(strict.boundaries.is_empty());
    let lossy = RunJournal::from_jsonl_lossy(&text).expect("v3 lossy reader must not error");
    assert_eq!(lossy, strict);

    // And a genuine v3 journal (no Lineage lines at all) still parses
    // strict under the v4 reader.
    let v3 = journal_with_plans().to_jsonl().replace(r#""version":8"#, r#""version":3"#);
    assert!(RunJournal::from_jsonl(&v3).is_ok());
}

#[test]
fn lossy_reader_tolerates_truncated_lineage_tail() {
    let text = journal_with_lineage().to_jsonl();
    // Chop the journal mid-way through its last Lineage line, as a
    // crashed writer would — everything after (Boundary, Totals) is
    // gone too.
    let last_lineage = text.rfind(r#"{"Lineage""#).unwrap();
    let line_end = text[last_lineage..].find('\n').unwrap() + last_lineage;
    let truncated = &text[..line_end - 10];
    assert!(RunJournal::from_jsonl(truncated).is_err());
    let lossy = RunJournal::from_jsonl_lossy(truncated).unwrap();
    assert_eq!(lossy.spans.len(), 3);
    assert_eq!(lossy.lineages.len(), 1, "only the intact Lineage line survives");
    assert_eq!(lossy.lineages[0].rule, "rule-0");
}

/// A recorded run whose `encode` span carries footprint `Mem` records
/// for two components, recorded in reverse name order.
fn journal_with_mem() -> RunJournal {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let encode = root.scope().span("encode");
    // Reverse component order: the serialised form must not depend on
    // recording order.
    encode.scope().mem(MemRecord::footprint_of(
        "vecstore",
        vec![FootprintRow { name: "embeddings".into(), count: 3, bytes: 3072 }],
    ));
    encode.scope().mem(MemRecord::footprint_of(
        "graph",
        vec![
            FootprintRow { name: "nodes".into(), count: 10, bytes: 640 },
            FootprintRow { name: "edges".into(), count: 4, bytes: 320 },
        ],
    ));
    encode.finish();
    root.finish();
    rec.snapshot()
}

#[test]
fn journal_v6_mem_lines_round_trip_deterministically() {
    let journal = journal_with_mem();
    assert!(journal.has_mem());
    let text = journal.to_jsonl();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let mem_lines: Vec<&str> = text.lines().filter(|l| l.starts_with(r#"{"Mem""#)).collect();
    assert_eq!(mem_lines.len(), 2);
    // Mem lines come (span, kind, component)-sorted regardless of
    // recording order.
    assert!(mem_lines[0].contains("graph"));
    assert!(mem_lines[1].contains("vecstore"));
    // Mem sits before the totals line.
    let mem_pos = text.find(r#"{"Mem""#).unwrap();
    let totals_pos = text.find(r#"{"Totals""#).unwrap();
    assert!(mem_pos < totals_pos);

    // Round trip: parse → re-serialise is byte-identical.
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed.mems.len(), 2);
    assert!(parsed.has_mem());
    assert_eq!(parsed.to_jsonl(), text);
    // The summary surfaces the memory digest.
    assert!(parsed.summary().contains("2 mem records"), "{}", parsed.summary());
    assert!(parsed.summary().contains("footprint 4032 bytes"), "{}", parsed.summary());
}

#[test]
fn v5_readers_skip_v6_mem_records() {
    // A v5 reader has no `Mem` variant: its serde parse fails on a
    // Mem line and falls through to the unknown-record-key skip.
    // Emulate that reader by downgrading the Meta version and
    // renaming the key to one no reader knows.
    let text = journal_with_mem()
        .to_jsonl()
        .replace(r#""version":8"#, r#""version":5"#)
        .replace(r#"{"Mem""#, r#"{"MemV9""#);
    let strict = RunJournal::from_jsonl(&text).expect("v5 strict reader must not error");
    assert_eq!(strict.spans.len(), 2, "spans survive the skip");
    assert!(strict.mems.is_empty(), "mem-shaped lines are skipped, not parsed");
    let lossy = RunJournal::from_jsonl_lossy(&text).expect("v5 lossy reader must not error");
    assert_eq!(lossy, strict);

    // And a genuine v5 journal (no Mem lines at all) still parses
    // strict under the v6 reader.
    let v5 = journal_with_lineage().to_jsonl().replace(r#""version":8"#, r#""version":5"#);
    assert!(RunJournal::from_jsonl(&v5).is_ok());
}

#[test]
fn lossy_reader_tolerates_truncated_mem_tail() {
    let text = journal_with_mem().to_jsonl();
    // Chop the journal mid-way through its last Mem line, as a
    // crashed writer would — the Totals line after it is gone too.
    let last_mem = text.rfind(r#"{"Mem""#).unwrap();
    let line_end = text[last_mem..].find('\n').unwrap() + last_mem;
    let truncated = &text[..line_end - 10];
    assert!(RunJournal::from_jsonl(truncated).is_err());
    let lossy = RunJournal::from_jsonl_lossy(truncated).unwrap();
    assert_eq!(lossy.spans.len(), 2);
    assert_eq!(lossy.mems.len(), 1, "only the intact Mem line survives");
    assert_eq!(lossy.mems[0].component, "graph");
}

/// A recorded run with v7 start offsets: the worker at the sim
/// origin, post-mine stages offset by the mine wall-clock.
fn journal_with_timeline() -> RunJournal {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let mine = root.scope().span("mine");
    let worker = mine.scope().span_at("worker-0", 0.0);
    worker.scope().add_sim_seconds(6.0);
    worker.finish();
    mine.scope().add_sim_seconds(6.0);
    mine.finish();
    let translate = root.scope().span_at("translate", 6.0);
    translate.scope().add_sim_seconds(2.0);
    translate.finish();
    let evaluate = root.scope().span_at("evaluate", 8.0);
    evaluate.scope().add_sim_seconds(3.0);
    evaluate.finish();
    root.finish();
    rec.snapshot()
}

#[test]
fn journal_v7_span_lines_carry_start_offsets() {
    let journal = journal_with_timeline();
    assert!(journal.has_timeline());
    let text = journal.to_jsonl();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    assert!(text
        .lines()
        .any(|l| l.starts_with(r#"{"Span""#) && l.contains(r#""sim_start_seconds":"#)));
    // Round trip: parse → re-serialise is byte-identical, offsets
    // included.
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed, journal);
    assert!(parsed.has_timeline());
    assert_eq!(parsed.to_jsonl(), text);
}

#[test]
fn v7_readers_default_missing_start_offsets_to_zero() {
    // A genuine v6 journal has Span lines without the field at all.
    // Emulate one by stripping the field and downgrading the Meta
    // version; the v7 reader must parse it with offsets defaulting
    // to 0 (and the timeline gate reporting "no timeline").
    let text = journal_with_timeline().to_jsonl();
    let v6: String = text
        .lines()
        .map(|l| match l.find(r#""sim_start_seconds":"#) {
            Some(i) => {
                let comma = l[i..].find(',').expect("the field is never last");
                format!("{}{}\n", &l[..i], &l[i + comma + 1..])
            }
            None => format!("{l}\n"),
        })
        .collect();
    let v6 = v6.replace(r#""version":8"#, r#""version":6"#);
    let parsed = RunJournal::from_jsonl(&v6).expect("v6 journals must still parse");
    assert_eq!(parsed.spans.len(), 5);
    assert!(parsed.spans.iter().all(|s| s.sim_start_seconds == 0.0));
    assert!(!parsed.has_timeline());
    assert_eq!(RunJournal::from_jsonl_lossy(&v6).unwrap(), parsed);
}

#[test]
fn v6_readers_skip_v7_start_offsets() {
    // A v6 reader's Span struct has no `sim_start_seconds` field; its
    // parser ignores unknown map keys, exactly as ours does. Emulate
    // that reader by renaming the field to one no reader knows and
    // downgrading the Meta version — the spans must still parse.
    let text = journal_with_timeline()
        .to_jsonl()
        .replace(r#""version":8"#, r#""version":6"#)
        .replace(r#""sim_start_seconds""#, r#""sim_start_offset_v9""#);
    let strict = RunJournal::from_jsonl(&text).expect("v6 strict reader must not error");
    assert_eq!(strict.spans.len(), 5, "spans survive the unknown field");
    assert!(strict.spans.iter().all(|s| s.sim_start_seconds == 0.0));
    let lossy = RunJournal::from_jsonl_lossy(&text).expect("v6 lossy reader must not error");
    assert_eq!(lossy, strict);
}

#[test]
fn lossy_reader_tolerates_truncated_timeline_tail() {
    let text = journal_with_timeline().to_jsonl();
    // Chop the journal mid-way through its last Span line (the
    // `evaluate` stage), as a crashed writer would — every record
    // after it is gone too.
    let last_span = text.rfind(r#"{"Span""#).unwrap();
    let line_end = text[last_span..].find('\n').unwrap() + last_span;
    let truncated = &text[..line_end - 10];
    assert!(RunJournal::from_jsonl(truncated).is_err());
    let lossy = RunJournal::from_jsonl_lossy(truncated).unwrap();
    assert_eq!(lossy.spans.len(), 4, "only intact Span lines survive");
    assert!(lossy.has_timeline(), "offsets on intact lines survive the cut");
}

#[test]
fn slow_query_policy_flags_records_and_counts() {
    let rec = Recorder::new();
    rec.set_slow_query_policy(SlowQueryPolicy { max_db_hits: Some(40), ..Default::default() });
    let root = rec.root_scope().span("pipeline");
    let eval = root.scope().span("evaluate");
    eval.scope().plan(plan_fixture("rule-cheap", &[("Root", "ProduceResults", 5)]));
    eval.scope().plan(plan_fixture("rule-dear", &[("Root/Scan", "NodeByLabelScan", 50)]));
    eval.finish();
    root.finish();

    assert_eq!(rec.total(Counter::CypherSlowQueries), 1);
    assert_eq!(rec.slow_queries().len(), 1);
    assert_eq!(rec.slow_queries()[0].scope, "rule-dear");
    let journal = rec.snapshot();
    assert!(!journal.plan("rule-cheap").unwrap().slow);
    assert!(journal.plan("rule-dear").unwrap().slow);
    // The plan is attached to the evaluate span, and the summary
    // surfaces the offender.
    let eval_id = journal.span("evaluate").unwrap().id;
    assert_eq!(journal.plan("rule-dear").unwrap().span, Some(eval_id));
    let summary = journal.summary();
    assert!(summary.contains("SLOW rule-dear"), "{summary}");
    assert!(summary.contains("1 slow"), "{summary}");
    // Stage attribution rolls both records up to `evaluate`.
    assert_eq!(journal.stage_db_hits(), vec![("evaluate".to_string(), 15 + 150)]);
}

#[test]
fn jsonl_totals_are_sorted_by_name() {
    let rec = Recorder::new();
    let span = rec.root_scope().span("mine");
    // Bump counters in non-alphabetical order.
    span.scope().add(Counter::RulesMined, 2);
    span.scope().add(Counter::PromptsIssued, 5);
    span.scope().gauge(Gauge::RagCoverage, 0.5);
    span.finish();
    let text = rec.snapshot().to_jsonl();
    let totals_line = text.lines().find(|l| l.starts_with(r#"{"Totals""#)).unwrap();
    let prompts = totals_line.find("prompts_issued").unwrap();
    let rules = totals_line.find("rules_mined").unwrap();
    assert!(prompts < rules, "totals must be name-sorted for deterministic diffs");

    let summary = rec.snapshot().summary();
    let prompts = summary.find("prompts_issued").unwrap();
    let rules = summary.find("rules_mined").unwrap();
    assert!(prompts < rules);
}

#[test]
fn disabled_recorder_is_a_no_op() {
    let rec = Recorder::disabled();
    assert!(!rec.is_enabled());
    let span = rec.root_scope().span("pipeline");
    span.scope().add(Counter::RulesMined, 3);
    span.scope().gauge(Gauge::RagCoverage, 1.0);
    span.scope().add_sim_seconds(5.0);
    span.scope().plan(PlanRecord::new("rule-0"));
    span.scope().lineage(LineageRecord::default());
    span.scope().boundary(BoundaryRecord::default());
    span.finish();
    assert_eq!(rec.total(Counter::RulesMined), 0);
    let journal = rec.snapshot();
    assert!(journal.spans.is_empty());
    assert!(journal.totals.is_empty());
    assert!(!Scope::disabled().span("x").scope().is_enabled());
}

#[test]
fn unfinished_spans_close_at_snapshot() {
    let rec = Recorder::new();
    let _root = rec.root_scope().span("pipeline");
    let journal = rec.snapshot();
    assert_eq!(journal.spans.len(), 1);
    assert!(journal.spans[0].real_ms >= 0.0);
}

#[test]
fn summary_mentions_spans_and_counters() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    root.scope().add(Counter::PromptsIssued, 12);
    root.finish();
    let text = rec.snapshot().summary();
    assert!(text.contains("pipeline"));
    assert!(text.contains("prompts_issued"));
    assert!(text.contains("12"));
}

/// A journal carrying v8 `Event` records, as an `--events` stream
/// file would: a recorded run's journal with the bus events of that
/// run stitched in (the pipeline's own `--trace` journal never
/// carries them — they stream to their own file).
fn journal_with_events() -> RunJournal {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    root.scope().add(Counter::PromptsIssued, 3);
    root.finish();
    let mut journal = rec.snapshot();
    let event = |seq: u64, kind: &str, name: &str, value: f64| TelemetryEvent {
        seq,
        kind: kind.to_owned(),
        span: Some(0),
        name: name.to_owned(),
        detail: String::new(),
        value,
    };
    journal.events = vec![
        event(0, TelemetryEvent::SPAN_OPEN, "pipeline", 0.0),
        event(1, TelemetryEvent::COUNTER, "prompts_issued", 3.0),
        event(2, TelemetryEvent::SPAN_CLOSE, "pipeline", 0.01),
    ];
    journal
}

#[test]
fn journal_v8_event_lines_round_trip_deterministically() {
    let journal = journal_with_events();
    assert!(journal.has_events());
    let text = journal.to_jsonl();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let event_lines: Vec<&str> = text.lines().filter(|l| l.starts_with(r#"{"Event""#)).collect();
    assert_eq!(event_lines.len(), 3);
    // Event lines come seq-sorted, after any Mem lines and before the
    // totals trailer.
    assert!(event_lines[0].contains("span_open"));
    assert!(event_lines[2].contains("span_close"));
    let event_pos = text.find(r#"{"Event""#).unwrap();
    let totals_pos = text.find(r#"{"Totals""#).unwrap();
    assert!(event_pos < totals_pos);

    // Round trip: parse → re-serialise is byte-identical.
    let parsed = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(parsed.events.len(), 3);
    assert!(parsed.has_events());
    assert_eq!(parsed.to_jsonl(), text);
    // The summary surfaces the stream.
    assert!(parsed.summary().contains("telemetry events: 3 streamed"), "{}", parsed.summary());
}

#[test]
fn v7_readers_skip_v8_event_records() {
    // A v7 reader has no `Event` variant: its serde parse fails on an
    // Event line and falls through to the unknown-record-key skip.
    // Emulate that reader by downgrading the Meta version and
    // renaming the key to one no reader knows.
    let text = journal_with_events()
        .to_jsonl()
        .replace(r#""version":8"#, r#""version":7"#)
        .replace(r#"{"Event""#, r#"{"EventV9""#);
    let strict = RunJournal::from_jsonl(&text).expect("v7 strict reader must not error");
    assert_eq!(strict.spans.len(), 1, "spans survive the skip");
    assert!(strict.events.is_empty(), "event-shaped lines are skipped, not parsed");
    assert_eq!(strict.unknown_lines, 3, "the skipped lines stay visible as a count");
    let lossy = RunJournal::from_jsonl_lossy(&text).expect("v7 lossy reader must not error");
    assert_eq!(lossy, strict);
}

#[test]
fn v8_reader_parses_genuine_v7_journal() {
    // A genuine v7 journal (no Event lines at all) still parses
    // strict under the v8 reader, with an empty event stream.
    let v7 = journal_with_mem().to_jsonl().replace(r#""version":8"#, r#""version":7"#);
    let parsed = RunJournal::from_jsonl(&v7).expect("v7 journals must still parse");
    assert!(!parsed.has_events());
    assert_eq!(parsed.mems.len(), 2);
}

#[test]
fn lossy_reader_tolerates_truncated_event_tail() {
    let text = journal_with_events().to_jsonl();
    // Chop the journal mid-way through its last Event line, as a
    // crashed stream writer would — the Totals line after it is gone
    // too.
    let last_event = text.rfind(r#"{"Event""#).unwrap();
    let line_end = text[last_event..].find('\n').unwrap() + last_event;
    let truncated = &text[..line_end - 10];
    assert!(RunJournal::from_jsonl(truncated).is_err());
    let lossy = RunJournal::from_jsonl_lossy(truncated).unwrap();
    assert_eq!(lossy.events.len(), 2, "only intact Event lines survive");
    assert_eq!(lossy.corrupt_lines, 1);
    assert_eq!(lossy.events[1].kind, "counter");
}

#[test]
fn lossy_reader_skips_unknown_kinds_between_mem_and_totals() {
    // Future record kinds may land exactly where Event lines live —
    // between the Mem block and the Totals trailer. Both readers must
    // skip them and keep everything around them.
    let text = journal_with_mem().to_jsonl();
    let totals_pos = text.find(r#"{"Totals""#).unwrap();
    let interleaved = format!(
        "{}{}\n{}\n{}",
        &text[..totals_pos],
        r#"{"Annotation":{"note":"future kind"}}"#,
        r#"{"Watermark":{"seq":99}}"#,
        &text[totals_pos..]
    );
    let strict = RunJournal::from_jsonl(&interleaved).expect("unknown kinds are not errors");
    assert_eq!(strict.unknown_lines, 2);
    assert_eq!(strict.mems.len(), 2, "Mem lines before the insertions survive");
    // Everything around the insertions parses exactly as it would
    // without them.
    let clean = RunJournal::from_jsonl(&text).unwrap();
    assert_eq!(strict.spans, clean.spans);
    assert_eq!(strict.totals, clean.totals, "the Totals trailer after them survives");
    let lossy = RunJournal::from_jsonl_lossy(&interleaved).unwrap();
    assert_eq!(lossy, strict);
}
