//! Allocation-tracking behaviour with [`TrackingAlloc`] installed.
//!
//! This test binary is the only one in the crate that installs the
//! tracking allocator — integration tests each get their own process,
//! so the `#[global_allocator]` here cannot leak into other binaries'
//! all-zero-counter assumptions.

use grm_obs::{MemRecord, Recorder, RunJournal, TrackingAlloc};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Spans of a traced run under the tracking allocator carry `Mem`
/// allocation records, and the run-wide record reports a peak.
#[test]
fn traced_run_journals_span_and_run_mem_records() {
    let rec = Recorder::new();
    let root = rec.root_scope().span("pipeline");
    let mine = root.scope().span("mine");
    // Force heap traffic the span delta must observe.
    let hog: Vec<u8> = vec![7; 1 << 16];
    std::hint::black_box(&hog);
    drop(hog);
    mine.finish();
    root.finish();

    let journal = rec.snapshot();
    assert!(journal.has_mem());
    let span_recs: Vec<&MemRecord> = journal.mems.iter().filter(|m| m.kind == "span").collect();
    assert!(!span_recs.is_empty(), "the allocating span must carry a Mem record");
    let mine_id = journal.span("mine").unwrap().id;
    let mine_mem = span_recs.iter().find(|m| m.span == Some(mine_id)).unwrap();
    assert!(mine_mem.alloc_bytes >= 1 << 16, "delta covers the hog: {mine_mem:?}");
    assert!(mine_mem.alloc_count > 0);

    let run = journal.mems.iter().find(|m| m.kind == "run").unwrap();
    assert!(run.span.is_none());
    assert!(run.peak_bytes > 0, "a live process has a non-zero peak");
    assert!(run.alloc_bytes >= mine_mem.alloc_bytes, "run total covers the span");

    // The journal round-trips with the records intact (serialisation
    // sorts them (span, kind, component), so compare as sets).
    let parsed = RunJournal::from_jsonl(&journal.to_jsonl()).unwrap();
    assert_eq!(parsed.mems.len(), journal.mems.len());
    for mem in &journal.mems {
        assert!(parsed.mems.contains(mem), "missing after round-trip: {mem:?}");
    }
}

/// Deterministic recorders omit allocation records entirely — the
/// byte-identity CI comparisons must not see allocator jitter even in
/// binaries that installed the allocator.
#[test]
fn deterministic_recorder_omits_allocation_records() {
    let rec = Recorder::deterministic();
    let span = rec.root_scope().span("mine");
    let hog: Vec<u8> = vec![7; 1 << 12];
    std::hint::black_box(&hog);
    drop(hog);
    span.finish();
    let journal = rec.snapshot();
    assert!(
        journal.mems.iter().all(|m| m.kind == "footprint"),
        "only deterministic footprints may survive: {:?}",
        journal.mems
    );
}

proptest! {
    /// The allocator's peak is a true high-water mark: at every
    /// snapshot, peak ≥ live, and the cumulative counters are
    /// monotone across snapshots.
    #[test]
    fn peak_dominates_live_at_every_snapshot(
        sizes in prop::collection::vec(1usize..4096, 1..40),
    ) {
        let mut prev = TrackingAlloc::snapshot();
        let mut held = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            held.push(vec![0u8; size]);
            if i % 3 == 2 {
                held.pop();
            }
            let snap = TrackingAlloc::snapshot();
            prop_assert!(snap.peak_bytes >= snap.live_bytes, "{snap:?}");
            prop_assert!(snap.total_alloc_bytes >= prev.total_alloc_bytes);
            prop_assert!(snap.alloc_count >= prev.alloc_count);
            prop_assert!(snap.dealloc_count >= prev.dealloc_count);
            prop_assert!(snap.peak_bytes >= prev.peak_bytes);
            prev = snap;
        }
        std::hint::black_box(&held);
    }

    /// Flat sibling spans partition the run interval: the sum of
    /// their allocation deltas never exceeds the run-wide total —
    /// the cumulative counter is monotone over disjoint
    /// sub-intervals.
    #[test]
    fn span_alloc_deltas_sum_within_run_total(
        sizes in prop::collection::vec(1usize..2048, 1..12),
    ) {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        for (i, &size) in sizes.iter().enumerate() {
            let span = root.scope().span(&format!("unit-{i}"));
            let hog: Vec<u8> = vec![1; size];
            std::hint::black_box(&hog);
            drop(hog);
            span.finish();
        }
        root.finish();
        let journal = rec.snapshot();

        let run = journal.mems.iter().find(|m| m.kind == "run").unwrap();
        // Only the leaf spans: the root's delta is inclusive of all
        // of them, so summing it too would double-count.
        let leaf_sum: u64 = journal
            .mems
            .iter()
            .filter(|m| m.kind == "span" && m.span != Some(0))
            .map(|m| m.alloc_bytes)
            .sum();
        prop_assert!(
            leaf_sum <= run.alloc_bytes,
            "leaf deltas {} must fit the run total {}",
            leaf_sum,
            run.alloc_bytes
        );
    }
}
