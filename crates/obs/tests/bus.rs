//! Telemetry-bus behaviour: emission coverage, event/journal parity,
//! drop counting + journaling, byte-identity with sinks attached, the
//! event-stream writer, and the Prometheus exposition.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use grm_obs::{
    check_exposition_against_events, event_stream_sink, parse_exposition, BoundaryRecord,
    ChannelSink, ChaosRecord, CheckpointRecord, Counter, CountingSink, DegradedRecord,
    EventsBaseline, FaultRecord, FootprintRow, Gauge, Histo, LineageRecord, MemRecord, MetricsHub,
    Recorder, RetryRecord, RunJournal, TelemetryEvent,
};

/// Drives one small synthetic run touching every journal-backed
/// record kind, so parity can be asserted across the whole taxonomy.
fn drive(rec: &Recorder) -> RunJournal {
    rec.set_chaos(ChaosRecord {
        model: "sim".into(),
        strategy: "swa".into(),
        fault_rate: 0.2,
        ..ChaosRecord::default()
    });
    let root = rec.root_scope().span("pipeline");
    let mine = root.scope().span("mine");
    let scope = mine.scope();
    scope.add(Counter::PromptsIssued, 4);
    scope.add(Counter::RulesMined, 9);
    scope.gauge(Gauge::RagCoverage, 0.8);
    scope.observe(Histo::MineCallSeconds, 1.5);
    scope.fault(FaultRecord {
        stage: "mine".into(),
        unit: 2,
        attempt: 1,
        ..FaultRecord::default()
    });
    scope.retry(RetryRecord {
        stage: "mine".into(),
        unit: 2,
        attempts: 2,
        recovered: true,
        ..RetryRecord::default()
    });
    scope.degraded(DegradedRecord {
        stage: "mine".into(),
        unit: "window-7".into(),
        reason: "abandoned".into(),
        ..DegradedRecord::default()
    });
    scope.checkpoint(CheckpointRecord {
        stage: "mine".into(),
        unit: 2,
        payload: "rules".into(),
        ..CheckpointRecord::default()
    });
    scope.lineage(LineageRecord {
        rule: "rule-0".into(),
        frequency: 3,
        ..LineageRecord::default()
    });
    scope.boundary(BoundaryRecord { node: "Team_1".into(), ..BoundaryRecord::default() });
    scope.mem(MemRecord::footprint_of(
        "graph",
        vec![FootprintRow { name: "nodes".into(), count: 10, bytes: 640 }],
    ));
    mine.finish();
    root.finish();
    rec.snapshot()
}

#[test]
fn bus_emits_one_event_per_journal_record() {
    let rec = Recorder::deterministic();
    let counting = CountingSink::new();
    rec.attach_sink(counting.clone());
    let journal = drive(&rec);
    let counts = counting.counts();
    let violations = EventsBaseline::parity_violations(&counts, &journal);
    assert!(violations.is_empty(), "{violations:?}");
    // Spot-check the aggregate kinds parity does not cover.
    assert_eq!(counts.get("counter"), Some(&2));
    assert_eq!(counts.get("gauge"), Some(&1));
    assert_eq!(counts.get("histo"), Some(&1));
    assert_eq!(counts.get("span_close"), Some(&2));
    assert_eq!(rec.events_dropped(), 0);
    assert_eq!(rec.events_emitted(), counts.values().sum::<u64>());

    rec.finish_sinks();
    assert_eq!(counting.counts().get("run_end"), Some(&1));
}

#[test]
fn saturated_sink_drops_are_counted_and_journaled() {
    let rec = Recorder::deterministic();
    // Capacity-1 channel that nobody drains: everything past the
    // first offer drops.
    let (sink, _rx) = ChannelSink::bounded("tiny", 1);
    rec.attach_sink(sink);
    let journal = drive(&rec);
    let dropped = rec.events_dropped();
    assert!(dropped > 0, "the tiny channel must have dropped");
    assert_eq!(journal.total("telemetry_events_dropped"), dropped);
    assert_eq!(journal.total("telemetry_events_dropped"), rec.events_emitted() - 1);
}

#[test]
fn zero_drop_bus_run_is_byte_identical_to_bus_off() {
    let plain = drive(&Recorder::deterministic()).to_jsonl();
    let rec = Recorder::deterministic();
    // Generously sized channel, undrained but never full: no drops.
    let (sink, rx) = ChannelSink::bounded("big", 4096);
    let counting = CountingSink::new();
    rec.attach_sink(sink);
    rec.attach_sink(counting);
    let live = drive(&rec).to_jsonl();
    assert_eq!(rec.events_dropped(), 0);
    assert_eq!(plain, live, "attached sinks must never perturb journal bytes");
    rec.finish_sinks();
    // The channel saw the same stream the counters did, run_end last.
    let events: Vec<TelemetryEvent> = rx.try_iter().collect();
    assert_eq!(events.last().unwrap().kind, "run_end");
}

#[test]
fn disabled_recorder_ignores_sinks() {
    let rec = Recorder::disabled();
    let counting = CountingSink::new();
    rec.attach_sink(counting.clone());
    rec.root_scope().span("pipeline").finish();
    rec.finish_sinks();
    assert!(counting.counts().is_empty());
    assert_eq!(rec.events_emitted(), 0);
}

#[test]
fn event_stream_writer_produces_v8_journal_lines() {
    let path = std::env::temp_dir().join(format!("grm-bus-test-{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap().to_owned();
    let rec = Recorder::deterministic();
    let (sink, handle) = event_stream_sink(&path_str, 4096).expect("stream file creates");
    rec.attach_sink(sink);
    drive(&rec);
    rec.finish_sinks();
    let written = handle.finish().expect("writer thread exits cleanly");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(text.lines().next().unwrap().contains(r#""version":8"#));
    let parsed = RunJournal::from_jsonl_lossy(&text).expect("stream parses as a journal");
    assert!(parsed.has_events());
    assert_eq!(parsed.events.len() as u64, written);
    assert_eq!(parsed.events.len() as u64, rec.events_emitted());
    assert_eq!(parsed.events.last().unwrap().kind, "run_end");
    // seq is strictly increasing in file order.
    assert!(parsed.events.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn metrics_hub_exposes_counters_gauges_and_bus_health() {
    let hub = Arc::new(MetricsHub::new(None, 64, Arc::new(AtomicU64::new(0))));
    let rec = Recorder::deterministic();
    rec.attach_sink(hub.clone());
    drive(&rec);
    rec.finish_sinks();
    let text = hub.exposition();
    let samples = parse_exposition(&text).expect("exposition well-formed: {text}");
    let get = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
    assert_eq!(get("grm_prompts_issued_total"), Some(4.0));
    assert_eq!(get("grm_rules_mined_total"), Some(9.0));
    assert_eq!(get("grm_rag_coverage"), Some(0.8));
    assert_eq!(get("grm_telemetry_events_dropped_total"), Some(0.0));
    assert_eq!(get("grm_telemetry_events_total"), Some(rec.events_emitted() as f64));
}

#[test]
fn exposition_cross_checks_against_event_stream() {
    let hub = Arc::new(MetricsHub::new(None, 64, Arc::new(AtomicU64::new(0))));
    let (chan, rx) = ChannelSink::bounded("probe", 4096);
    let rec = Recorder::deterministic();
    rec.attach_sink(hub.clone());
    rec.attach_sink(chan);
    drive(&rec);
    rec.finish_sinks();
    let events: Vec<TelemetryEvent> = rx.try_iter().collect();
    let samples = parse_exposition(&hub.exposition()).unwrap();
    let violations = check_exposition_against_events(&samples, &events);
    assert!(violations.is_empty(), "{violations:?}");
    // A tampered snapshot is caught.
    let mut tampered = samples.clone();
    for s in &mut tampered {
        if s.name == "grm_rules_mined_total" {
            s.value += 1.0;
        }
    }
    assert!(!check_exposition_against_events(&tampered, &events).is_empty());
}

#[test]
fn metrics_hub_writes_atomic_snapshots_on_cadence() {
    let path = std::env::temp_dir().join(format!("grm-metrics-test-{}.prom", std::process::id()));
    let hub = Arc::new(MetricsHub::new(Some(path.clone()), 4, Arc::new(AtomicU64::new(0))));
    let rec = Recorder::deterministic();
    rec.attach_sink(hub);
    drive(&rec);
    rec.finish_sinks();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!path.with_extension("tmp").exists(), "tmp file renamed away");
    let samples = parse_exposition(&text).expect("snapshot well-formed");
    assert!(samples.iter().any(|s| s.name == "grm_rules_mined_total" && s.value == 9.0));
}

#[test]
fn metrics_listener_serves_exposition_over_http() {
    use std::io::{Read, Write};
    let hub = Arc::new(MetricsHub::new(None, 64, Arc::new(AtomicU64::new(0))));
    let rec = Recorder::deterministic();
    rec.attach_sink(hub.clone());
    drive(&rec);
    rec.finish_sinks();
    let server = hub.serve("127.0.0.1:0").expect("listener binds");
    let mut stream = std::net::TcpStream::connect(&server.addr).expect("connects");
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    server.stop();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("has a body");
    let samples = parse_exposition(body).expect("served exposition well-formed");
    assert!(samples.iter().any(|s| s.name == "grm_prompts_issued_total" && s.value == 4.0));
}

#[test]
fn parity_gate_catches_a_missing_kind() {
    let rec = Recorder::deterministic();
    let counting = CountingSink::new();
    rec.attach_sink(counting.clone());
    let journal = drive(&rec);
    let mut counts: BTreeMap<String, u64> = counting.counts();
    counts.remove("fault");
    let violations = EventsBaseline::parity_violations(&counts, &journal);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].contains("fault"), "{violations:?}");
}
