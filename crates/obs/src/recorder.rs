//! The recorder: span tree + counter state behind a cheap handle.
//!
//! [`Recorder`] is a clonable handle; a disabled one is a `None` and
//! every operation on it is a no-op. [`Scope`] carries "where am I in
//! the span tree" across function (and thread) boundaries — the
//! parallel miner clones a scope into each worker thread and opens a
//! per-worker child span there.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::bus::{EventSink, TelemetryEvent};
use crate::counter::{Counter, Gauge, Histo};
use crate::histogram::Histogram;
use crate::journal::{HistoRecord, RunJournal, SpanRecord};
use crate::lineage::{BoundaryRecord, LineageRecord};
use crate::mem::{AllocSnapshot, MemRecord, TrackingAlloc};
use crate::plan::{PlanRecord, SlowQueryPolicy};
use crate::resilience::{ChaosRecord, CheckpointRecord, DegradedRecord, FaultRecord, RetryRecord};

/// Allocator-counter growth between two snapshots. All-zero in
/// binaries that never install [`TrackingAlloc`].
#[derive(Debug, Clone, Copy, Default)]
struct AllocDelta {
    alloc_bytes: u64,
    alloc_count: u64,
    dealloc_count: u64,
    peak_delta: u64,
}

impl AllocDelta {
    fn between(open: &AllocSnapshot, close: &AllocSnapshot) -> AllocDelta {
        AllocDelta {
            alloc_bytes: close.total_alloc_bytes.saturating_sub(open.total_alloc_bytes),
            alloc_count: close.alloc_count.saturating_sub(open.alloc_count),
            dealloc_count: close.dealloc_count.saturating_sub(open.dealloc_count),
            peak_delta: close.peak_bytes.saturating_sub(open.peak_bytes),
        }
    }

    fn is_zero(&self) -> bool {
        self.alloc_bytes == 0
            && self.alloc_count == 0
            && self.dealloc_count == 0
            && self.peak_delta == 0
    }
}

#[derive(Debug)]
struct SpanData {
    name: String,
    parent: Option<usize>,
    start: Instant,
    /// Simulated start offset from the run's sim origin — pure sim
    /// arithmetic stamped at open time, never read from a clock.
    sim_start: f64,
    /// Real elapsed seconds; `None` while the span is open.
    real_secs: Option<f64>,
    /// Simulated LLM seconds attributed to this span.
    sim_seconds: f64,
    /// Allocator counters at span open, for the close-time delta.
    alloc_at_open: AllocSnapshot,
    /// Allocation delta over the span (inclusive of children); set by
    /// the first close, computed at snapshot time for open spans.
    alloc_delta: Option<AllocDelta>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histos: BTreeMap<&'static str, Histogram>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanData>,
    totals: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histos: BTreeMap<&'static str, Histogram>,
    plans: Vec<PlanRecord>,
    lineages: Vec<LineageRecord>,
    boundaries: Vec<BoundaryRecord>,
    /// Footprint records stored through [`Scope::mem`]; span and run
    /// allocation records are derived at snapshot time instead.
    mems: Vec<MemRecord>,
    chaos: Option<ChaosRecord>,
    faults: Vec<FaultRecord>,
    retries: Vec<RetryRecord>,
    degraded: Vec<DegradedRecord>,
    checkpoints: Vec<CheckpointRecord>,
    slow_queries: SlowQueryPolicy,
}

struct Inner {
    started: Instant,
    /// Allocator counters when the recorder was created, for the
    /// run-wide `Mem` record.
    alloc_at_start: AllocSnapshot,
    /// When set, snapshots zero every wall-clock field so two runs of
    /// the same seeded pipeline serialise byte-identically.
    deterministic: bool,
    state: Mutex<State>,
    /// Attached bus sinks; the journal state above is conceptually
    /// the always-attached lossless sink and never flows through
    /// these, so sinks cannot perturb journal bytes.
    sinks: RwLock<Vec<Arc<dyn EventSink>>>,
    /// Fast no-sink gate: one relaxed load per instrumentation call
    /// when the bus is off.
    has_sinks: AtomicBool,
    /// Next event sequence number (== events emitted so far).
    seq: AtomicU64,
    /// Events refused by a sink's bounded buffer. Shared as an `Arc`
    /// so exporters can report it without referencing the recorder.
    dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("deterministic", &self.deterministic)
            .field("has_sinks", &self.has_sinks.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Inner {
    fn new(deterministic: bool) -> Inner {
        Inner {
            started: Instant::now(),
            alloc_at_start: TrackingAlloc::snapshot(),
            deterministic,
            state: Mutex::new(State::default()),
            sinks: RwLock::new(Vec::new()),
            has_sinks: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    fn sinks_on(&self) -> bool {
        self.has_sinks.load(Ordering::Relaxed)
    }

    /// Builds and offers one event to every sink. Always called
    /// *after* the state lock is released: sinks run on the
    /// instrumented thread but never inside the recorder's critical
    /// section, and a refusing sink only bumps the drop counter.
    fn emit(&self, kind: &str, span: Option<usize>, name: String, detail: String, value: f64) {
        if !self.sinks_on() {
            return;
        }
        let event = TelemetryEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind: kind.to_owned(),
            span: span.map(|id| id as u64),
            name,
            detail,
            value,
        };
        let sinks = self.sinks.read().expect("sink list poisoned");
        for sink in sinks.iter() {
            if !sink.offer(&event) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Handle to one run's instrumentation state.
///
/// Cloning shares the underlying state; all methods take `&self` and
/// are safe to call from multiple threads.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled in-memory recorder.
    pub fn new() -> Self {
        Recorder { inner: Some(Arc::new(Inner::new(false))) }
    }

    /// An enabled recorder whose snapshots zero every wall-clock
    /// field (`start_ms`, `real_ms`, plan microseconds) and every
    /// allocator-derived quantity — the mode chaos runs use so two
    /// runs with the same `(seed, fault-seed, fault-rate)` write
    /// byte-identical journals. Deterministic footprint records
    /// survive; they are pure capacity arithmetic.
    pub fn deterministic() -> Self {
        Recorder { inner: Some(Arc::new(Inner::new(true))) }
    }

    /// A recorder that records nothing, at near-zero cost.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The top-level scope (spans opened from it have no parent).
    pub fn root_scope(&self) -> Scope {
        Scope { rec: self.clone(), parent: None }
    }

    /// Current value of a run-wide counter total.
    pub fn total(&self, counter: Counter) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                let state = inner.state.lock().expect("obs state poisoned");
                state.totals.get(counter.name()).copied().unwrap_or(0)
            }
        }
    }

    /// Attaches a bus sink: from now on every recorder mutation is
    /// offered to it as a [`TelemetryEvent`]. No-op on a disabled
    /// recorder.
    pub fn attach_sink(&self, sink: Arc<dyn EventSink>) {
        if let Some(inner) = &self.inner {
            inner.sinks.write().expect("sink list poisoned").push(sink);
            inner.has_sinks.store(true, Ordering::Relaxed);
        }
    }

    /// Emits the final `run_end` event, flushes every sink, and
    /// detaches them (dropping the recorder's references so channel
    /// consumers see disconnect and exit). Call once, after the last
    /// journal snapshot.
    pub fn finish_sinks(&self) {
        if let Some(inner) = &self.inner {
            if !inner.sinks_on() {
                return;
            }
            let emitted = inner.seq.load(Ordering::Relaxed);
            inner.emit(
                TelemetryEvent::RUN_END,
                None,
                "run".to_owned(),
                String::new(),
                emitted as f64,
            );
            let mut sinks = inner.sinks.write().expect("sink list poisoned");
            for sink in sinks.iter() {
                sink.flush();
            }
            sinks.clear();
            inner.has_sinks.store(false, Ordering::Relaxed);
        }
    }

    /// Events emitted to the bus so far.
    pub fn events_emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seq.load(Ordering::Relaxed))
    }

    /// Events refused by a saturated sink so far.
    pub fn events_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// The shared drop counter, for exporters that report it without
    /// holding a recorder (always-zero dummy when disabled).
    pub fn dropped_handle(&self) -> Arc<AtomicU64> {
        match &self.inner {
            Some(inner) => Arc::clone(&inner.dropped),
            None => Arc::new(AtomicU64::new(0)),
        }
    }

    fn open_span(&self, name: &str, parent: Option<usize>, sim_start: f64) -> Option<usize> {
        let inner = self.inner.as_ref()?;
        let id = {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.spans.push(SpanData {
                name: name.to_owned(),
                parent,
                start: Instant::now(),
                sim_start,
                real_secs: None,
                sim_seconds: 0.0,
                alloc_at_open: TrackingAlloc::snapshot(),
                alloc_delta: None,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histos: BTreeMap::new(),
            });
            state.spans.len() - 1
        };
        if inner.sinks_on() {
            let detail = parent.map(|p| p.to_string()).unwrap_or_default();
            inner.emit(TelemetryEvent::SPAN_OPEN, Some(id), name.to_owned(), detail, sim_start);
        }
        Some(id)
    }

    fn close_span(&self, id: usize) {
        if let Some(inner) = &self.inner {
            let closed = {
                let mut state = inner.state.lock().expect("obs state poisoned");
                let span = &mut state.spans[id];
                if span.real_secs.is_none() {
                    let secs = span.start.elapsed().as_secs_f64();
                    span.real_secs = Some(secs);
                    span.alloc_delta =
                        Some(AllocDelta::between(&span.alloc_at_open, &TrackingAlloc::snapshot()));
                    if inner.sinks_on() {
                        Some((span.name.clone(), secs))
                    } else {
                        None
                    }
                } else {
                    None
                }
            };
            if let Some((name, secs)) = closed {
                inner.emit(TelemetryEvent::SPAN_CLOSE, Some(id), name, String::new(), secs);
            }
        }
    }

    fn add(&self, span: Option<usize>, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                *state.totals.entry(counter.name()).or_insert(0) += n;
                if let Some(id) = span {
                    *state.spans[id].counters.entry(counter.name()).or_insert(0) += n;
                }
            }
            inner.emit(
                TelemetryEvent::COUNTER,
                span,
                counter.name().to_owned(),
                String::new(),
                n as f64,
            );
        }
    }

    fn set_gauge(&self, span: Option<usize>, gauge: Gauge, value: f64) {
        if let Some(inner) = &self.inner {
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.gauges.insert(gauge.name(), value);
                if let Some(id) = span {
                    state.spans[id].gauges.insert(gauge.name(), value);
                }
            }
            inner.emit(TelemetryEvent::GAUGE, span, gauge.name().to_owned(), String::new(), value);
        }
    }

    // Span observations accumulate on their span only; the run-wide
    // histogram is merged from them at snapshot time in span-id
    // order. Accumulating run-wide at record time would sum f64s in
    // thread-arrival order, and parallel mining would journal
    // ULP-different sums from run to run, breaking the byte-identity
    // `cmp` checks. Only span-less (root-scope) observations land in
    // `state.histos` directly.
    fn observe(&self, span: Option<usize>, histo: Histo, value: f64) {
        if let Some(inner) = &self.inner {
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                match span {
                    Some(id) => {
                        state.spans[id].histos.entry(histo.name()).or_default().record(value)
                    }
                    None => state.histos.entry(histo.name()).or_default().record(value),
                }
            }
            inner.emit(TelemetryEvent::HISTO, span, histo.name().to_owned(), String::new(), value);
        }
    }

    fn add_sim_seconds(&self, span: Option<usize>, seconds: f64) {
        if let (Some(inner), Some(id)) = (&self.inner, span) {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.spans[id].sim_seconds += seconds;
        }
    }

    /// Sets the slow-query thresholds applied to every plan record
    /// stored after this call.
    pub fn set_slow_query_policy(&self, policy: SlowQueryPolicy) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock().expect("obs state poisoned");
            state.slow_queries = policy;
        }
    }

    /// Plan records stored so far that the policy flagged as slow.
    pub fn slow_queries(&self) -> Vec<PlanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let state = inner.state.lock().expect("obs state poisoned");
                state.plans.iter().filter(|p| p.slow).cloned().collect()
            }
        }
    }

    fn record_plan(&self, span: Option<usize>, mut plan: PlanRecord) {
        if let Some(inner) = &self.inner {
            plan.span = span.map(|id| id as u64);
            plan.sort_ops();
            let (scope, db_hits) = (plan.scope.clone(), plan.db_hits());
            let slow = {
                let mut state = inner.state.lock().expect("obs state poisoned");
                let slow = state.slow_queries.is_slow(&plan);
                if slow {
                    plan.slow = true;
                    *state.totals.entry(Counter::CypherSlowQueries.name()).or_insert(0) += 1;
                    if let Some(id) = span {
                        *state.spans[id]
                            .counters
                            .entry(Counter::CypherSlowQueries.name())
                            .or_insert(0) += 1;
                    }
                }
                state.plans.push(plan);
                slow
            };
            let detail = if slow { "slow".to_owned() } else { String::new() };
            inner.emit(TelemetryEvent::PLAN, span, scope, detail, db_hits as f64);
            if slow {
                inner.emit(
                    TelemetryEvent::COUNTER,
                    span,
                    Counter::CypherSlowQueries.name().to_owned(),
                    String::new(),
                    1.0,
                );
            }
        }
    }

    fn record_lineage(&self, span: Option<usize>, mut lineage: LineageRecord) {
        if let Some(inner) = &self.inner {
            lineage.span = span.map(|id| id as u64);
            lineage.sort_origins();
            let (rule, frequency) = (lineage.rule.clone(), lineage.frequency);
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.lineages.push(lineage);
            }
            inner.emit(TelemetryEvent::LINEAGE, span, rule, String::new(), frequency as f64);
        }
    }

    fn record_boundary(&self, span: Option<usize>, mut boundary: BoundaryRecord) {
        if let Some(inner) = &self.inner {
            boundary.span = span.map(|id| id as u64);
            let node = boundary.node.clone();
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.boundaries.push(boundary);
            }
            inner.emit(TelemetryEvent::BOUNDARY, span, node, String::new(), 0.0);
        }
    }

    /// Sets the chaos-run identity line written with the journal.
    pub fn set_chaos(&self, chaos: ChaosRecord) {
        if let Some(inner) = &self.inner {
            let (model, strategy, rate) =
                (chaos.model.clone(), chaos.strategy.clone(), chaos.fault_rate);
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.chaos = Some(chaos);
            }
            inner.emit(TelemetryEvent::CHAOS, None, model, strategy, rate);
        }
    }

    fn record_fault(&self, span: Option<usize>, mut fault: FaultRecord) {
        if let Some(inner) = &self.inner {
            fault.span = span.map(|id| id as u64);
            let (stage, kind, unit) = (fault.stage.clone(), fault.kind.clone(), fault.unit);
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.faults.push(fault);
            }
            inner.emit(TelemetryEvent::FAULT, span, stage, kind, unit as f64);
        }
    }

    fn record_retry(&self, span: Option<usize>, mut retry: RetryRecord) {
        if let Some(inner) = &self.inner {
            retry.span = span.map(|id| id as u64);
            let (stage, unit) = (retry.stage.clone(), retry.unit);
            let verdict = if retry.recovered { "recovered" } else { "abandoned" };
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.retries.push(retry);
            }
            inner.emit(TelemetryEvent::RETRY, span, stage, verdict.to_owned(), unit as f64);
        }
    }

    fn record_degraded(&self, span: Option<usize>, mut record: DegradedRecord) {
        if let Some(inner) = &self.inner {
            record.span = span.map(|id| id as u64);
            let (stage, detail) =
                (record.stage.clone(), format!("{}: {}", record.unit, record.reason));
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.degraded.push(record);
            }
            inner.emit(TelemetryEvent::DEGRADED, span, stage, detail, 0.0);
        }
    }

    fn record_checkpoint(&self, span: Option<usize>, mut checkpoint: CheckpointRecord) {
        if let Some(inner) = &self.inner {
            checkpoint.span = span.map(|id| id as u64);
            let (stage, unit) = (checkpoint.stage.clone(), checkpoint.unit);
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.checkpoints.push(checkpoint);
            }
            inner.emit(TelemetryEvent::CHECKPOINT, span, stage, String::new(), unit as f64);
        }
    }

    fn record_mem(&self, span: Option<usize>, mut mem: MemRecord) {
        if let Some(inner) = &self.inner {
            mem.span = span.map(|id| id as u64);
            let (kind, component, bytes) =
                (mem.kind.clone(), mem.component.clone(), mem.footprint_bytes());
            {
                let mut state = inner.state.lock().expect("obs state poisoned");
                state.mems.push(mem);
            }
            inner.emit(TelemetryEvent::MEM, span, kind, component, bytes as f64);
        }
    }

    /// Freezes the current state into a serialisable journal. Spans
    /// still open are reported with their elapsed-so-far duration.
    pub fn snapshot(&self) -> RunJournal {
        let Some(inner) = &self.inner else {
            return RunJournal::default();
        };
        let state = inner.state.lock().expect("obs state poisoned");
        let spans = state
            .spans
            .iter()
            .enumerate()
            .map(|(id, s)| SpanRecord {
                id: id as u64,
                parent: s.parent.map(|p| p as u64),
                name: s.name.clone(),
                start_ms: if inner.deterministic {
                    0.0
                } else {
                    s.start.duration_since(inner.started).as_secs_f64() * 1e3
                },
                real_ms: if inner.deterministic {
                    0.0
                } else {
                    s.real_secs.unwrap_or_else(|| s.start.elapsed().as_secs_f64()) * 1e3
                },
                // Deliberately NOT zeroed in deterministic mode: the
                // offset is a pure function of the seeded sim timings,
                // so byte-identity comparisons still hold.
                sim_start_seconds: s.sim_start,
                sim_seconds: s.sim_seconds,
                counters: s.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                gauges: s.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            })
            .collect();
        // Canonical (span, name) order — run-wide totals (`None`)
        // first, then per-span rows in span-id order; BTreeMap
        // iteration keeps names sorted within each. Matches the
        // `to_jsonl` line order so round-trips compare equal. The
        // run-wide histograms are merged here, span-less observations
        // first then per-span in span-id order, so the f64 sums are
        // independent of worker-thread arrival order.
        let mut merged = state.histos.clone();
        for s in &state.spans {
            for (name, hist) in &s.histos {
                merged.entry(name).or_default().merge(hist);
            }
        }
        let mut histos: Vec<HistoRecord> = Vec::new();
        for (name, hist) in &merged {
            histos.push(HistoRecord {
                span: None,
                name: name.to_string(),
                histogram: hist.clone(),
            });
        }
        for (id, s) in state.spans.iter().enumerate() {
            for (name, hist) in &s.histos {
                histos.push(HistoRecord {
                    span: Some(id as u64),
                    name: name.to_string(),
                    histogram: hist.clone(),
                });
            }
        }
        let mut plans = state.plans.clone();
        if inner.deterministic {
            // Wall-clock microseconds are the only schedule-dependent
            // plan fields; zero them so chaos journals byte-compare.
            for plan in &mut plans {
                plan.total_us = 0;
                for op in &mut plan.ops {
                    op.self_us = 0;
                }
            }
        }
        // Footprint records always journal (pure capacity arithmetic,
        // deterministic). Span/run allocation records are derived from
        // the tracking allocator and omitted in deterministic mode —
        // and wherever the allocator is not installed they are all
        // zero and skipped, so library/unit-test journals are
        // unchanged.
        let mut mems = state.mems.clone();
        if !inner.deterministic {
            let now = TrackingAlloc::snapshot();
            for (id, s) in state.spans.iter().enumerate() {
                let delta =
                    s.alloc_delta.unwrap_or_else(|| AllocDelta::between(&s.alloc_at_open, &now));
                if delta.is_zero() {
                    continue;
                }
                mems.push(MemRecord {
                    span: Some(id as u64),
                    kind: "span".to_owned(),
                    alloc_bytes: delta.alloc_bytes,
                    alloc_count: delta.alloc_count,
                    dealloc_count: delta.dealloc_count,
                    peak_delta: delta.peak_delta,
                    ..MemRecord::default()
                });
            }
            let run = AllocDelta::between(&inner.alloc_at_start, &now);
            if !run.is_zero() {
                mems.push(MemRecord {
                    span: None,
                    kind: "run".to_owned(),
                    alloc_bytes: run.alloc_bytes,
                    alloc_count: run.alloc_count,
                    dealloc_count: run.dealloc_count,
                    peak_delta: run.peak_delta,
                    peak_bytes: now.peak_bytes,
                    ..MemRecord::default()
                });
            }
        }
        // Sink drops are journaled so a saturated bounded channel can
        // never silently under-report — but only when non-zero, so a
        // bus-on run that dropped nothing stays byte-identical to the
        // same run with the bus off.
        let mut totals: Vec<(String, u64)> =
            state.totals.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let dropped = inner.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            totals.push((Counter::TelemetryEventsDropped.name().to_string(), dropped));
            totals.sort_by(|a, b| a.0.cmp(&b.0));
        }
        RunJournal {
            spans,
            totals,
            gauges: state.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histos,
            plans,
            lineages: state.lineages.clone(),
            boundaries: state.boundaries.clone(),
            chaos: state.chaos.clone(),
            faults: state.faults.clone(),
            retries: state.retries.clone(),
            degraded: state.degraded.clone(),
            checkpoints: state.checkpoints.clone(),
            mems,
            events: Vec::new(),
            corrupt_lines: 0,
            unknown_lines: 0,
        }
    }
}

/// A position in the span tree: counters recorded through a scope are
/// attributed to its span; child spans opened from it get that span
/// as parent.
#[derive(Debug, Clone)]
pub struct Scope {
    rec: Recorder,
    parent: Option<usize>,
}

impl Scope {
    /// A scope on a disabled recorder — the no-op default for
    /// untraced call paths.
    pub fn disabled() -> Scope {
        Scope { rec: Recorder::disabled(), parent: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Opens a child span. Call [`Span::finish`] when the stage ends.
    pub fn span(&self, name: &str) -> Span {
        self.span_at(name, 0.0)
    }

    /// Opens a child span whose simulated start offset is `sim_start`
    /// seconds from the run's sim origin (schema v7). Stage code that
    /// knows how much sim time preceded it stamps the offset here so
    /// `grm trace timeline` can reconstruct occupancy; plain
    /// [`Scope::span`] leaves the offset at 0.
    pub fn span_at(&self, name: &str, sim_start: f64) -> Span {
        let id = self.rec.open_span(name, self.parent, sim_start);
        Span { rec: self.rec.clone(), id }
    }

    /// Bumps a counter on this scope's span and the run totals.
    pub fn add(&self, counter: Counter, n: u64) {
        self.rec.add(self.parent, counter, n);
    }

    /// Sets a gauge on this scope's span and the run state.
    pub fn gauge(&self, gauge: Gauge, value: f64) {
        self.rec.set_gauge(self.parent, gauge, value);
    }

    /// Records one observation into `histo` on this scope's span and
    /// the run-wide histogram.
    pub fn observe(&self, histo: Histo, value: f64) {
        self.rec.observe(self.parent, histo, value);
    }

    /// Attributes simulated LLM seconds to this scope's span.
    pub fn add_sim_seconds(&self, seconds: f64) {
        self.rec.add_sim_seconds(self.parent, seconds);
    }

    /// Stores a query-plan profile attached to this scope's span. The
    /// recorder stamps the span id, sorts the operators, and applies
    /// the slow-query policy (flagging the record and bumping
    /// `cypher_slow_queries` when it breaches).
    pub fn plan(&self, plan: PlanRecord) {
        self.rec.record_plan(self.parent, plan);
    }

    /// Stores a rule-lineage record attached to this scope's span.
    /// The recorder stamps the span id and sorts the origins so the
    /// journal bytes stay schedule-independent.
    pub fn lineage(&self, lineage: LineageRecord) {
        self.rec.record_lineage(self.parent, lineage);
    }

    /// Stores a window-boundary breakage attached to this scope's
    /// span.
    pub fn boundary(&self, boundary: BoundaryRecord) {
        self.rec.record_boundary(self.parent, boundary);
    }

    /// Stores an injected-fault record attached to this scope's span.
    pub fn fault(&self, fault: FaultRecord) {
        self.rec.record_fault(self.parent, fault);
    }

    /// Stores a retry-verdict record attached to this scope's span.
    pub fn retry(&self, retry: RetryRecord) {
        self.rec.record_retry(self.parent, retry);
    }

    /// Stores a degraded-unit record attached to this scope's span.
    pub fn degraded(&self, record: DegradedRecord) {
        self.rec.record_degraded(self.parent, record);
    }

    /// Stores a completed-unit checkpoint attached to this scope's
    /// span, for `grm mine --resume` to replay.
    pub fn checkpoint(&self, checkpoint: CheckpointRecord) {
        self.rec.record_checkpoint(self.parent, checkpoint);
    }

    /// Stores a memory record attached to this scope's span —
    /// typically a deterministic footprint table built with
    /// [`MemRecord::footprint_of`]. The recorder stamps the span id.
    pub fn mem(&self, mem: MemRecord) {
        self.rec.record_mem(self.parent, mem);
    }
}

/// An open span. Explicitly finished (not drop-based) so it can be
/// handed across threads and closed where the work ends; a span never
/// finished is closed at snapshot time.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    id: Option<usize>,
}

impl Span {
    /// The scope *inside* this span: children and counters recorded
    /// through it attach here.
    pub fn scope(&self) -> Scope {
        Scope { rec: self.rec.clone(), parent: self.id }
    }

    /// Records the real duration. Idempotent via [`Recorder`]: only
    /// the first close sets the duration.
    pub fn finish(self) {
        if let Some(id) = self.id {
            self.rec.close_span(id);
        }
    }
}
