//! The live telemetry bus: typed events streamed to pluggable sinks.
//!
//! Every recorder mutation — span open/close, counter increment,
//! fault/retry/degraded verdict, checkpoint, lineage stamp — is
//! emitted as a [`TelemetryEvent`] to every attached [`EventSink`]
//! the moment it happens, while the journal keeps accumulating
//! synchronously inside the recorder as before. Sinks are bounded and
//! non-blocking: an [`EventSink::offer`] that cannot accept an event
//! returns `false` and the recorder counts the drop (journaled as
//! `telemetry_events_dropped` in `Totals` when non-zero), so a
//! saturated channel can never silently under-report.
//!
//! Determinism invariant: sinks observe the run, they never feed back
//! into it. Journal bytes are produced from the recorder's own state,
//! not from the event stream, so attaching any number of sinks leaves
//! rate-0 / two-chaos-run / kill-resume byte-identity intact. The
//! event *stream* itself is not byte-deterministic (sequence numbers
//! are assigned in arrival order, which is schedule-dependent under
//! parallel mining); only the per-kind event *counts* are, which is
//! what the parity gate checks.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::journal::{JournalRecord, RunJournal, JOURNAL_VERSION};

/// One typed bus event. Deliberately a flat struct — the same shape
/// serves every kind, serialises as a journal-v8 `Event` record, and
/// stays within what the vendored serde derive supports. Field
/// meaning per kind is documented in DESIGN.md §14; briefly: `name`
/// is the span/counter/gauge/histogram/stage name, `detail` carries
/// the secondary string (parent span id, fault kind, degrade reason),
/// and `value` the numeric payload (counter increment, observation,
/// duration, unit index).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetryEvent {
    /// Bus-wide sequence number, in emission order.
    pub seq: u64,
    /// Event kind — one of the `TelemetryEvent::*` constants.
    pub kind: String,
    /// Owning span id, when the event is span-attributed.
    pub span: Option<u64>,
    /// Primary name (span name, counter name, stage name, ...).
    pub name: String,
    /// Secondary detail string; empty when the kind has none.
    #[serde(default)]
    pub detail: String,
    /// Numeric payload; 0 when the kind has none.
    #[serde(default)]
    pub value: f64,
}

impl TelemetryEvent {
    /// A span was opened (`name` = span name, `detail` = parent span
    /// id or empty for the root, `value` = sim start offset).
    pub const SPAN_OPEN: &'static str = "span_open";
    /// A span was closed (`value` = real elapsed seconds).
    pub const SPAN_CLOSE: &'static str = "span_close";
    /// A counter was bumped (`name` = counter, `value` = increment).
    pub const COUNTER: &'static str = "counter";
    /// A gauge was set (`name` = gauge, `value` = new value).
    pub const GAUGE: &'static str = "gauge";
    /// A histogram observation (`name` = histogram, `value` = sample).
    pub const HISTO: &'static str = "histo";
    /// A query plan was profiled (`name` = scope, `detail` = "slow"
    /// when flagged, `value` = db-hits).
    pub const PLAN: &'static str = "plan";
    /// A rule lineage stamp (`name` = rule, `value` = merge
    /// frequency).
    pub const LINEAGE: &'static str = "lineage";
    /// A window-boundary breakage (`name` = node).
    pub const BOUNDARY: &'static str = "boundary";
    /// The chaos-run identity was set (`name` = model, `detail` =
    /// strategy, `value` = fault rate).
    pub const CHAOS: &'static str = "chaos";
    /// A transient fault was injected (`name` = stage, `detail` =
    /// fault kind, `value` = unit index).
    pub const FAULT: &'static str = "fault";
    /// A retry verdict (`name` = stage, `detail` = "recovered" or
    /// "abandoned", `value` = unit index).
    pub const RETRY: &'static str = "retry";
    /// A unit degraded (`name` = stage, `detail` = "unit: reason").
    pub const DEGRADED: &'static str = "degraded";
    /// A completed-unit checkpoint (`name` = stage, `value` = unit).
    pub const CHECKPOINT: &'static str = "checkpoint";
    /// A footprint table was stored (`name` = kind, `detail` =
    /// component, `value` = footprint bytes).
    pub const MEM: &'static str = "mem";
    /// The run finished and sinks are flushing (`value` = events
    /// emitted before this one). Always the final event.
    pub const RUN_END: &'static str = "run_end";
    /// A serve-layer job lifecycle transition (`name` = tenant,
    /// `detail` = `"<kind>: <transition>"`, `value` = job id).
    pub const JOB: &'static str = "job";
}

/// A pluggable consumer of bus events.
///
/// Contract: `offer` must be non-blocking and cheap — it runs on the
/// instrumented thread right after the recorder releases its state
/// lock. Return `false` to signal the event was dropped (bounded
/// buffer full); the recorder counts drops per run. Sinks must never
/// call back into the recorder that owns them.
pub trait EventSink: Send + Sync {
    /// Offers one event; `false` means dropped.
    fn offer(&self, event: &TelemetryEvent) -> bool;
    /// Short sink name for drop diagnostics.
    fn name(&self) -> &str;
    /// Called once at run end, after the final `run_end` event.
    fn flush(&self) {}
}

/// A bounded, non-blocking channel sink: `offer` is a `try_send`, so
/// a full buffer drops (and counts) instead of stalling the pipeline.
/// The consuming side is a plain [`Receiver`] — the progress renderer
/// and the event-stream writer both drain one of these from their own
/// thread.
pub struct ChannelSink {
    label: String,
    tx: SyncSender<TelemetryEvent>,
}

impl ChannelSink {
    /// A sink/receiver pair with a buffer of `capacity` events.
    pub fn bounded(label: &str, capacity: usize) -> (Arc<ChannelSink>, Receiver<TelemetryEvent>) {
        let (tx, rx) = sync_channel(capacity);
        (Arc::new(ChannelSink { label: label.to_owned(), tx }), rx)
    }
}

impl EventSink for ChannelSink {
    fn offer(&self, event: &TelemetryEvent) -> bool {
        match self.tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A sink that counts events per kind — the parity gate's probe.
#[derive(Default)]
pub struct CountingSink {
    counts: Mutex<BTreeMap<String, u64>>,
}

impl CountingSink {
    pub fn new() -> Arc<CountingSink> {
        Arc::new(CountingSink::default())
    }

    /// Events seen so far, per kind.
    pub fn counts(&self) -> BTreeMap<String, u64> {
        self.counts.lock().expect("counting sink poisoned").clone()
    }
}

impl EventSink for CountingSink {
    fn offer(&self, event: &TelemetryEvent) -> bool {
        let mut counts = self.counts.lock().expect("counting sink poisoned");
        *counts.entry(event.kind.clone()).or_insert(0) += 1;
        true
    }

    fn name(&self) -> &str {
        "counting"
    }
}

/// Handle to the background thread of an event-stream sink created by
/// [`event_stream_sink`]. Join it (after `Recorder::finish_sinks`)
/// to flush the file and learn how many events were written.
pub struct EventStreamHandle {
    thread: Option<JoinHandle<io::Result<u64>>>,
}

impl EventStreamHandle {
    /// Waits for the writer to drain and close the file; returns the
    /// number of events written.
    pub fn finish(mut self) -> io::Result<u64> {
        match self.thread.take() {
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("event stream writer thread panicked"))),
            None => Ok(0),
        }
    }
}

/// Creates the `--events FILE.jsonl` sink: a bounded channel drained
/// by a writer thread that appends one journal-v8 `Event` line per
/// event (after a `Meta` header line), flushing whenever the channel
/// idles so `grm trace tail` can follow the file from another
/// process. The stream ends with the `run_end` event; the thread
/// exits when every sender is gone (`Recorder::finish_sinks` drops
/// the recorder's reference).
pub fn event_stream_sink(
    path: &str,
    capacity: usize,
) -> io::Result<(Arc<ChannelSink>, EventStreamHandle)> {
    let file = fs::File::create(path)?;
    let (sink, rx) = ChannelSink::bounded("events", capacity);
    let thread = std::thread::spawn(move || -> io::Result<u64> {
        let mut out = BufWriter::new(file);
        let meta = JournalRecord::Meta { version: JOURNAL_VERSION, spans: 0 };
        writeln!(out, "{}", serde_json::to_string(&meta).expect("meta serialises"))?;
        out.flush()?;
        let mut written = 0u64;
        let mut write_event =
            |out: &mut BufWriter<fs::File>, ev: TelemetryEvent| -> io::Result<()> {
                let line = serde_json::to_string(&JournalRecord::Event(ev))
                    .expect("events always serialise");
                writeln!(out, "{line}")?;
                written += 1;
                Ok(())
            };
        loop {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(ev) => {
                    write_event(&mut out, ev)?;
                    // Drain whatever queued up behind it, then flush
                    // once — tail-ability without a flush per line.
                    while let Ok(ev) = rx.try_recv() {
                        write_event(&mut out, ev)?;
                    }
                    out.flush()?;
                }
                Err(RecvTimeoutError::Timeout) => out.flush()?,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        out.flush()?;
        Ok(written)
    });
    Ok((sink, EventStreamHandle { thread: Some(thread) }))
}

/// Live aggregation state behind [`MetricsHub`].
#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events: u64,
}

/// An [`EventSink`] that folds counter/gauge events into a live
/// metrics table and exports it in Prometheus text exposition format
/// — atomically to a file on an event-count cadence
/// (`--metrics-out`), and over HTTP via a std [`TcpListener`]
/// (`--metrics-listen`).
///
/// The lock here is a plain blocking `Mutex` on purpose: the update
/// is a tiny map insert, and a `try_lock`-and-drop design would make
/// drop counts (which are journaled) scheduling-dependent, breaking
/// the byte-identity drills.
pub struct MetricsHub {
    state: Mutex<MetricsState>,
    out_path: Option<PathBuf>,
    /// Rewrite the snapshot file every this many events.
    every: u64,
    /// Recorder-wide drop count, shared via `Recorder::dropped_handle`.
    dropped: Arc<AtomicU64>,
}

impl MetricsHub {
    /// A hub writing atomic snapshots to `out_path` (when set) every
    /// `every` events. `dropped` is the recorder's shared drop
    /// counter so the exposition can report it.
    pub fn new(out_path: Option<PathBuf>, every: u64, dropped: Arc<AtomicU64>) -> MetricsHub {
        MetricsHub {
            state: Mutex::new(MetricsState::default()),
            out_path,
            every: every.max(1),
            dropped,
        }
    }

    /// The current exposition text.
    pub fn exposition(&self) -> String {
        let state = self.state.lock().expect("metrics hub poisoned");
        prometheus_exposition(
            &state.counters,
            &state.gauges,
            state.events,
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Writes the current exposition to `out_path` atomically (tmp +
    /// rename). No-op without an output path.
    pub fn write_snapshot(&self) -> io::Result<()> {
        let Some(path) = &self.out_path else {
            return Ok(());
        };
        let text = self.exposition();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path)
    }

    /// Serves the exposition over HTTP on `addr` from a background
    /// thread, for Prometheus scrapers. Only `GET /metrics` answers
    /// with the snapshot; other methods get 405, other paths 404, and
    /// a request line that is missing or longer than the read cap gets
    /// 400 — malformed clients cannot wedge the listener or coax a
    /// snapshot out of an arbitrary path. Stop it with the returned
    /// handle.
    pub fn serve(self: &Arc<Self>, addr: &str) -> io::Result<MetricsServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let hub = Arc::clone(self);
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                        let head = read_request_head(&mut stream, METRICS_HEAD_CAP);
                        let response = metrics_http_response(&head, &hub.exposition());
                        let _ = stream.write_all(response.as_bytes());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        });
        Ok(MetricsServerHandle { addr: local.to_string(), stop, thread: Some(thread) })
    }
}

/// Read cap for an incoming metrics request head: a scrape request
/// line fits in a fraction of this; anything longer is rejected as
/// malformed instead of being buffered without bound.
const METRICS_HEAD_CAP: usize = 4096;

/// Reads an incoming request from `stream` until the first newline
/// (the request line is all the responder needs), EOF, a read error,
/// or the `cap` byte ceiling — whichever comes first. Never buffers
/// more than `cap` bytes no matter what the client sends.
fn read_request_head(stream: &mut TcpStream, cap: usize) -> Vec<u8> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while head.len() < cap {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.contains(&b'\n') {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    head.truncate(cap);
    head
}

/// Builds the full HTTP response for one metrics request, from the
/// raw request head bytes. Pure — unit-testable without a socket:
/// `GET /metrics` (query string allowed) returns 200 with
/// `exposition` as the body, any other method 405, any other path
/// 404, and a head whose request line never terminated (torn, empty,
/// or over the read cap) 400.
pub fn metrics_http_response(head: &[u8], exposition: &str) -> String {
    let respond = |status: &str, extra: &str, body: &str| {
        format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let text = String::from_utf8_lossy(head);
    let Some(line) = text.split('\n').next().filter(|_| text.contains('\n')) else {
        return respond("400 Bad Request", "", "malformed request line\n");
    };
    let mut parts = line.trim_end_matches('\r').split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return respond("400 Bad Request", "", "malformed request line\n");
    };
    if method.is_empty() || !version.starts_with("HTTP/") || parts.next().is_some() {
        return respond("400 Bad Request", "", "malformed request line\n");
    }
    if method != "GET" {
        return respond("405 Method Not Allowed", "Allow: GET\r\n", "only GET is supported\n");
    }
    let path = target.split('?').next().unwrap_or(target);
    if path != "/metrics" {
        return respond("404 Not Found", "", "metrics live at /metrics\n");
    }
    respond("200 OK", "", exposition)
}

impl EventSink for MetricsHub {
    fn offer(&self, event: &TelemetryEvent) -> bool {
        let due = {
            let mut state = self.state.lock().expect("metrics hub poisoned");
            match event.kind.as_str() {
                TelemetryEvent::COUNTER => {
                    *state.counters.entry(event.name.clone()).or_insert(0) += event.value as u64;
                }
                TelemetryEvent::GAUGE => {
                    state.gauges.insert(event.name.clone(), event.value);
                }
                _ => {}
            }
            state.events += 1;
            state.events.is_multiple_of(self.every) || event.kind == TelemetryEvent::RUN_END
        };
        if due {
            // Snapshot failures are not drops — the event was
            // absorbed; the final flush write surfaces errors.
            let _ = self.write_snapshot();
        }
        true
    }

    fn name(&self) -> &str {
        "metrics"
    }

    fn flush(&self) {
        let _ = self.write_snapshot();
    }
}

/// Handle to a running [`MetricsHub::serve`] listener thread.
pub struct MetricsServerHandle {
    /// The bound address (useful when `addr` asked for port 0).
    pub addr: String,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServerHandle {
    /// Stops the listener and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Renders the Prometheus text exposition (format version 0.0.4):
/// every pipeline counter as `grm_<name>_total`, every gauge as
/// `grm_<name>`, plus the bus's own `grm_telemetry_events_total` /
/// `grm_telemetry_events_dropped_total`. Name-sorted within each
/// family so snapshots diff cleanly.
pub fn prometheus_exposition(
    counters: &BTreeMap<String, u64>,
    gauges: &BTreeMap<String, f64>,
    events_total: u64,
    events_dropped: u64,
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        out.push_str(&format!("# TYPE grm_{name}_total counter\n"));
        out.push_str(&format!("grm_{name}_total {value}\n"));
    }
    for (name, value) in gauges {
        out.push_str(&format!("# TYPE grm_{name} gauge\n"));
        out.push_str(&format!("grm_{name} {value}\n"));
    }
    out.push_str("# TYPE grm_telemetry_events_total counter\n");
    out.push_str(&format!("grm_telemetry_events_total {events_total}\n"));
    out.push_str("# TYPE grm_telemetry_events_dropped_total counter\n");
    out.push_str(&format!("grm_telemetry_events_dropped_total {events_dropped}\n"));
    out
}

/// One parsed sample of a Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpositionSample {
    pub name: String,
    /// `counter` or `gauge`, from the preceding `# TYPE` line.
    pub kind: String,
    pub value: f64,
}

/// Minimal well-formedness checker for a Prometheus text exposition:
/// every sample line must be `name value` with a metric name matching
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, a finite value, a preceding `# TYPE`
/// line declaring `counter` or `gauge`, and counters must be
/// non-negative. Returns the parsed samples or the first violation.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionSample>, String> {
    let valid_name = |name: &str| {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    };
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let loc = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts.next().ok_or(format!("line {loc}: TYPE without a name"))?;
                    let kind = parts.next().ok_or(format!("line {loc}: TYPE without a kind"))?;
                    if !valid_name(name) {
                        return Err(format!("line {loc}: invalid metric name {name:?}"));
                    }
                    if kind != "counter" && kind != "gauge" {
                        return Err(format!("line {loc}: unsupported metric type {kind:?}"));
                    }
                    types.insert(name.to_owned(), kind.to_owned());
                }
                Some("HELP") => {}
                _ => return Err(format!("line {loc}: unrecognised comment {line:?}")),
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or(format!("line {loc}: empty sample"))?;
        let value = parts.next().ok_or(format!("line {loc}: sample {name:?} without a value"))?;
        if parts.next().is_some() {
            return Err(format!("line {loc}: trailing tokens after sample {name:?}"));
        }
        if !valid_name(name) {
            return Err(format!("line {loc}: invalid metric name {name:?}"));
        }
        let kind = types
            .get(name)
            .ok_or(format!("line {loc}: sample {name:?} has no preceding # TYPE line"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {loc}: sample {name:?} value is not a number"))?;
        if !value.is_finite() {
            return Err(format!("line {loc}: sample {name:?} value is not finite"));
        }
        if kind == "counter" && value < 0.0 {
            return Err(format!("line {loc}: counter {name:?} is negative"));
        }
        samples.push(ExpositionSample { name: name.to_owned(), kind: kind.clone(), value });
    }
    Ok(samples)
}

/// Cross-checks an exposition snapshot against the event stream that
/// produced it: counter increments in the stream must be
/// non-negative (so the exposed counters are monotone by
/// construction), and every `grm_<name>_total` counter derived from a
/// pipeline counter must equal the sum of that counter's increments.
/// Returns violations; empty means consistent.
pub fn check_exposition_against_events(
    samples: &[ExpositionSample],
    events: &[TelemetryEvent],
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut sums: BTreeMap<&str, f64> = BTreeMap::new();
    let mut total_events = 0u64;
    for ev in events {
        total_events += 1;
        if ev.kind == TelemetryEvent::COUNTER {
            if ev.value < 0.0 {
                violations.push(format!(
                    "counter {} decremented by {} at seq {} — counters must be monotone",
                    ev.name, ev.value, ev.seq
                ));
            }
            *sums.entry(ev.name.as_str()).or_insert(0.0) += ev.value;
        }
    }
    for sample in samples.iter().filter(|s| s.kind == "counter") {
        let Some(base) = sample.name.strip_prefix("grm_").and_then(|n| n.strip_suffix("_total"))
        else {
            continue;
        };
        if base == "telemetry_events" {
            // The hub counts every event it received; the stream file
            // holds at most that many (same bus, same drops policy),
            // so the exposed total must not be below the file's count.
            if sample.value + 0.5 < total_events as f64 {
                violations.push(format!(
                    "grm_telemetry_events_total {} is below the {} events in the stream",
                    sample.value, total_events
                ));
            }
            continue;
        }
        if base == "telemetry_events_dropped" {
            continue;
        }
        if let Some(sum) = sums.get(base) {
            if (sample.value - sum).abs() > 1e-6 {
                violations.push(format!(
                    "{} exposes {} but the event stream sums to {}",
                    sample.name, sample.value, sum
                ));
            }
        }
    }
    violations
}

/// The committed `BENCH_events.json` shape: per-kind event counts of
/// the deterministic chaos configuration, pinned so event emission
/// coverage can only change deliberately.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventsBaseline {
    /// Journal schema version the baseline was generated against.
    pub journal_version: u32,
    /// Total events across all kinds.
    pub events_total: u64,
    /// Per-kind counts, kind-sorted.
    pub kinds: Vec<(String, u64)>,
}

impl EventsBaseline {
    /// Builds a baseline from a [`CountingSink`]'s counts.
    pub fn from_counts(counts: &BTreeMap<String, u64>) -> EventsBaseline {
        EventsBaseline {
            journal_version: JOURNAL_VERSION,
            events_total: counts.values().sum(),
            kinds: counts.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Exact-match check of observed counts against the baseline.
    pub fn check(&self, counts: &BTreeMap<String, u64>) -> Vec<String> {
        let mut violations = Vec::new();
        if self.journal_version != JOURNAL_VERSION {
            violations.push(format!(
                "baseline journal_version {} != current {} — regenerate with --events-baseline",
                self.journal_version, JOURNAL_VERSION
            ));
        }
        let observed = EventsBaseline::from_counts(counts);
        if observed.events_total != self.events_total {
            violations.push(format!(
                "events_total {} != baseline {}",
                observed.events_total, self.events_total
            ));
        }
        let baseline: BTreeMap<&str, u64> =
            self.kinds.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (kind, count) in counts {
            match baseline.get(kind.as_str()) {
                None => violations.push(format!("kind {kind}: {count} events, absent in baseline")),
                Some(expect) if *expect != *count => {
                    violations.push(format!("kind {kind}: {count} events != baseline {expect}"));
                }
                Some(_) => {}
            }
        }
        for (kind, expect) in &baseline {
            if !counts.contains_key(*kind) {
                violations.push(format!("kind {kind}: baseline expects {expect}, none emitted"));
            }
        }
        violations
    }

    /// The event/journal parity gate: with the bus attached, the
    /// per-kind event counts must equal the corresponding journal
    /// record counts at run end. Only journal-backed kinds
    /// participate (counter/gauge/histo increments aggregate into
    /// totals rather than journaling one line each). `mem` compares
    /// against footprint records only — span/run allocation rows are
    /// derived at snapshot time and never cross the bus.
    pub fn parity_violations(counts: &BTreeMap<String, u64>, journal: &RunJournal) -> Vec<String> {
        let count = |kind: &str| counts.get(kind).copied().unwrap_or(0);
        let footprints = journal.mems.iter().filter(|m| m.kind == "footprint").count() as u64;
        let pairs: [(&str, u64, u64); 10] = [
            (
                TelemetryEvent::SPAN_OPEN,
                count(TelemetryEvent::SPAN_OPEN),
                journal.spans.len() as u64,
            ),
            (TelemetryEvent::PLAN, count(TelemetryEvent::PLAN), journal.plans.len() as u64),
            (
                TelemetryEvent::LINEAGE,
                count(TelemetryEvent::LINEAGE),
                journal.lineages.len() as u64,
            ),
            (
                TelemetryEvent::BOUNDARY,
                count(TelemetryEvent::BOUNDARY),
                journal.boundaries.len() as u64,
            ),
            (TelemetryEvent::CHAOS, count(TelemetryEvent::CHAOS), journal.chaos.is_some() as u64),
            (TelemetryEvent::FAULT, count(TelemetryEvent::FAULT), journal.faults.len() as u64),
            (TelemetryEvent::RETRY, count(TelemetryEvent::RETRY), journal.retries.len() as u64),
            (
                TelemetryEvent::DEGRADED,
                count(TelemetryEvent::DEGRADED),
                journal.degraded.len() as u64,
            ),
            (
                TelemetryEvent::CHECKPOINT,
                count(TelemetryEvent::CHECKPOINT),
                journal.checkpoints.len() as u64,
            ),
            (TelemetryEvent::MEM, count(TelemetryEvent::MEM), footprints),
        ];
        pairs
            .iter()
            .filter(|(_, events, records)| events != records)
            .map(|(kind, events, records)| {
                format!("kind {kind}: {events} bus events != {records} journal records")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_sink_drops_when_full() {
        let (sink, _rx) = ChannelSink::bounded("test", 2);
        let ev = TelemetryEvent {
            seq: 0,
            kind: TelemetryEvent::COUNTER.into(),
            span: None,
            name: "x".into(),
            detail: String::new(),
            value: 1.0,
        };
        assert!(sink.offer(&ev));
        assert!(sink.offer(&ev));
        assert!(!sink.offer(&ev), "third offer into capacity-2 channel must drop");
    }

    #[test]
    fn exposition_parses_and_rejects_malformed() {
        let mut counters = BTreeMap::new();
        counters.insert("rules_mined".to_owned(), 12u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("rag_coverage".to_owned(), 0.75f64);
        let text = prometheus_exposition(&counters, &gauges, 40, 0);
        let samples = parse_exposition(&text).expect("well-formed");
        assert_eq!(samples.len(), 4);
        assert!(samples
            .iter()
            .any(|s| s.name == "grm_rules_mined_total" && s.kind == "counter" && s.value == 12.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "grm_rag_coverage" && s.kind == "gauge" && s.value == 0.75));
        assert!(parse_exposition("grm_orphan 1\n").is_err(), "sample without TYPE");
        assert!(parse_exposition("# TYPE bad-name counter\nbad-name 1\n").is_err());
        assert!(parse_exposition("# TYPE grm_x_total counter\ngrm_x_total -4\n").is_err());
        assert!(parse_exposition("# TYPE grm_x_total counter\ngrm_x_total nan\n").is_err());
    }

    #[test]
    fn exposition_event_cross_check() {
        let counter_ev = |seq: u64, name: &str, value: f64| TelemetryEvent {
            seq,
            kind: TelemetryEvent::COUNTER.into(),
            span: None,
            name: name.into(),
            detail: String::new(),
            value,
        };
        let events = vec![counter_ev(0, "rules_mined", 7.0), counter_ev(1, "rules_mined", 5.0)];
        let good = vec![ExpositionSample {
            name: "grm_rules_mined_total".into(),
            kind: "counter".into(),
            value: 12.0,
        }];
        assert!(check_exposition_against_events(&good, &events).is_empty());
        let bad = vec![ExpositionSample {
            name: "grm_rules_mined_total".into(),
            kind: "counter".into(),
            value: 11.0,
        }];
        assert_eq!(check_exposition_against_events(&bad, &events).len(), 1);
    }

    #[test]
    fn metrics_http_response_routes_by_method_and_path() {
        let body = "grm_x_total 1\n";
        let ok = metrics_http_response(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", body);
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.ends_with(body));
        // A query string still resolves to /metrics.
        let ok = metrics_http_response(b"GET /metrics?debug=1 HTTP/1.1\r\n\r\n", body);
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        let nf = metrics_http_response(b"GET /other HTTP/1.1\r\n\r\n", body);
        assert!(nf.starts_with("HTTP/1.1 404 Not Found\r\n"), "{nf}");
        assert!(!nf.contains("grm_x_total"), "404 must not leak the snapshot");
        let mna = metrics_http_response(b"POST /metrics HTTP/1.1\r\n\r\n", body);
        assert!(mna.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"), "{mna}");
        assert!(mna.contains("Allow: GET\r\n"));
    }

    #[test]
    fn metrics_http_response_rejects_malformed_heads() {
        let body = "grm_x_total 1\n";
        // Empty request, no newline (torn/over-cap line), too few
        // tokens, trailing garbage, non-HTTP version: all 400.
        for head in [
            &b""[..],
            b"GET /metrics HTTP/1.1", // request line never terminated
            b"GET\r\n",
            b"GET /metrics\r\n",
            b"GET /metrics HTTP/1.1 extra\r\n",
            b"GET /metrics SPDY/3\r\n",
        ] {
            let resp = metrics_http_response(head, body);
            assert!(resp.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{head:?} -> {resp}");
        }
    }

    #[test]
    fn metrics_server_end_to_end_routing() {
        use std::net::TcpStream;

        let hub = Arc::new(MetricsHub::new(None, 1, Arc::new(AtomicU64::new(0))));
        hub.offer(&TelemetryEvent {
            seq: 0,
            kind: TelemetryEvent::COUNTER.into(),
            span: None,
            name: "rules_mined".into(),
            detail: String::new(),
            value: 3.0,
        });
        let server = hub.serve("127.0.0.1:0").expect("bind");
        let request = |req: &str| {
            let mut stream = TcpStream::connect(&server.addr).expect("connect");
            stream.write_all(req.as_bytes()).expect("send");
            // Tolerate a post-response reset: the server closes after
            // answering, possibly with unread request bytes pending.
            let mut resp = String::new();
            let mut buf = [0u8; 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => resp.push_str(&String::from_utf8_lossy(&buf[..n])),
                }
            }
            resp
        };
        let ok = request("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("grm_rules_mined_total 3"), "{ok}");
        let nf = request("GET /wrong HTTP/1.1\r\n\r\n");
        assert!(nf.starts_with("HTTP/1.1 404 Not Found\r\n"), "{nf}");
        let mna = request("DELETE /metrics HTTP/1.1\r\n\r\n");
        assert!(mna.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"), "{mna}");
        // A request line exceeding the read cap is answered 400, not
        // buffered until the client gives up.
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * METRICS_HEAD_CAP));
        let bad = request(&huge);
        assert!(bad.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{bad}");
        server.stop();
    }

    #[test]
    fn events_baseline_round_trips_and_checks() {
        let mut counts = BTreeMap::new();
        counts.insert("span_open".to_owned(), 9u64);
        counts.insert("counter".to_owned(), 40u64);
        let baseline = EventsBaseline::from_counts(&counts);
        assert_eq!(baseline.events_total, 49);
        crate::assert_roundtrip(&baseline);
        assert!(baseline.check(&counts).is_empty());
        counts.insert("counter".to_owned(), 41);
        let violations = baseline.check(&counts);
        assert!(violations.iter().any(|v| v.contains("kind counter")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("events_total")), "{violations:?}");
    }
}
