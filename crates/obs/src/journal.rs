//! The serialisable run journal: span tree + counter totals +
//! histograms, written as JSON Lines (one record per line) so partial
//! files stay parseable and `jq`/`grep` work line-wise.

use crate::bus::TelemetryEvent;
use crate::histogram::Histogram;
use crate::lineage::{BoundaryRecord, LineageRecord};
use crate::mem::MemRecord;
use crate::plan::PlanRecord;
use crate::resilience::{ChaosRecord, CheckpointRecord, DegradedRecord, FaultRecord, RetryRecord};

/// One finished (or snapshot-closed) span.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Stable id, in span-open order.
    pub id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Stage name (see DESIGN.md for the Figure-1 mapping).
    pub name: String,
    /// Span start, milliseconds after the recorder was created.
    pub start_ms: f64,
    /// Real wall-clock duration in milliseconds.
    pub real_ms: f64,
    /// Simulated start offset in seconds from the run's sim origin
    /// (schema v7+). Unlike `start_ms` this is pure sim arithmetic —
    /// schedule-independent, so deterministic snapshots keep it — and
    /// it is what `grm trace timeline` reconstructs occupancy from.
    /// Defaults to 0 when parsing pre-v7 journals.
    #[serde(default)]
    pub sim_start_seconds: f64,
    /// Simulated LLM seconds attributed to this span (Table 5 time).
    pub sim_seconds: f64,
    /// Per-span counter increments.
    pub counters: Vec<(String, u64)>,
    /// Per-span gauge values.
    pub gauges: Vec<(String, f64)>,
}

impl SpanRecord {
    /// This span's own increment of `counter` (no child roll-up).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == counter).map(|(_, v)| *v).unwrap_or(0)
    }
}

/// One histogram of the run: a named distribution attributed to a
/// span (`span: Some(id)`) or to the run as a whole (`span: None`).
/// Kept out of [`SpanRecord`] so v1 `Span` lines parse unchanged.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistoRecord {
    /// Owning span id; `None` for the run-wide total.
    pub span: Option<u64>,
    /// Stable metric name (see `Histo::name`).
    pub name: String,
    /// The distribution itself.
    pub histogram: Histogram,
}

/// One line of the JSONL journal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JournalRecord {
    /// Header: schema version and span count, always the first line.
    Meta {
        version: u32,
        spans: usize,
    },
    Span(SpanRecord),
    /// A histogram line (schema v2+), after the spans.
    Histo(HistoRecord),
    /// A query-plan profile line (schema v3+), after the histograms.
    /// v2 readers skip these through their unknown-record path.
    Plan(PlanRecord),
    /// A rule-lineage line (schema v4+), after the plans. v2/v3
    /// readers skip these through their unknown-record path.
    Lineage(LineageRecord),
    /// A window-boundary breakage line (schema v4+), after the
    /// lineage lines. Skipped by older readers like `Lineage`.
    Boundary(BoundaryRecord),
    /// Chaos-run identity line (schema v5+), right after `Meta` so it
    /// survives truncation — everything `--resume` needs to rebuild
    /// the run. Skipped by older readers.
    Chaos(ChaosRecord),
    /// An injected-fault line (schema v5+). Skipped by older readers.
    Fault(FaultRecord),
    /// A retry-verdict line (schema v5+). Skipped by older readers.
    Retry(RetryRecord),
    /// A degraded-unit line (schema v5+). Skipped by older readers.
    Degraded(DegradedRecord),
    /// A completed-unit checkpoint line (schema v5+), replayed by
    /// `grm mine --resume`. Skipped by older readers.
    Checkpoint(CheckpointRecord),
    /// A memory line (schema v6+): per-span allocation deltas, the
    /// run-wide allocator totals, or a deterministic footprint table.
    /// Skipped by older readers.
    Mem(MemRecord),
    /// A live telemetry-bus event line (schema v8+), written by the
    /// `--events` stream sink. Skipped by older readers. The main
    /// `--trace` journal does not carry these — events stream to
    /// their own file so the journal's byte-identity guarantees stay
    /// independent of bus scheduling.
    Event(TelemetryEvent),
    /// Run-wide totals, always the last line.
    Totals {
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, f64)>,
    },
}

/// Variant keys a v8 reader knows; object lines keyed otherwise are
/// future record types and are skipped, not errors.
const KNOWN_RECORD_KEYS: [&str; 14] = [
    "Meta",
    "Span",
    "Histo",
    "Plan",
    "Lineage",
    "Boundary",
    "Chaos",
    "Fault",
    "Retry",
    "Degraded",
    "Checkpoint",
    "Mem",
    "Event",
    "Totals",
];

/// Per-stage timing row derived from the journal — the breakdown
/// embedded in `MiningReport`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    pub stage: String,
    /// Simulated LLM seconds, including child spans.
    pub sim_seconds: f64,
    /// Real wall-clock milliseconds of the stage span.
    pub real_ms: f64,
}

/// A frozen view of one run: every span, the counter totals, the
/// recorded histograms, the query-plan profiles, and the rule
/// lineage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunJournal {
    pub spans: Vec<SpanRecord>,
    pub totals: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histos: Vec<HistoRecord>,
    pub plans: Vec<PlanRecord>,
    pub lineages: Vec<LineageRecord>,
    pub boundaries: Vec<BoundaryRecord>,
    /// Chaos-run identity, when the run injected faults.
    pub chaos: Option<ChaosRecord>,
    pub faults: Vec<FaultRecord>,
    pub retries: Vec<RetryRecord>,
    pub degraded: Vec<DegradedRecord>,
    pub checkpoints: Vec<CheckpointRecord>,
    /// Memory records: per-span allocation deltas, the run-wide
    /// allocator totals, and deterministic footprint tables.
    pub mems: Vec<MemRecord>,
    /// Telemetry-bus events (schema v8+), populated when parsing an
    /// `--events` stream file. The pipeline's own journal snapshot
    /// leaves this empty — events live in their own stream.
    pub events: Vec<TelemetryEvent>,
    /// Parse metadata, not serialised by [`RunJournal::to_jsonl`]:
    /// damaged lines dropped by a lossy parse (truncated tails).
    pub corrupt_lines: u64,
    /// Parse metadata, not serialised: object lines with an unknown
    /// record key, skipped as future schema additions.
    pub unknown_lines: u64,
}

/// Journal schema version, bumped on incompatible record changes.
/// v1: `Meta`/`Span`/`Totals`. v2: adds `Histo` lines. v3: adds
/// `Plan` lines. v4: adds `Lineage` and `Boundary` lines. v5: adds
/// `Chaos`/`Fault`/`Retry`/`Degraded`/`Checkpoint` lines. v6: adds
/// `Mem` lines. v7: adds the `sim_start_seconds` field to `Span`
/// lines (an additive field, not a new record kind — v6 readers
/// ignore it, and v7 readers default it to 0 on older journals).
/// v8: adds `Event` lines (streamed telemetry-bus events, written by
/// `grm mine --events`) — v7 readers skip them.
/// Each version is purely additive, so older journals still parse
/// (they simply carry fewer record kinds) and older readers skip the
/// new lines through their unknown-record path.
pub const JOURNAL_VERSION: u32 = 8;

impl RunJournal {
    /// Run-wide total of `counter` (0 when never recorded).
    pub fn total(&self, counter: &str) -> u64 {
        self.totals.iter().find(|(k, _)| k == counter).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Run-wide value of `gauge`, when set.
    pub fn gauge(&self, gauge: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == gauge).map(|(_, v)| *v)
    }

    /// First span named `name`.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The run-wide histogram named `name`, when recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histos.iter().find(|h| h.span.is_none() && h.name == name).map(|h| &h.histogram)
    }

    /// Histograms attributed to span `id`, in name order.
    pub fn span_histograms(&self, id: u64) -> Vec<&HistoRecord> {
        self.histos.iter().filter(|h| h.span == Some(id)).collect()
    }

    /// The plan record for `scope`, when profiled.
    pub fn plan(&self, scope: &str) -> Option<&PlanRecord> {
        self.plans.iter().find(|p| p.scope == scope)
    }

    /// True when the journal carries v3 `Plan` records at all — the
    /// gate for plan-aware rendering (`grm trace diff` db-hit
    /// columns, `grm trace plans`).
    pub fn has_plans(&self) -> bool {
        !self.plans.is_empty()
    }

    /// The lineage record for `rule` (`rule-<i>`), when recorded.
    pub fn lineage(&self, rule: &str) -> Option<&LineageRecord> {
        self.lineages.iter().find(|l| l.rule == rule)
    }

    /// True when the journal carries v4 `Lineage` records at all —
    /// the gate for lineage-aware rendering (`grm trace lineage`,
    /// `grm explain`).
    pub fn has_lineage(&self) -> bool {
        !self.lineages.is_empty()
    }

    /// True when the journal carries any v5 resilience records — the
    /// gate for fault-aware rendering (`grm trace faults`).
    pub fn has_faults(&self) -> bool {
        self.chaos.is_some()
            || !self.faults.is_empty()
            || !self.retries.is_empty()
            || !self.degraded.is_empty()
    }

    /// True when the journal carries v6 `Mem` records at all — the
    /// gate for memory-aware rendering (`grm trace mem`) and the
    /// silently-off guard of the mem baseline check.
    pub fn has_mem(&self) -> bool {
        !self.mems.is_empty()
    }

    /// True when the journal carries v8 `Event` records at all — the
    /// gate for event-stream rendering (`grm trace tail`).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// True when the journal carries v7 start offsets at all — the
    /// gate for timeline-aware rendering (`grm trace timeline`,
    /// `critical-path`) and the silently-off guard of the timeline
    /// baseline check. Serial runs qualify too: their merge/translate/
    /// evaluate spans start after the mine stage's sim seconds.
    pub fn has_timeline(&self) -> bool {
        self.spans.iter().any(|s| s.sim_start_seconds > 0.0)
    }

    /// The checkpointed payload for `(stage, unit)`, when recorded.
    pub fn checkpoint(&self, stage: &str, unit: u64) -> Option<&CheckpointRecord> {
        self.checkpoints.iter().find(|c| c.stage == stage && c.unit == unit)
    }

    /// Total db-hits per pipeline stage: each plan record is charged
    /// to the root-child span its owning span sits under. Records
    /// outside any span (or under an unknown span id) are charged to
    /// `"(run)"`. Rows come back in stage span-open order.
    pub fn stage_db_hits(&self) -> Vec<(String, u64)> {
        let root = self.spans.iter().find(|s| s.parent.is_none()).map(|s| s.id);
        let stage_of = |mut id: u64| -> Option<&str> {
            loop {
                let span = self.spans.iter().find(|s| s.id == id)?;
                match span.parent {
                    Some(p) if Some(p) == root => return Some(&span.name),
                    Some(p) => id = p,
                    None => return None,
                }
            }
        };
        let mut rows: Vec<(String, u64)> = Vec::new();
        for plan in &self.plans {
            let stage = plan.span.and_then(stage_of).unwrap_or("(run)").to_string();
            match rows.iter_mut().find(|(name, _)| *name == stage) {
                Some((_, hits)) => *hits += plan.db_hits(),
                None => rows.push((stage, plan.db_hits())),
            }
        }
        rows
    }

    /// Spans whose parent is `parent`, in open order.
    pub fn children(&self, parent: &SpanRecord) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(parent.id)).collect()
    }

    /// Simulated seconds of `span` including its whole subtree.
    pub fn subtree_sim_seconds(&self, span: &SpanRecord) -> f64 {
        span.sim_seconds
            + self.children(span).iter().map(|c| self.subtree_sim_seconds(c)).sum::<f64>()
    }

    /// Per-stage rows: the children of the root span, in order. Each
    /// row reports the stage span's *own* simulated seconds — the
    /// pipeline attributes stage-level time explicitly (e.g. `mine`
    /// carries the fleet wall-clock while its `worker-*` children
    /// carry per-replica busy time), so rolling up children here
    /// would double-count.
    pub fn stage_timings(&self) -> Vec<StageTiming> {
        let Some(root) = self.spans.iter().find(|s| s.parent.is_none()) else {
            return Vec::new();
        };
        self.children(root)
            .into_iter()
            .map(|s| StageTiming {
                stage: s.name.clone(),
                sim_seconds: s.sim_seconds,
                real_ms: s.real_ms,
            })
            .collect()
    }

    /// Serialises to JSON Lines: meta, spans, histograms, plans,
    /// lineage, boundaries, resilience, mem, events, totals.
    /// Counter/gauge totals and every
    /// repeated record kind are sorted by stable keys so journals
    /// diff deterministically whatever the worker schedule that
    /// produced them.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |record: &JournalRecord| {
            out.push_str(&serde_json::to_string(record).expect("journal records always serialise"));
            out.push('\n');
        };
        push(&JournalRecord::Meta { version: JOURNAL_VERSION, spans: self.spans.len() });
        if let Some(chaos) = &self.chaos {
            // Right after `Meta`, so a truncated journal still tells
            // `--resume` what run it belonged to.
            push(&JournalRecord::Chaos(chaos.clone()));
        }
        for span in &self.spans {
            push(&JournalRecord::Span(span.clone()));
        }
        let mut histos = self.histos.clone();
        histos.sort_by(|a, b| (a.span, &a.name).cmp(&(b.span, &b.name)));
        for histo in histos {
            push(&JournalRecord::Histo(histo));
        }
        let mut plans = self.plans.clone();
        plans.sort_by(|a, b| (a.span, &a.scope).cmp(&(b.span, &b.scope)));
        for mut plan in plans {
            plan.sort_ops();
            push(&JournalRecord::Plan(plan));
        }
        let mut lineages = self.lineages.clone();
        lineages.sort_by_key(|a| (a.span, a.index));
        for mut lineage in lineages {
            lineage.sort_origins();
            push(&JournalRecord::Lineage(lineage));
        }
        let mut boundaries = self.boundaries.clone();
        boundaries.sort_by(|a, b| {
            (a.span, a.first_window, a.last_window, &a.node).cmp(&(
                b.span,
                b.first_window,
                b.last_window,
                &b.node,
            ))
        });
        for boundary in boundaries {
            push(&JournalRecord::Boundary(boundary));
        }
        let mut faults = self.faults.clone();
        faults.sort_by(|a, b| (&a.stage, a.unit, a.attempt).cmp(&(&b.stage, b.unit, b.attempt)));
        for fault in faults {
            push(&JournalRecord::Fault(fault));
        }
        let mut retries = self.retries.clone();
        retries.sort_by(|a, b| (&a.stage, a.unit).cmp(&(&b.stage, b.unit)));
        for retry in retries {
            push(&JournalRecord::Retry(retry));
        }
        let mut degraded = self.degraded.clone();
        degraded.sort_by(|a, b| (&a.stage, &a.unit).cmp(&(&b.stage, &b.unit)));
        for record in degraded {
            push(&JournalRecord::Degraded(record));
        }
        // Stage-then-unit order puts mine checkpoints before
        // translate checkpoints, so `--resume` replays the longest
        // prefix a truncated journal can still prove.
        let mut checkpoints = self.checkpoints.clone();
        checkpoints.sort_by(|a, b| (&a.stage, a.unit).cmp(&(&b.stage, b.unit)));
        for checkpoint in checkpoints {
            push(&JournalRecord::Checkpoint(checkpoint));
        }
        let mut mems = self.mems.clone();
        mems.sort_by(|a, b| (a.span, &a.kind, &a.component).cmp(&(b.span, &b.kind, &b.component)));
        for mem in mems {
            push(&JournalRecord::Mem(mem));
        }
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.seq);
        for event in events {
            push(&JournalRecord::Event(event));
        }
        push(&JournalRecord::Totals {
            counters: sorted_by_name(&self.totals),
            gauges: sorted_by_name(&self.gauges),
        });
        out
    }

    /// Parses a journal back from its JSONL form. Strict about
    /// damaged lines and unsupported versions, but skips record
    /// variants this reader does not know (future schema additions),
    /// so a reader keeps working on newer journals that only *add*
    /// record types — exactly how v2 readers skip v3 `Plan` lines.
    pub fn from_jsonl(text: &str) -> Result<RunJournal, String> {
        Self::parse_jsonl(text, false)
    }

    /// Lossy variant of [`RunJournal::from_jsonl`] for journals from
    /// crashed runs: a truncated (unparseable) final line is dropped
    /// instead of failing, a missing `Totals` trailer is tolerated,
    /// and future `Meta` versions are accepted best-effort. Dropped
    /// and skipped lines are counted in
    /// [`RunJournal::corrupt_lines`] / [`RunJournal::unknown_lines`]
    /// and surfaced by `grm trace summary`.
    pub fn from_jsonl_lossy(text: &str) -> Result<RunJournal, String> {
        Self::parse_jsonl(text, true)
    }

    fn parse_jsonl(text: &str, lossy: bool) -> Result<RunJournal, String> {
        let lines: Vec<(usize, &str)> =
            text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
        let mut journal = RunJournal::default();
        for (pos, (lineno, line)) in lines.iter().enumerate() {
            let record: JournalRecord = match serde_json::from_str(line) {
                Ok(record) => record,
                Err(e) => {
                    if let Some(key) = leading_object_key(line) {
                        if !KNOWN_RECORD_KEYS.contains(&key) {
                            // Future record variant: skip, but keep
                            // count so the loss is visible.
                            journal.unknown_lines += 1;
                            continue;
                        }
                    }
                    if lossy && pos + 1 == lines.len() {
                        journal.corrupt_lines += 1;
                        break; // truncated tail of a crashed run
                    }
                    return Err(format!("journal line {}: {e}", lineno + 1));
                }
            };
            match record {
                JournalRecord::Meta { version, .. } => {
                    if !(1..=JOURNAL_VERSION).contains(&version) && !lossy {
                        return Err(format!("unsupported journal version {version}"));
                    }
                }
                JournalRecord::Span(span) => journal.spans.push(span),
                JournalRecord::Histo(histo) => journal.histos.push(histo),
                JournalRecord::Plan(plan) => journal.plans.push(plan),
                JournalRecord::Lineage(lineage) => journal.lineages.push(lineage),
                JournalRecord::Boundary(boundary) => journal.boundaries.push(boundary),
                JournalRecord::Chaos(chaos) => journal.chaos = Some(chaos),
                JournalRecord::Fault(fault) => journal.faults.push(fault),
                JournalRecord::Retry(retry) => journal.retries.push(retry),
                JournalRecord::Degraded(record) => journal.degraded.push(record),
                JournalRecord::Checkpoint(checkpoint) => journal.checkpoints.push(checkpoint),
                JournalRecord::Mem(mem) => journal.mems.push(mem),
                JournalRecord::Event(event) => journal.events.push(event),
                JournalRecord::Totals { counters, gauges } => {
                    journal.totals = counters;
                    journal.gauges = gauges;
                }
            }
        }
        Ok(journal)
    }

    /// Human-readable digest for `--trace-summary` and `grm trace
    /// summary`: the span tree with timings, the counter totals, then
    /// the run-wide histogram table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("span tree (sim = simulated LLM seconds, real = host milliseconds):\n");
        for root in self.spans.iter().filter(|s| s.parent.is_none()) {
            self.render_span(root, 1, &mut out);
        }
        out.push_str("counter totals:\n");
        for (name, value) in sorted_by_name(&self.totals) {
            out.push_str(&format!("  {name:<26} {value}\n"));
        }
        for (name, value) in sorted_by_name(&self.gauges) {
            out.push_str(&format!("  {name:<26} {value:.4}\n"));
        }
        if self.has_plans() {
            let slow: Vec<&PlanRecord> = self.plans.iter().filter(|p| p.slow).collect();
            out.push_str(&format!(
                "query plans: {} scopes profiled, {} queries, {} db-hits, {} slow\n",
                self.plans.len(),
                self.plans.iter().map(|p| p.queries).sum::<u64>(),
                self.plans.iter().map(|p| p.db_hits()).sum::<u64>(),
                slow.len()
            ));
            for plan in slow {
                out.push_str(&format!(
                    "  SLOW {:<20} {:>8} db-hits  {:>9.2}ms real\n",
                    plan.scope,
                    plan.db_hits(),
                    plan.total_us as f64 / 1_000.0
                ));
            }
        }
        if self.has_lineage() {
            out.push_str(&format!(
                "rule lineage: {} rules attributed, {} window-boundary breakages\n",
                self.lineages.len(),
                self.boundaries.len()
            ));
        }
        if self.has_faults() {
            let recovered = self.retries.iter().filter(|r| r.recovered).count();
            out.push_str(&format!(
                "faults: {} injected, {} units recovered by retry, {} degraded, {} checkpoints\n",
                self.faults.len(),
                recovered,
                self.degraded.len(),
                self.checkpoints.len()
            ));
        }
        if self.has_mem() {
            let footprint: u64 = self
                .mems
                .iter()
                .filter(|m| m.kind == "footprint")
                .map(|m| m.footprint_bytes())
                .sum();
            let peak = self
                .mems
                .iter()
                .filter(|m| m.kind == "run")
                .map(|m| m.peak_bytes)
                .max()
                .unwrap_or(0);
            out.push_str(&format!(
                "memory: {} mem records, footprint {} bytes, run peak {} bytes\n",
                self.mems.len(),
                footprint,
                peak
            ));
        }
        if self.has_events() {
            out.push_str(&format!("telemetry events: {} streamed\n", self.events.len()));
        }
        if self.corrupt_lines + self.unknown_lines > 0 {
            out.push_str(&format!(
                "skipped lines: {} corrupt dropped, {} unknown record kinds\n",
                self.corrupt_lines, self.unknown_lines
            ));
        }
        let mut run_wide: Vec<&HistoRecord> =
            self.histos.iter().filter(|h| h.span.is_none()).collect();
        run_wide.sort_by(|a, b| a.name.cmp(&b.name));
        if !run_wide.is_empty() {
            out.push_str(&format!(
                "histograms (run-wide):\n  {:<26} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            ));
            for h in run_wide {
                let hist = &h.histogram;
                out.push_str(&format!(
                    "  {:<26} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}\n",
                    h.name,
                    hist.count(),
                    hist.mean(),
                    hist.p50(),
                    hist.p95(),
                    hist.p99(),
                    hist.max()
                ));
            }
        }
        out
    }

    /// Machine-readable counterpart of [`RunJournal::summary`] for
    /// `grm trace summary --json`: stage timings, counter/gauge
    /// totals, run-wide histogram stats, and plan/lineage digests.
    pub fn summary_json(&self) -> JournalSummary {
        let mut run_wide: Vec<&HistoRecord> =
            self.histos.iter().filter(|h| h.span.is_none()).collect();
        run_wide.sort_by(|a, b| a.name.cmp(&b.name));
        JournalSummary {
            journal_version: JOURNAL_VERSION,
            stages: self.stage_timings(),
            counters: sorted_by_name(&self.totals),
            gauges: sorted_by_name(&self.gauges),
            histograms: run_wide
                .iter()
                .map(|h| HistogramSummary {
                    name: h.name.clone(),
                    count: h.histogram.count(),
                    mean: h.histogram.mean(),
                    p50: h.histogram.p50(),
                    p95: h.histogram.p95(),
                    p99: h.histogram.p99(),
                    max: h.histogram.max(),
                })
                .collect(),
            plans: PlanDigest {
                records: self.plans.len() as u64,
                queries: self.plans.iter().map(|p| p.queries).sum(),
                db_hits: self.plans.iter().map(|p| p.db_hits()).sum(),
                slow: self.plans.iter().filter(|p| p.slow).count() as u64,
            },
            lineage: LineageDigest {
                rules: self.lineages.len() as u64,
                boundaries: self.boundaries.len() as u64,
            },
            resilience: ResilienceDigest {
                faults: self.faults.len() as u64,
                recovered: self.retries.iter().filter(|r| r.recovered).count() as u64,
                abandoned: self.retries.iter().filter(|r| !r.recovered).count() as u64,
                degraded: self.degraded.len() as u64,
                checkpoints: self.checkpoints.len() as u64,
                corrupt_lines: self.corrupt_lines,
                unknown_lines: self.unknown_lines,
            },
            mem: MemDigest {
                records: self.mems.len() as u64,
                footprint_bytes: self
                    .mems
                    .iter()
                    .filter(|m| m.kind == "footprint")
                    .map(|m| m.footprint_bytes())
                    .sum(),
                peak_bytes: self
                    .mems
                    .iter()
                    .filter(|m| m.kind == "run")
                    .map(|m| m.peak_bytes)
                    .max()
                    .unwrap_or(0),
            },
        }
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{:<24} sim {:>9.2}s  real {:>9.2}ms\n",
            "",
            span.name,
            span.sim_seconds,
            span.real_ms,
            indent = depth * 2
        ));
        for child in self.children(span) {
            self.render_span(child, depth + 1, out);
        }
    }
}

/// Machine-readable run digest for `grm trace summary --json` —
/// serialise with `serde_json::to_string_pretty`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JournalSummary {
    pub journal_version: u32,
    pub stages: Vec<StageTiming>,
    /// Counter totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Run-wide histogram stats, name-sorted.
    pub histograms: Vec<HistogramSummary>,
    pub plans: PlanDigest,
    pub lineage: LineageDigest,
    pub resilience: ResilienceDigest,
    pub mem: MemDigest,
}

/// Key statistics of one run-wide histogram in a [`JournalSummary`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

/// Query-plan totals in a [`JournalSummary`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanDigest {
    pub records: u64,
    pub queries: u64,
    pub db_hits: u64,
    pub slow: u64,
}

/// Lineage totals in a [`JournalSummary`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LineageDigest {
    pub rules: u64,
    pub boundaries: u64,
}

/// Resilience totals in a [`JournalSummary`]: injected faults, retry
/// verdicts, degraded units, checkpoints, and parse losses.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResilienceDigest {
    pub faults: u64,
    pub recovered: u64,
    pub abandoned: u64,
    pub degraded: u64,
    pub checkpoints: u64,
    pub corrupt_lines: u64,
    pub unknown_lines: u64,
}

/// Memory totals in a [`JournalSummary`]: `Mem` record count, total
/// deterministic footprint bytes, and the run-wide peak.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemDigest {
    pub records: u64,
    pub footprint_bytes: u64,
    pub peak_bytes: u64,
}

/// A name-sorted copy of `(name, value)` pairs — serialisation order
/// must not depend on insertion order.
fn sorted_by_name<V: Clone>(pairs: &[(String, V)]) -> Vec<(String, V)> {
    let mut sorted = pairs.to_vec();
    sorted.sort_by(|(a, _), (b, _)| a.cmp(b));
    sorted
}

/// First key of a single-line JSON object, without a full parse —
/// enough to tell an unknown record variant from plain garbage.
fn leading_object_key(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('{')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}
