//! The serialisable run journal: span tree + counter totals, written
//! as JSON Lines (one record per line) so partial files stay
//! parseable and `jq`/`grep` work line-wise.

/// One finished (or snapshot-closed) span.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Stable id, in span-open order.
    pub id: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Stage name (see DESIGN.md for the Figure-1 mapping).
    pub name: String,
    /// Span start, milliseconds after the recorder was created.
    pub start_ms: f64,
    /// Real wall-clock duration in milliseconds.
    pub real_ms: f64,
    /// Simulated LLM seconds attributed to this span (Table 5 time).
    pub sim_seconds: f64,
    /// Per-span counter increments.
    pub counters: Vec<(String, u64)>,
    /// Per-span gauge values.
    pub gauges: Vec<(String, f64)>,
}

impl SpanRecord {
    /// This span's own increment of `counter` (no child roll-up).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == counter).map(|(_, v)| *v).unwrap_or(0)
    }
}

/// One line of the JSONL journal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum JournalRecord {
    /// Header: schema version and span count, always the first line.
    Meta {
        version: u32,
        spans: usize,
    },
    Span(SpanRecord),
    /// Run-wide totals, always the last line.
    Totals {
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, f64)>,
    },
}

/// Per-stage timing row derived from the journal — the breakdown
/// embedded in `MiningReport`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageTiming {
    pub stage: String,
    /// Simulated LLM seconds, including child spans.
    pub sim_seconds: f64,
    /// Real wall-clock milliseconds of the stage span.
    pub real_ms: f64,
}

/// A frozen view of one run: every span plus the counter totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunJournal {
    pub spans: Vec<SpanRecord>,
    pub totals: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
}

/// Journal schema version, bumped on incompatible record changes.
pub const JOURNAL_VERSION: u32 = 1;

impl RunJournal {
    /// Run-wide total of `counter` (0 when never recorded).
    pub fn total(&self, counter: &str) -> u64 {
        self.totals.iter().find(|(k, _)| k == counter).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Run-wide value of `gauge`, when set.
    pub fn gauge(&self, gauge: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == gauge).map(|(_, v)| *v)
    }

    /// First span named `name`.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Spans whose parent is `parent`, in open order.
    pub fn children(&self, parent: &SpanRecord) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == Some(parent.id)).collect()
    }

    /// Simulated seconds of `span` including its whole subtree.
    pub fn subtree_sim_seconds(&self, span: &SpanRecord) -> f64 {
        span.sim_seconds
            + self.children(span).iter().map(|c| self.subtree_sim_seconds(c)).sum::<f64>()
    }

    /// Per-stage rows: the children of the root span, in order. Each
    /// row reports the stage span's *own* simulated seconds — the
    /// pipeline attributes stage-level time explicitly (e.g. `mine`
    /// carries the fleet wall-clock while its `worker-*` children
    /// carry per-replica busy time), so rolling up children here
    /// would double-count.
    pub fn stage_timings(&self) -> Vec<StageTiming> {
        let Some(root) = self.spans.iter().find(|s| s.parent.is_none()) else {
            return Vec::new();
        };
        self.children(root)
            .into_iter()
            .map(|s| StageTiming {
                stage: s.name.clone(),
                sim_seconds: s.sim_seconds,
                real_ms: s.real_ms,
            })
            .collect()
    }

    /// Serialises to JSON Lines: meta, spans, totals.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |record: &JournalRecord| {
            out.push_str(&serde_json::to_string(record).expect("journal records always serialise"));
            out.push('\n');
        };
        push(&JournalRecord::Meta { version: JOURNAL_VERSION, spans: self.spans.len() });
        for span in &self.spans {
            push(&JournalRecord::Span(span.clone()));
        }
        push(&JournalRecord::Totals { counters: self.totals.clone(), gauges: self.gauges.clone() });
        out
    }

    /// Parses a journal back from its JSONL form.
    pub fn from_jsonl(text: &str) -> Result<RunJournal, String> {
        let mut journal = RunJournal::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: JournalRecord = serde_json::from_str(line)
                .map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
            match record {
                JournalRecord::Meta { version, .. } => {
                    if version != JOURNAL_VERSION {
                        return Err(format!("unsupported journal version {version}"));
                    }
                }
                JournalRecord::Span(span) => journal.spans.push(span),
                JournalRecord::Totals { counters, gauges } => {
                    journal.totals = counters;
                    journal.gauges = gauges;
                }
            }
        }
        Ok(journal)
    }

    /// Human-readable digest for `--trace-summary`: the span tree
    /// with timings, then the counter totals.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("span tree (sim = simulated LLM seconds, real = host milliseconds):\n");
        for root in self.spans.iter().filter(|s| s.parent.is_none()) {
            self.render_span(root, 1, &mut out);
        }
        out.push_str("counter totals:\n");
        for (name, value) in &self.totals {
            out.push_str(&format!("  {name:<26} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:<26} {value:.4}\n"));
        }
        out
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{:<24} sim {:>9.2}s  real {:>9.2}ms\n",
            "",
            span.name,
            span.sim_seconds,
            span.real_ms,
            indent = depth * 2
        ));
        for child in self.children(span) {
            self.render_span(child, depth + 1, out);
        }
    }
}
