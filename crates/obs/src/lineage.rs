//! Rule lineage records — the journal-v4 payload attributing every
//! surviving rule back to the encoded contexts it was mined from and
//! to the error class its Cypher translation fell into.
//!
//! `grm-obs` stays dependency-free, so these are plain mirrors of the
//! pipeline's own types: the pipeline builds one [`LineageRecord`]
//! per selected rule (origins come from `grm-textenc` windows or
//! `grm-vecstore` chunks, the error class from `grm-metrics`
//! classification) and the recorder serialises it as a `Lineage`
//! journal line. Window seams crossed by an encoded pattern are
//! recorded separately as [`BoundaryRecord`] `Boundary` lines — the
//! paper's §4.5 "broken patterns" quantity, one line per breakage.

/// One encoded context a rule was mined from: a sliding window, a
/// retrieved RAG chunk, or the single summary context.
///
/// Id assignment is stable across runs: windows are `window-<index>`
/// in chunk order, RAG chunks are `chunk-<index>` in ingest (= store
/// insertion) order, and the summary strategy's only context is
/// `summary`. Token ranges are half-open offsets into the encoded
/// incident text.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OriginRef {
    /// Stable context id: `window-<i>`, `chunk-<i>`, or `summary`.
    pub id: String,
    /// First token of the context in the encoded text.
    pub start_token: u64,
    /// Context length in tokens.
    pub token_len: u64,
}

/// One `Lineage` journal line: the full ancestry of one rule that
/// survived merge and budget selection — where it was mined, how
/// often duplicates were merged into it, how its translation was
/// classified and corrected, and how it finally scored.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineageRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Dense rule index after merge + budget selection.
    pub index: u64,
    /// Scope label, `rule-<index>` — matches `PlanRecord::scope`, so
    /// lineage joins against query-plan profiles.
    pub rule: String,
    /// The rule's natural-language statement.
    pub nl: String,
    /// Context strategy that produced the origins.
    pub strategy: String,
    /// Contexts the rule (or a merged duplicate) was mined from,
    /// sorted by [`LineageRecord::sort_origins`] at record time.
    pub origins: Vec<OriginRef>,
    /// Times the rule was independently mined before dedup — the
    /// merge ancestry count.
    pub frequency: u64,
    /// Translation attempts: 1 for the initial translation plus one
    /// per correction round applied.
    pub translation_attempts: u64,
    /// Error class of the translation as generated (`correct`,
    /// `syntax_error`, `hallucinated_property`, `wrong_direction`,
    /// `other_semantic`). `correct` is recorded explicitly so the
    /// per-class counters sum to `rules_translated`.
    pub error_class: String,
    /// Error class after automatic correction.
    pub final_class: String,
    /// True when a correction changed the query text.
    pub corrected: bool,
    /// Support (satisfying matches); `None` when the rule was too
    /// broken to score.
    pub support: Option<i64>,
    /// Coverage percentage; `None` when unscored.
    pub coverage_pct: Option<f64>,
    /// Confidence percentage; `None` when unscored.
    pub confidence_pct: Option<f64>,
}

impl LineageRecord {
    /// Sorts origins by (start_token, id) and drops duplicate ids —
    /// journal bytes must not depend on the worker schedule that
    /// mined the duplicates.
    pub fn sort_origins(&mut self) {
        self.origins.sort_by(|a, b| (a.start_token, &a.id).cmp(&(b.start_token, &b.id)));
        self.origins.dedup_by(|a, b| a.id == b.id);
    }
}

/// One `Boundary` journal line: an encoded pattern whose lines span a
/// window seam — the unit the paper's §4.5 counts (6 / 11 / 6 across
/// WWC2019 / Cybersecurity / Twitter at full scale). A breakage is a
/// maximal per-node line block not byte-contained in any single
/// window, so it always overlaps at least two windows.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BoundaryRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Node id of the broken block (`n<id>`), or `-` for a block of
    /// non-node lines.
    pub node: String,
    /// First window (chunk index) the block overlaps.
    pub first_window: u64,
    /// Last window (chunk index) the block overlaps.
    pub last_window: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(id: &str, start: u64) -> OriginRef {
        OriginRef { id: id.into(), start_token: start, token_len: 100 }
    }

    #[test]
    fn sort_origins_orders_and_dedups() {
        let mut rec = LineageRecord {
            origins: vec![
                origin("window-2", 1800),
                origin("window-0", 0),
                origin("window-2", 1800),
                origin("window-1", 900),
            ],
            ..LineageRecord::default()
        };
        rec.sort_origins();
        let ids: Vec<&str> = rec.origins.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, ["window-0", "window-1", "window-2"]);
    }

    #[test]
    fn records_round_trip_through_serde() {
        let mut rec = LineageRecord {
            span: Some(4),
            index: 0,
            rule: "rule-0".into(),
            nl: "every Person has a name".into(),
            strategy: "rag".into(),
            origins: vec![origin("chunk-3", 600)],
            frequency: 2,
            translation_attempts: 2,
            error_class: "syntax_error".into(),
            final_class: "correct".into(),
            corrected: true,
            support: Some(120),
            coverage_pct: Some(100.0),
            confidence_pct: Some(98.5),
        };
        rec.sort_origins();
        crate::assert_roundtrip(&rec);
        crate::assert_roundtrip(&BoundaryRecord {
            span: Some(2),
            node: "n14".into(),
            first_window: 0,
            last_window: 1,
        });
    }
}
