//! Resilience records — the journal-v5 payload that makes failure
//! observable, recoverable, and deterministically reproducible.
//!
//! `grm-obs` stays dependency-free, so these are plain mirrors of the
//! resilience layer's own types: `grm-resil` plans the faults, the
//! pipeline emits one [`FaultRecord`] per injected transient error,
//! one [`RetryRecord`] per unit that needed more than one attempt,
//! one [`DegradedRecord`] per unit the pipeline gave up on, and one
//! [`CheckpointRecord`] per completed LLM unit so `grm mine --resume`
//! can replay finished work from a (possibly truncated) journal.

/// One `Chaos` journal line: the chaos run's identity — everything a
/// resume needs to reconstruct the exact same run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosRecord {
    /// Pipeline run seed (drives `SimLlm` and budget draws).
    pub run_seed: u64,
    /// Fault-stream seed, independent of the run seed.
    pub fault_seed: u64,
    /// Per-attempt fault probability in `[0, 1]`.
    pub fault_rate: f64,
    /// Retries after the first attempt before a unit is abandoned.
    pub max_retries: u32,
    /// Consecutive abandonments that trip a stage breaker.
    pub breaker_threshold: u32,
    /// Model name, e.g. `Llama3-70B`.
    pub model: String,
    /// Context strategy name, e.g. `Sliding Window Attention`.
    pub strategy: String,
    /// Prompting mode name, e.g. `Zero-shot`.
    pub prompting: String,
    /// Node count of the mined graph — resume sanity check.
    pub graph_nodes: u64,
    /// Edge count of the mined graph — resume sanity check.
    pub graph_edges: u64,
}

/// One `Fault` journal line: a single injected transient error on one
/// attempt of one unit.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Stage name: `mine`, `translate`, or `evaluate`.
    pub stage: String,
    /// Unit key: context index (mine) or rule index (translate,
    /// evaluate).
    pub unit: u64,
    /// Zero-based attempt the fault hit.
    pub attempt: u64,
    /// Fault kind: `timeout`, `rate_limit`, `garbled`, or
    /// `query_transient`.
    pub kind: String,
    /// Simulated seconds lost to the fault itself.
    pub cost_seconds: f64,
    /// Backoff charged before the next attempt (0 when none follows).
    pub backoff_seconds: f64,
}

/// One `Retry` journal line: the terminal retry verdict for a unit
/// that faulted at least once.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Stage name: `mine`, `translate`, or `evaluate`.
    pub stage: String,
    /// Unit key within the stage.
    pub unit: u64,
    /// Attempts made, including the successful one if any.
    pub attempts: u64,
    /// True when a retry eventually succeeded; false when the unit
    /// was abandoned after exhausting its retries.
    pub recovered: bool,
}

/// One `Degraded` journal line: a unit the pipeline gave up on and
/// worked around — a skipped window, a dropped rule, or an unscored
/// evaluation. Partial results beat a dead run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradedRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Stage name: `mine`, `translate`, or `evaluate`.
    pub stage: String,
    /// Human-stable unit label: `context-<i>` or `rule-<i>`.
    pub unit: String,
    /// Why the unit degraded: `retries_exhausted` or `breaker_open`.
    pub reason: String,
}

/// One `Checkpoint` journal line: the full serialized response of a
/// completed LLM unit, written so `--resume` can replay it without
/// re-running the model.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CheckpointRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// Stage name: `mine` or `translate` (evaluation is cheap enough
    /// to re-run).
    pub stage: String,
    /// Unit key within the stage.
    pub unit: u64,
    /// JSON-serialized stage response (`MiningResponse` or
    /// `TranslationResponse`), opaque to `grm-obs`.
    pub payload: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_serde() {
        crate::assert_roundtrip(&ChaosRecord {
            run_seed: 42,
            fault_seed: 7,
            fault_rate: 0.2,
            max_retries: 3,
            breaker_threshold: 4,
            model: "Llama3-70B".into(),
            strategy: "Sliding Window Attention".into(),
            prompting: "Zero-shot".into(),
            graph_nodes: 1200,
            graph_edges: 5400,
        });
        crate::assert_roundtrip(&FaultRecord {
            span: Some(3),
            stage: "mine".into(),
            unit: 5,
            attempt: 1,
            kind: "timeout".into(),
            cost_seconds: 20.0,
            backoff_seconds: 1.1,
        });
        crate::assert_roundtrip(&RetryRecord {
            span: Some(3),
            stage: "mine".into(),
            unit: 5,
            attempts: 3,
            recovered: true,
        });
        crate::assert_roundtrip(&DegradedRecord {
            span: Some(4),
            stage: "translate".into(),
            unit: "rule-2".into(),
            reason: "retries_exhausted".into(),
        });
        crate::assert_roundtrip(&CheckpointRecord {
            span: Some(3),
            stage: "mine".into(),
            unit: 0,
            payload: "{\"rules\":[]}".into(),
        });
    }
}
