//! Query-plan profile records — the journal-v3 payload carrying
//! Neo4j-`PROFILE`-style operator statistics from the Cypher engine.
//!
//! `grm-obs` stays dependency-free, so these are plain-`u64` mirrors
//! of the profiler's own types: the engine (`grm-cypher`) converts
//! its `QueryProfile` into [`PlanOpRecord`] rows, a scorer absorbs
//! the rows of every query it runs for one rule into a single
//! [`PlanRecord`], and the recorder attaches that record to the
//! rule's span and serialises it as a `Plan` journal line.

/// One operator of an executed query plan, aggregated across every
/// call and every query absorbed into the owning [`PlanRecord`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanOpRecord {
    /// Slash-joined position in the plan tree, root first (e.g.
    /// `"ProduceResults/Projection/Filter/Expand(r)"`). Unique within
    /// a record; merge key for [`PlanRecord::absorb`].
    pub path: String,
    /// Operator name alone (`NodeByLabelScan`, `Expand`, `Filter`,
    /// `Projection`, `EagerAggregation`, ...).
    pub op: String,
    /// Operator argument rendered from the AST, e.g. `(p:Person)`.
    pub detail: String,
    /// Times the operator ran (per incoming row for scans/expands).
    pub calls: u64,
    /// Rows the operator consumed from its child.
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows: u64,
    /// Node accesses (label-index or full scans).
    pub db_nodes: u64,
    /// Edge accesses (expansion candidates examined).
    pub db_edges: u64,
    /// Property-map lookups.
    pub db_props: u64,
    /// Real self-time in microseconds (exclusive of children).
    pub self_us: u64,
    /// Deterministic simulated self-cost in microseconds, derived
    /// from db-hits and rows — the CI-gateable counterpart of
    /// `self_us`.
    pub sim_us: u64,
}

impl PlanOpRecord {
    /// Total store accesses of this operator.
    pub fn db_hits(&self) -> u64 {
        self.db_nodes + self.db_edges + self.db_props
    }

    fn merge(&mut self, other: &PlanOpRecord) {
        self.calls += other.calls;
        self.rows_in += other.rows_in;
        self.rows += other.rows;
        self.db_nodes += other.db_nodes;
        self.db_edges += other.db_edges;
        self.db_props += other.db_props;
        self.self_us += other.self_us;
        self.sim_us += other.sim_us;
    }
}

/// One `Plan` journal line: the merged profile of every query
/// executed for one scope (typically one rule), attached to a span.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanRecord {
    /// Owning span id; `None` when recorded outside any span.
    pub span: Option<u64>,
    /// What was profiled — the pipeline uses `rule-<i>`, ad-hoc
    /// callers a query digest.
    pub scope: String,
    /// Queries absorbed into this record.
    pub queries: u64,
    /// Result rows across those queries.
    pub rows: u64,
    /// Real inclusive time of those queries, microseconds.
    pub total_us: u64,
    /// Deterministic simulated cost of those queries, microseconds.
    pub sim_us: u64,
    /// True when the slow-query policy flagged this record.
    pub slow: bool,
    /// Per-operator statistics, sorted by `path` at serialisation.
    pub ops: Vec<PlanOpRecord>,
}

impl PlanRecord {
    /// An empty record for `scope`; fill it with [`absorb`].
    ///
    /// [`absorb`]: PlanRecord::absorb
    pub fn new(scope: impl Into<String>) -> PlanRecord {
        PlanRecord { scope: scope.into(), ..PlanRecord::default() }
    }

    /// Total store accesses across all operators.
    pub fn db_hits(&self) -> u64 {
        self.ops.iter().map(|o| o.db_hits()).sum()
    }

    /// Folds one executed query's profile into this record: operators
    /// merge by `path`, totals accumulate. `rows` is the query's
    /// result-row count, `total_us`/`sim_us` its inclusive real and
    /// simulated time.
    pub fn absorb(&mut self, ops: Vec<PlanOpRecord>, rows: u64, total_us: u64, sim_us: u64) {
        self.queries += 1;
        self.rows += rows;
        self.total_us += total_us;
        self.sim_us += sim_us;
        for op in ops {
            match self.ops.iter_mut().find(|o| o.path == op.path) {
                Some(existing) => existing.merge(&op),
                None => self.ops.push(op),
            }
        }
    }

    /// Sorts operators by path — journal bytes must not depend on the
    /// order queries were absorbed.
    pub fn sort_ops(&mut self) {
        self.ops.sort_by(|a, b| a.path.cmp(&b.path));
    }
}

/// Thresholds above which a profiled query scope is flagged as slow
/// (`PlanRecord::slow`, `cypher_slow_queries` counter, run summary).
/// Unset fields never flag.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlowQueryPolicy {
    /// Flag scopes whose real inclusive time exceeds this many
    /// milliseconds.
    pub max_millis: Option<f64>,
    /// Flag scopes whose total db-hits exceed this count.
    pub max_db_hits: Option<u64>,
}

impl SlowQueryPolicy {
    /// True when no threshold is set (nothing ever flags).
    pub fn is_empty(&self) -> bool {
        self.max_millis.is_none() && self.max_db_hits.is_none()
    }

    /// Does `record` breach any configured threshold?
    pub fn is_slow(&self, record: &PlanRecord) -> bool {
        let millis = record.total_us as f64 / 1_000.0;
        self.max_millis.is_some_and(|t| millis > t)
            || self.max_db_hits.is_some_and(|t| record.db_hits() > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(path: &str, hits: u64) -> PlanOpRecord {
        PlanOpRecord {
            path: path.into(),
            op: path.rsplit('/').next().unwrap().into(),
            calls: 1,
            rows_in: 2,
            rows: 1,
            db_nodes: hits,
            self_us: 5,
            sim_us: 3,
            ..PlanOpRecord::default()
        }
    }

    #[test]
    fn absorb_merges_by_path() {
        let mut rec = PlanRecord::new("rule-0");
        rec.absorb(vec![op("Root", 1), op("Root/Scan", 4)], 1, 100, 50);
        rec.absorb(vec![op("Root/Scan", 6), op("Root/Filter", 2)], 2, 200, 70);
        assert_eq!(rec.queries, 2);
        assert_eq!(rec.rows, 3);
        assert_eq!(rec.total_us, 300);
        assert_eq!(rec.sim_us, 120);
        assert_eq!(rec.ops.len(), 3);
        let scan = rec.ops.iter().find(|o| o.path == "Root/Scan").unwrap();
        assert_eq!(scan.db_nodes, 10);
        assert_eq!(scan.calls, 2);
        assert_eq!(rec.db_hits(), 13);
    }

    #[test]
    fn sort_ops_is_by_path() {
        let mut rec = PlanRecord::new("x");
        rec.absorb(vec![op("b", 0), op("a", 0), op("a/c", 0)], 0, 0, 0);
        rec.sort_ops();
        let paths: Vec<&str> = rec.ops.iter().map(|o| o.path.as_str()).collect();
        assert_eq!(paths, ["a", "a/c", "b"]);
    }

    #[test]
    fn records_round_trip_through_serde() {
        let mut rec = PlanRecord::new("rule-0");
        rec.absorb(vec![op("Root", 1), op("Root/Scan", 4)], 1, 100, 50);
        rec.sort_ops();
        crate::assert_roundtrip(&rec);
    }

    #[test]
    fn slow_query_policy_thresholds() {
        let mut rec = PlanRecord::new("rule-1");
        rec.absorb(vec![op("Root", 100)], 1, 2_500, 0);
        assert!(!SlowQueryPolicy::default().is_slow(&rec));
        assert!(SlowQueryPolicy::default().is_empty());
        let by_time = SlowQueryPolicy { max_millis: Some(2.0), ..Default::default() };
        assert!(by_time.is_slow(&rec));
        let by_hits = SlowQueryPolicy { max_db_hits: Some(99), ..Default::default() };
        assert!(by_hits.is_slow(&rec));
        let lenient = SlowQueryPolicy { max_millis: Some(3.0), max_db_hits: Some(100) };
        assert!(!lenient.is_slow(&rec));
    }
}
