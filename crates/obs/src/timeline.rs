//! Timeline analytics: per-worker occupancy lanes, the critical path
//! through the span tree, and utilization metrics — the machinery
//! behind `grm trace timeline` and `grm trace critical-path`.
//!
//! Everything here is built from the v7 `sim_start_seconds` offsets
//! the recorder stamps on spans: a span occupies the half-open sim
//! interval `[start, start + sim_seconds)`. Like the rest of the
//! analytics layer this reads only frozen [`RunJournal`]s, and every
//! derived quantity is pure sim arithmetic — deterministic for a
//! fixed seed/scale, which is what lets `BENCH_timeline.json` be
//! byte-exact across machines.

use crate::analytics::relative_span_path;
use crate::journal::{RunJournal, SpanRecord};

/// Comparison slack for matching span boundaries on the sim axis.
/// Starts are stamped with the exact same f64 additions that produce
/// span ends, so equality normally holds exactly; the epsilon only
/// absorbs journals whose offsets were re-derived through a decimal
/// round-trip.
const EPS: f64 = 1e-9;

/// Absolute end of `span` on the simulated axis.
fn span_end(span: &SpanRecord) -> f64 {
    span.sim_start_seconds + span.sim_seconds
}

/// Depth of `span` below the root (0 = root).
fn span_depth(journal: &RunJournal, span: &SpanRecord) -> usize {
    let mut depth = 0usize;
    let mut parent = span.parent;
    while let Some(pid) = parent {
        depth += 1;
        parent = journal.spans.iter().find(|s| s.id == pid).and_then(|s| s.parent);
    }
    depth
}

/// One worker's occupancy lane: when it started, how long it was
/// busy, and how much of the run wall-clock it sat idle.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkerLane {
    /// Span path relative to the root (`mine/worker-0`, …).
    pub name: String,
    /// Simulated start offset of the lane's busy segment.
    pub start_seconds: f64,
    /// Simulated busy time (the worker span's own sim seconds).
    pub busy_seconds: f64,
    /// Simulated idle time over the whole run: `wall − busy`.
    pub idle_seconds: f64,
    /// `busy / wall` — the lane's utilization of the run wall-clock.
    pub busy_fraction: f64,
}

/// One top-level stage segment on the sim axis, in span-open order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSegment {
    pub stage: String,
    pub start_seconds: f64,
    /// The stage span's *own* simulated seconds (for `mine` that is
    /// the fleet wall-clock, not the summed worker compute).
    pub seconds: f64,
}

/// Reconstructed run timeline: wall-clock, total compute, effective
/// parallel speedup, per-worker occupancy lanes, and the top-level
/// stage segments.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimelineReport {
    /// Simulated run wall-clock: the latest span end.
    pub wall_seconds: f64,
    /// Total simulated compute: the summed sim seconds of spans whose
    /// time is not already rolled up by an instrumented child (the
    /// `mine` stage span carries the fleet wall-clock while its
    /// workers carry busy time — counting both would double-charge).
    pub compute_seconds: f64,
    /// Effective parallel speedup, `compute / wall` (1.0 for a serial
    /// run up to bookkeeping, >1 when workers overlap).
    pub speedup: f64,
    /// Worker occupancy lanes, in span-open order.
    pub workers: Vec<WorkerLane>,
    /// Top-level stage segments, in span-open order.
    pub stages: Vec<StageSegment>,
}

impl TimelineReport {
    /// Reconstructs the timeline from `journal`'s span offsets.
    pub fn from_journal(journal: &RunJournal) -> TimelineReport {
        let wall_seconds = journal.spans.iter().map(span_end).fold(0.0, f64::max);
        let compute_seconds: f64 = journal
            .spans
            .iter()
            .filter(|s| !journal.children(s).iter().any(|c| c.sim_seconds > 0.0))
            .map(|s| s.sim_seconds)
            .sum();
        let speedup = if wall_seconds > 0.0 { compute_seconds / wall_seconds } else { 0.0 };
        let workers = journal
            .spans
            .iter()
            .filter(|s| s.name.starts_with("worker-"))
            .map(|s| WorkerLane {
                name: relative_span_path(journal, s),
                start_seconds: s.sim_start_seconds,
                busy_seconds: s.sim_seconds,
                idle_seconds: (wall_seconds - s.sim_seconds).max(0.0),
                busy_fraction: if wall_seconds > 0.0 {
                    (s.sim_seconds / wall_seconds).min(1.0)
                } else {
                    0.0
                },
            })
            .collect();
        let stages = match journal.spans.iter().find(|s| s.parent.is_none()) {
            Some(root) => journal
                .children(root)
                .into_iter()
                .map(|s| StageSegment {
                    stage: s.name.clone(),
                    start_seconds: s.sim_start_seconds,
                    seconds: s.sim_seconds,
                })
                .collect(),
            None => Vec::new(),
        };
        TimelineReport { wall_seconds, compute_seconds, speedup, workers, stages }
    }

    /// True when the journal carried nothing to place on a timeline.
    pub fn is_empty(&self) -> bool {
        self.wall_seconds <= 0.0
    }

    /// Gantt-style text table: one occupancy lane per stage and per
    /// worker (workers capped at `top`), plus the utilization summary.
    pub fn render(&self, top: usize) -> String {
        const WIDTH: usize = 32;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("timeline: journal carries no simulated time\n");
            return out;
        }
        out.push_str(&format!(
            "timeline: wall {:.3}s sim, compute {:.3}s, speedup {:.2}x ({} worker lane{})\n\n",
            self.wall_seconds,
            self.compute_seconds,
            self.speedup,
            self.workers.len(),
            if self.workers.len() == 1 { "" } else { "s" }
        ));
        let name_w = self
            .stages
            .iter()
            .map(|s| s.stage.len())
            .chain(self.workers.iter().map(|w| w.name.len()))
            .chain(["lane".len()])
            .max()
            .unwrap_or(4);
        out.push_str(&format!(
            "  {:<name_w$}  {:>10}  {:>10}  {:>5}  occupancy\n",
            "lane", "start", "busy", "util"
        ));
        let bar = |start: f64, seconds: f64| -> String {
            let lo = (((start / self.wall_seconds) * WIDTH as f64).floor() as usize).min(WIDTH - 1);
            let mut hi = ((((start + seconds) / self.wall_seconds) * WIDTH as f64).ceil() as usize)
                .min(WIDTH);
            // A non-empty segment always paints at least one cell; a
            // zero-cost one (merge) paints none.
            if seconds > 0.0 {
                hi = hi.max(lo + 1);
            } else {
                hi = lo;
            }
            let mut cells = vec!['.'; WIDTH];
            for cell in cells.iter_mut().take(hi).skip(lo) {
                *cell = '#';
            }
            cells.into_iter().collect()
        };
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<name_w$}  {:>9.3}s  {:>9.3}s  {:>4.0}%  |{}|\n",
                s.stage,
                s.start_seconds,
                s.seconds,
                100.0 * s.seconds / self.wall_seconds,
                bar(s.start_seconds, s.seconds)
            ));
        }
        for w in self.workers.iter().take(top) {
            out.push_str(&format!(
                "  {:<name_w$}  {:>9.3}s  {:>9.3}s  {:>4.0}%  |{}|\n",
                w.name,
                w.start_seconds,
                w.busy_seconds,
                100.0 * w.busy_fraction,
                bar(w.start_seconds, w.busy_seconds)
            ));
        }
        if self.workers.len() > top {
            out.push_str(&format!("  … {} more worker lane(s)\n", self.workers.len() - top));
        }
        out
    }
}

/// One span on a critical-path chain.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalPathStep {
    /// Span path relative to the root (`mine/worker-2`, `evaluate`).
    pub path: String,
    pub start_seconds: f64,
    pub seconds: f64,
}

/// A back-to-back chain of spans ending at `end_seconds` — for the
/// top chain, the critical path that bounds the run wall-clock.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalPathChain {
    /// Sim time the chain ends at.
    pub end_seconds: f64,
    /// Summed sim seconds of the chain's steps.
    pub seconds: f64,
    /// Steps in chronological order (earliest first).
    pub steps: Vec<CriticalPathStep>,
}

/// Critical-path chains through the span tree, longest-ending first.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalPathReport {
    pub wall_seconds: f64,
    pub chains: Vec<CriticalPathChain>,
}

impl CriticalPathReport {
    /// Walks the span tree backwards from each distinct span end
    /// time: at time `t`, the deepest span with simulated time that
    /// ends at `t` is the one that was holding the run up, and the
    /// walk continues from that span's start. The chain from the
    /// latest end time is *the* critical path — the sequence of spans
    /// that bounds the run wall-clock.
    pub fn from_journal(journal: &RunJournal) -> CriticalPathReport {
        let wall_seconds = journal.spans.iter().map(span_end).fold(0.0, f64::max);
        let mut ends: Vec<f64> =
            journal.spans.iter().filter(|s| s.sim_seconds > 0.0).map(span_end).collect();
        ends.sort_by(|a, b| b.partial_cmp(a).expect("sim times are finite"));
        ends.dedup_by(|a, b| (*a - *b).abs() <= EPS);
        let chains = ends
            .into_iter()
            .map(|end| {
                let steps = walk_back(journal, end);
                CriticalPathChain {
                    end_seconds: end,
                    seconds: steps.iter().map(|s| s.seconds).sum(),
                    steps,
                }
            })
            .collect();
        CriticalPathReport { wall_seconds, chains }
    }

    /// True when no span carried simulated time.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Text table of the top `top` chains.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("critical path: journal carries no simulated time\n");
            return out;
        }
        for (i, chain) in self.chains.iter().take(top).enumerate() {
            let share = if self.wall_seconds > 0.0 {
                100.0 * chain.end_seconds / self.wall_seconds
            } else {
                0.0
            };
            if i == 0 {
                out.push_str(&format!(
                    "critical path: {:.3}s over {} span{} ({:.1}% of wall {:.3}s)\n",
                    chain.seconds,
                    chain.steps.len(),
                    if chain.steps.len() == 1 { "" } else { "s" },
                    share,
                    self.wall_seconds
                ));
            } else {
                out.push_str(&format!(
                    "chain {}: ends {:.3}s ({:.1}% of wall), {:.3}s on path\n",
                    i + 1,
                    chain.end_seconds,
                    share,
                    chain.seconds
                ));
            }
            let name_w =
                chain.steps.iter().map(|s| s.path.len()).max().unwrap_or(4).max("span".len());
            for step in &chain.steps {
                out.push_str(&format!(
                    "  {:<name_w$}  {:>9.3}s  +{:.3}s  ({:.1}% of chain)\n",
                    step.path,
                    step.start_seconds,
                    step.seconds,
                    if chain.seconds > 0.0 { 100.0 * step.seconds / chain.seconds } else { 0.0 }
                ));
            }
        }
        if self.chains.len() > top {
            out.push_str(&format!("… {} more chain(s)\n", self.chains.len() - top));
        }
        out
    }
}

/// Backward greedy walk from sim time `end`: repeatedly pick the
/// deepest span with `sim_seconds > 0` whose end matches the current
/// time and step to its start, until the sim origin (or a gap no
/// span explains — sequential stages stamped by the pipeline leave
/// none).
fn walk_back(journal: &RunJournal, end: f64) -> Vec<CriticalPathStep> {
    let mut steps = Vec::new();
    let mut t = end;
    while t > EPS {
        let Some(span) = journal
            .spans
            .iter()
            .filter(|s| s.sim_seconds > 0.0 && (span_end(s) - t).abs() <= EPS)
            .max_by_key(|s| span_depth(journal, s))
        else {
            break;
        };
        steps.push(CriticalPathStep {
            path: relative_span_path(journal, span),
            start_seconds: span.sim_start_seconds,
            seconds: span.sim_seconds,
        });
        t = span.sim_start_seconds;
    }
    steps.reverse();
    steps
}

/// One frozen worker lane of a [`TimelineBaseline`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselineLane {
    pub name: String,
    pub start_seconds: f64,
    pub busy_seconds: f64,
}

/// A committed timeline baseline: wall/compute/speedup, every worker
/// lane, and the critical-path span sequence. Written by
/// `repro --timeline-baseline`, consumed by `grm trace timeline
/// --check` in CI. All quantities are pure sim arithmetic, so the
/// file is byte-deterministic for a fixed seed and scale.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimelineBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    pub wall_seconds: f64,
    pub compute_seconds: f64,
    pub speedup: f64,
    /// Worker lanes of the snapshot run, name-sorted.
    pub workers: Vec<BaselineLane>,
    /// Span paths of the critical path, in chronological order.
    pub critical_path: Vec<String>,
    /// Summed sim seconds of the critical path.
    pub critical_seconds: f64,
}

impl TimelineBaseline {
    /// Freezes the journal's timeline into a baseline snapshot.
    pub fn from_journal(journal: &RunJournal) -> TimelineBaseline {
        let report = TimelineReport::from_journal(journal);
        let critical = CriticalPathReport::from_journal(journal);
        let top = critical.chains.first();
        let mut workers: Vec<BaselineLane> = report
            .workers
            .iter()
            .map(|w| BaselineLane {
                name: w.name.clone(),
                start_seconds: w.start_seconds,
                busy_seconds: w.busy_seconds,
            })
            .collect();
        workers.sort_by(|a, b| a.name.cmp(&b.name));
        TimelineBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            wall_seconds: report.wall_seconds,
            compute_seconds: report.compute_seconds,
            speedup: report.speedup,
            workers,
            critical_path: top
                .map(|c| c.steps.iter().map(|s| s.path.clone()).collect())
                .unwrap_or_default(),
            critical_seconds: top.map(|c| c.seconds).unwrap_or(0.0),
        }
    }

    /// Checks `journal` against this baseline: the critical-path span
    /// sequence and the worker-lane name set must match **exactly**
    /// (structure is deterministic for a fixed seed and worker
    /// count), wall-clock and per-lane busy seconds must not exceed
    /// the baseline by more than `tolerance` (a fraction), and the
    /// speedup must not fall below the baseline by more than
    /// `tolerance`. A journal with no start offsets at all fails when
    /// the baseline has a timeline — offset stamping silently turning
    /// off must not read as a pass. Returns the violations (empty =
    /// pass).
    pub fn check(&self, journal: &RunJournal, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.wall_seconds > 0.0 && !journal.has_timeline() {
            violations.push(
                "baseline has a timeline but the journal carries no span start offsets \
                 (was the run recorded by a pre-v7 build?)"
                    .to_owned(),
            );
            return violations;
        }
        let report = TimelineReport::from_journal(journal);
        for (name, base, now) in [
            ("wall-clock", self.wall_seconds, report.wall_seconds),
            ("compute", self.compute_seconds, report.compute_seconds),
        ] {
            if base > 0.0 && now > base * (1.0 + tolerance) {
                violations.push(format!(
                    "{name}: {now:.3}s exceeds baseline {base:.3}s by more than {:.0}%",
                    tolerance * 100.0
                ));
            }
        }
        if self.speedup > 0.0 && report.speedup < self.speedup * (1.0 - tolerance) {
            violations.push(format!(
                "speedup: {:.3}x fell below baseline {:.3}x by more than {:.0}%",
                report.speedup,
                self.speedup,
                tolerance * 100.0
            ));
        }
        let mut lanes: Vec<&WorkerLane> = report.workers.iter().collect();
        lanes.sort_by(|a, b| a.name.cmp(&b.name));
        for base in &self.workers {
            let Some(now) = lanes.iter().find(|l| l.name == base.name) else {
                violations.push(format!("worker lane `{}` missing from the run", base.name));
                continue;
            };
            if base.busy_seconds > 0.0 && now.busy_seconds > base.busy_seconds * (1.0 + tolerance) {
                violations.push(format!(
                    "worker lane `{}`: busy {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                    base.name,
                    now.busy_seconds,
                    base.busy_seconds,
                    tolerance * 100.0
                ));
            }
        }
        for lane in &lanes {
            if !self.workers.iter().any(|w| w.name == lane.name) {
                violations.push(format!("worker lane `{}` missing from the baseline", lane.name));
            }
        }
        let critical = CriticalPathReport::from_journal(journal);
        let now_path: Vec<String> = critical
            .chains
            .first()
            .map(|c| c.steps.iter().map(|s| s.path.clone()).collect())
            .unwrap_or_default();
        if now_path != self.critical_path {
            violations.push(format!(
                "critical path changed: run walks {:?}, baseline walks {:?}",
                now_path, self.critical_path
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    /// A parallel-shaped run: two workers under `mine` (busy 6s and
    /// 4s from the sim origin), a zero-cost `merge`, `translate`
    /// (2s), and `evaluate` (3s) — wall 11s, compute 15s.
    fn sample(scale: f64) -> RunJournal {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        for (w, busy) in [(0u64, 6.0), (1, 4.0)] {
            let worker = mine.scope().span_at(&format!("worker-{w}"), 0.0);
            worker.scope().add_sim_seconds(scale * busy);
            worker.finish();
        }
        mine.scope().add_sim_seconds(scale * 6.0);
        mine.finish();
        let merge = root.scope().span_at("merge", scale * 6.0);
        merge.finish();
        let translate = root.scope().span_at("translate", scale * 6.0);
        translate.scope().add_sim_seconds(scale * 2.0);
        translate.finish();
        let evaluate = root.scope().span_at("evaluate", scale * 8.0);
        evaluate.scope().add_sim_seconds(scale * 3.0);
        evaluate.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn timeline_reconstructs_wall_compute_and_speedup() {
        let report = TimelineReport::from_journal(&sample(1.0));
        assert!((report.wall_seconds - 11.0).abs() < 1e-9, "{}", report.wall_seconds);
        // Workers (6 + 4) + translate 2 + evaluate 3; the mine stage
        // span's fleet wall-clock is rolled up, not double-counted.
        assert!((report.compute_seconds - 15.0).abs() < 1e-9, "{}", report.compute_seconds);
        assert!((report.speedup - 15.0 / 11.0).abs() < 1e-9);
        assert_eq!(report.workers.len(), 2);
        let w0 = &report.workers[0];
        assert_eq!(w0.name, "mine/worker-0");
        assert!((w0.busy_fraction - 6.0 / 11.0).abs() < 1e-9);
        assert!((w0.idle_seconds - 5.0).abs() < 1e-9);
        // Stage segments carry the stamped offsets.
        let eval = report.stages.iter().find(|s| s.stage == "evaluate").unwrap();
        assert!((eval.start_seconds - 8.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_walks_the_bounding_chain() {
        let report = CriticalPathReport::from_journal(&sample(1.0));
        let top = &report.chains[0];
        let paths: Vec<&str> = top.steps.iter().map(|s| s.path.as_str()).collect();
        // The slowest worker, not the mine stage span, bounds the run.
        assert_eq!(paths, ["mine/worker-0", "translate", "evaluate"]);
        assert!((top.seconds - 11.0).abs() < 1e-9, "{}", top.seconds);
        assert!((top.end_seconds - report.wall_seconds).abs() < 1e-9);
        // Secondary chains end earlier and never exceed the wall.
        for chain in &report.chains[1..] {
            assert!(chain.end_seconds < report.wall_seconds + 1e-9);
        }
    }

    #[test]
    fn renders_are_stable_and_name_lanes() {
        let report = TimelineReport::from_journal(&sample(1.0));
        let text = report.render(8);
        assert!(text.contains("mine/worker-0"), "{text}");
        assert!(text.contains("mine/worker-1"), "{text}");
        assert!(text.contains("speedup 1.36x"), "{text}");
        assert!(text.contains('#'), "{text}");
        let critical = CriticalPathReport::from_journal(&sample(1.0));
        let text = critical.render(3);
        assert!(text.contains("critical path: 11.000s"), "{text}");
        assert!(text.contains("evaluate"), "{text}");
    }

    #[test]
    fn baseline_round_trips_and_passes_itself() {
        let journal = sample(1.0);
        let baseline = TimelineBaseline::from_journal(&journal);
        assert_eq!(baseline.journal_version, crate::journal::JOURNAL_VERSION);
        assert_eq!(baseline.critical_path, ["mine/worker-0", "translate", "evaluate"]);
        assert!(baseline.check(&journal, 0.05).is_empty());
        let json = serde_json::to_string(&baseline).unwrap();
        let back: TimelineBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, baseline);
    }

    #[test]
    fn slower_run_fails_the_baseline_check() {
        let baseline = TimelineBaseline::from_journal(&sample(1.0));
        let violations = baseline.check(&sample(1.5), 0.05);
        assert!(violations.iter().any(|v| v.contains("wall-clock")), "{violations:?}");
    }

    #[test]
    fn timeline_silently_off_is_a_failure() {
        let baseline = TimelineBaseline::from_journal(&sample(1.0));
        // A journal recorded without start offsets (pre-v7 shape):
        // everything opens at the sim origin.
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        mine.scope().add_sim_seconds(6.0);
        mine.finish();
        root.finish();
        let flat = rec.snapshot();
        let violations = baseline.check(&flat, 0.05);
        assert!(violations.iter().any(|v| v.contains("no span start offsets")), "{violations:?}");
    }
}
