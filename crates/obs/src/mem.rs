//! Memory observability: the global tracking allocator and the
//! journal-v6 `Mem` record types.
//!
//! [`TrackingAlloc`] wraps [`System`] behind five relaxed atomics —
//! live bytes, peak bytes, cumulative allocated bytes, alloc and
//! dealloc counts. Binaries opt in with `#[global_allocator]`; code
//! that only links this crate (unit tests, libraries) pays nothing
//! and reads all-zero counters, so span records simply omit their
//! memory fields there. [`MemRecord`] carries three kinds of data in
//! one journal line: per-span allocation deltas (`kind = "span"`),
//! the run-wide allocator totals (`kind = "run"`), and deterministic
//! footprint tables (`kind = "footprint"`) computed from container
//! capacities rather than the allocator — the byte-exact quantities
//! CI can gate even where real allocator counts jitter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let size = size as u64;
    TOTAL_ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

/// A `#[global_allocator]`-compatible wrapper around [`System`] that
/// counts every allocation. Installed by the `grm` and `repro`
/// binaries:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: grm_obs::TrackingAlloc = grm_obs::TrackingAlloc;
/// ```
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// Reads the current counters. All-zero when no binary installed
    /// the allocator — [`AllocSnapshot::is_tracking`] distinguishes.
    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
            total_alloc_bytes: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
            alloc_count: ALLOCS.load(Ordering::Relaxed),
            dealloc_count: DEALLOCS.load(Ordering::Relaxed),
        }
    }
}

// SAFETY: delegates allocation verbatim to `System`; the atomics only
// observe sizes and never influence pointers or layouts.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// A point-in-time read of the tracking allocator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_bytes: u64,
    /// Cumulative bytes ever allocated (monotone).
    pub total_alloc_bytes: u64,
    /// Allocations since process start (monotone).
    pub alloc_count: u64,
    /// Deallocations since process start (monotone).
    pub dealloc_count: u64,
}

impl AllocSnapshot {
    /// True when the tracking allocator has observed at least one
    /// allocation — i.e. the running binary installed it.
    pub fn is_tracking(&self) -> bool {
        self.alloc_count > 0
    }
}

/// One component row of a footprint table: `count` instances of
/// `name` occupying `bytes` heap bytes (from container capacities —
/// deterministic for a fixed seed and scale).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FootprintRow {
    pub name: String,
    pub count: u64,
    pub bytes: u64,
}

/// A journal-v6 `Mem` line. `kind` selects which fields are
/// meaningful:
///
/// * `"span"` — allocation deltas between a span's open and close
///   (`alloc_bytes`/`alloc_count`/`dealloc_count`/`peak_delta`),
///   attributed to `span`; inclusive of child spans. Zeroed — and the
///   record omitted — in deterministic runs and in binaries without
///   the tracking allocator.
/// * `"run"` — the run-wide allocator totals between recorder start
///   and snapshot; `peak_bytes` is the process high-water mark.
/// * `"footprint"` — a deterministic byte table for `component`
///   (`graph`, `vecstore`, …) in `footprint`; survives deterministic
///   mode, so fault-rate-0/resume byte-identity holds.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemRecord {
    /// Owning span id (`None` for run-wide records).
    pub span: Option<u64>,
    /// `"span"`, `"run"`, or `"footprint"`.
    pub kind: String,
    /// Footprint component name (`graph`, `vecstore`); empty for
    /// span/run records.
    pub component: String,
    /// Bytes allocated (cumulative delta for spans; run total for
    /// `"run"`).
    pub alloc_bytes: u64,
    /// Allocations in the interval.
    pub alloc_count: u64,
    /// Deallocations in the interval.
    pub dealloc_count: u64,
    /// Growth of the process peak during the interval.
    pub peak_delta: u64,
    /// Absolute peak bytes (run records only).
    pub peak_bytes: u64,
    /// Footprint rows (footprint records only).
    pub footprint: Vec<FootprintRow>,
}

impl MemRecord {
    /// Builds a footprint record for `component` from its rows.
    pub fn footprint_of(component: &str, footprint: Vec<FootprintRow>) -> MemRecord {
        MemRecord {
            kind: "footprint".to_owned(),
            component: component.to_owned(),
            footprint,
            ..MemRecord::default()
        }
    }

    /// Total bytes over the footprint rows.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint.iter().map(|r| r.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_defaults_to_not_tracking_without_the_allocator() {
        // Unit-test binaries never install `TrackingAlloc`, so the
        // atomics stay zero and tracking reads as off.
        let snap = TrackingAlloc::snapshot();
        assert_eq!(snap.alloc_count, 0);
        assert!(!snap.is_tracking());
    }

    #[test]
    fn footprint_record_sums_its_rows() {
        let rec = MemRecord::footprint_of(
            "graph",
            vec![
                FootprintRow { name: "nodes".into(), count: 10, bytes: 640 },
                FootprintRow { name: "edges".into(), count: 4, bytes: 320 },
            ],
        );
        assert_eq!(rec.kind, "footprint");
        assert_eq!(rec.component, "graph");
        assert_eq!(rec.footprint_bytes(), 960);
        crate::assert_roundtrip(&rec);
    }
}
