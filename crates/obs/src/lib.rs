//! # grm-obs — pipeline observability
//!
//! Lightweight, dependency-free instrumentation for the mining
//! pipeline (Figure 1 of the paper):
//!
//! * **hierarchical spans** — one per pipeline stage, with real
//!   wall-clock duration *and* the simulated LLM seconds the study
//!   reports (Table 5), so journals show both what the host machine
//!   spent and what the modelled deployment would have spent;
//! * **typed counters and gauges** ([`Counter`], [`Gauge`]) — nodes
//!   and edges encoded, tokens emitted, windows produced, prompts
//!   issued, rules mined/deduped/translated, Cypher rows matched,
//!   support evaluations;
//! * **a JSONL run journal** ([`RunJournal`]) serialising the span
//!   tree and counter totals, written by `grm mine --trace` and the
//!   `repro` binary.
//!
//! The entry point is [`Recorder`]. A disabled recorder costs one
//! `Option` check per call, so instrumented code paths stay free when
//! tracing is off:
//!
//! ```
//! use grm_obs::{Counter, Recorder};
//!
//! let rec = Recorder::new();
//! let root = rec.root_scope().span("pipeline");
//! let encode = root.scope().span("encode");
//! encode.scope().add(Counter::NodesEncoded, 42);
//! encode.finish();
//! root.finish();
//!
//! let journal = rec.snapshot();
//! assert_eq!(journal.total(Counter::NodesEncoded.name()), 42);
//! assert_eq!(journal.spans[1].name, "encode");
//! ```
//!
//! Counters are recorded twice: on the innermost enclosing span and
//! in the run-wide totals. That makes per-worker attribution testable
//! — the sum of a counter over the `worker-*` spans must equal the
//! run total for counters only workers touch.

mod counter;
mod journal;
mod recorder;

pub use counter::{Counter, Gauge};
pub use journal::{JournalRecord, RunJournal, SpanRecord, StageTiming};
pub use recorder::{Recorder, Scope, Span};
