//! # grm-obs — pipeline observability
//!
//! Lightweight, dependency-free instrumentation for the mining
//! pipeline (Figure 1 of the paper):
//!
//! * **hierarchical spans** — one per pipeline stage, with real
//!   wall-clock duration *and* the simulated LLM seconds the study
//!   reports (Table 5), so journals show both what the host machine
//!   spent and what the modelled deployment would have spent;
//! * **typed counters and gauges** ([`Counter`], [`Gauge`]) — nodes
//!   and edges encoded, tokens emitted, windows produced, prompts
//!   issued, rules mined/deduped/translated, Cypher rows matched,
//!   support evaluations;
//! * **fixed-bucket histograms** ([`Histogram`], named by [`Histo`]) —
//!   per-prompt simulated latency, per-window token counts, per-query
//!   result rows, retrieval scores — recorded per span *and* run-wide,
//!   mergeable without rebinning, with p50/p90/p95/p99 estimates;
//! * **query-plan profiles** ([`PlanRecord`]) — Neo4j-`PROFILE`-style
//!   per-operator statistics (rows, db-hits, self-time) the Cypher
//!   engine attaches to rule spans, with an optional slow-query
//!   policy ([`SlowQueryPolicy`]) flagging expensive rules;
//! * **rule lineage** ([`LineageRecord`], [`BoundaryRecord`]) — per-
//!   rule provenance (origin windows/chunks with token ranges, merge
//!   frequency, translation attempts, §4.4 error class, correction,
//!   final scores) and the §4.5 window-boundary breakages, attached
//!   to spans like plan profiles;
//! * **resilience records** ([`ChaosRecord`], [`FaultRecord`],
//!   [`RetryRecord`], [`DegradedRecord`], [`CheckpointRecord`]) —
//!   injected transient faults, retry verdicts, degraded units and
//!   completed-unit checkpoints written by chaos runs, the substrate
//!   behind `grm mine --fault-rate`/`--resume`;
//! * **memory records** ([`MemRecord`], [`TrackingAlloc`]) — a
//!   `#[global_allocator]`-compatible tracking allocator whose
//!   live/peak/count atomics give every span `alloc_bytes`,
//!   `alloc_count` and `peak_delta` deltas on exit, plus
//!   deterministic footprint tables ([`FootprintRow`]) computed from
//!   container capacities, the substrate behind `grm trace mem`;
//! * **a live telemetry bus** ([`TelemetryEvent`], [`EventSink`],
//!   [`ChannelSink`], [`MetricsHub`]) — every recorder mutation
//!   emitted to bounded, non-blocking, drop-counting sinks the moment
//!   it happens, the substrate behind `grm mine --progress`,
//!   `--events`, `--metrics-out`/`--metrics-listen` (Prometheus text
//!   exposition) and `grm trace tail`;
//! * **a JSONL run journal** ([`RunJournal`]) serialising the span
//!   tree (with v7 `sim_start_seconds` offsets placing every span on
//!   the simulated axis), counter totals, histograms, plan profiles,
//!   lineage, resilience and memory records, and streamed v8 `Event`
//!   lines (schema v8; v1–v7 journals still parse), written by
//!   `grm mine --trace` and the `repro` binary;
//! * **timeline analytics** ([`TimelineReport`],
//!   [`CriticalPathReport`], [`TimelineBaseline`]) — per-worker
//!   occupancy lanes, utilization and effective parallel speedup,
//!   and the critical path bounding the run wall-clock, the machinery
//!   behind `grm trace timeline` and `grm trace critical-path`;
//! * **trace analytics** ([`TraceDiff`], [`folded_stacks`],
//!   [`TraceBaseline`], [`PlanReport`], [`PlanBaseline`],
//!   [`LineageReport`], [`LineageBaseline`], [`FaultReport`],
//!   [`ChaosBaseline`], [`MemReport`], [`MemBaseline`]) —
//!   run-over-run diffing, flamegraph export, operator cost tables,
//!   rule-provenance tables, fault digests, allocation tables and the
//!   CI perf/lineage/chaos/memory/timeline regression gates behind
//!   `grm trace`.
//!
//! The entry point is [`Recorder`]. A disabled recorder costs one
//! `Option` check per call, so instrumented code paths stay free when
//! tracing is off:
//!
//! ```
//! use grm_obs::{Counter, Recorder};
//!
//! let rec = Recorder::new();
//! let root = rec.root_scope().span("pipeline");
//! let encode = root.scope().span("encode");
//! encode.scope().add(Counter::NodesEncoded, 42);
//! encode.finish();
//! root.finish();
//!
//! let journal = rec.snapshot();
//! assert_eq!(journal.total(Counter::NodesEncoded.name()), 42);
//! assert_eq!(journal.spans[1].name, "encode");
//! ```
//!
//! Counters are recorded twice: on the innermost enclosing span and
//! in the run-wide totals. That makes per-worker attribution testable
//! — the sum of a counter over the `worker-*` spans must equal the
//! run total for counters only workers touch.

mod analytics;
mod bus;
mod counter;
mod histogram;
mod journal;
mod lineage;
mod mem;
mod plan;
mod recorder;
mod resilience;
mod tail;
mod timeline;

pub use analytics::{
    explain_rule, folded_stacks, BaselineHisto, ChaosBaseline, CounterDiffRow, FaultReport,
    FlameWeight, HistoDiffRow, LineageBaseline, LineageReport, MemBaseline, MemComponent,
    MemReport, MemSpanRow, OptimizerBaseline, OriginYield, PlanBaseline, PlanBaselineOp,
    PlanCacheReport, PlanOpAgg, PlanReport, PlanScopeAgg, StageDiffRow, TraceBaseline, TraceDiff,
};
pub use bus::{
    check_exposition_against_events, event_stream_sink, metrics_http_response, parse_exposition,
    prometheus_exposition, ChannelSink, CountingSink, EventSink, EventStreamHandle, EventsBaseline,
    ExpositionSample, MetricsHub, MetricsServerHandle, TelemetryEvent,
};
pub use counter::{Counter, Gauge, Histo};
pub use histogram::{Histogram, BUCKET_COUNT};
pub use journal::{
    HistoRecord, HistogramSummary, JournalRecord, JournalSummary, LineageDigest, MemDigest,
    PlanDigest, ResilienceDigest, RunJournal, SpanRecord, StageTiming, JOURNAL_VERSION,
};
pub use lineage::{BoundaryRecord, LineageRecord, OriginRef};
pub use mem::{AllocSnapshot, FootprintRow, MemRecord, TrackingAlloc};
pub use plan::{PlanOpRecord, PlanRecord, SlowQueryPolicy};
pub use recorder::{Recorder, Scope, Span};
pub use resilience::{ChaosRecord, CheckpointRecord, DegradedRecord, FaultRecord, RetryRecord};
pub use tail::{TailFollower, TailPoll};
pub use timeline::{
    BaselineLane, CriticalPathChain, CriticalPathReport, CriticalPathStep, StageSegment,
    TimelineBaseline, TimelineReport, WorkerLane,
};

/// Shared unit-test helper: asserts `value` survives a serde JSON
/// round-trip unchanged. One definition instead of a copy per record
/// module.
#[cfg(test)]
pub(crate) fn assert_roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialises");
    let parsed: T = serde_json::from_str(&json).expect("parses back");
    assert_eq!(&parsed, value, "round-trip changed the value ({json})");
}
