//! Incremental follower for JSONL stream files — the engine behind
//! `grm trace tail`.
//!
//! A [`TailFollower`] keeps a byte offset into a file another process
//! is still appending to, returning only complete lines on each poll
//! (a torn trailing line is buffered and retried next poll, never
//! mis-parsed). Unlike a naive seek-and-read loop it detects
//! truncation and rotation: when the file is suddenly *smaller* than
//! the saved offset, the follower resets to byte 0, discards its
//! partial-line buffer, and re-follows from the top — a shrunk file
//! can never leave it waiting forever past EOF.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

/// What one [`TailFollower::poll`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailPoll {
    /// Complete lines read since the previous poll, newline-stripped.
    pub lines: Vec<String>,
    /// True when this poll found the file smaller than the saved
    /// offset and restarted from byte 0 (truncation or rotation).
    pub truncated: bool,
}

/// Byte-offset follower over a growing (or rotated) line stream.
#[derive(Debug, Default)]
pub struct TailFollower {
    offset: u64,
    partial: String,
    truncations: u64,
}

impl TailFollower {
    /// A follower positioned at the start of the stream.
    pub fn new() -> TailFollower {
        TailFollower::default()
    }

    /// Times the follower has detected truncation/rotation and reset.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }

    /// Reads whatever was appended to `path` since the last poll and
    /// returns the complete lines. Detects a shrunk file (size below
    /// the saved offset) as truncation/rotation: the offset resets to
    /// 0, the partial-line buffer is discarded, and the whole file is
    /// re-read as fresh content.
    pub fn poll(&mut self, path: &Path) -> io::Result<TailPoll> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let truncated = len < self.offset;
        if truncated {
            self.offset = 0;
            self.partial.clear();
            self.truncations += 1;
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)?;
        self.offset += chunk.len() as u64;
        self.partial.push_str(&chunk);
        let mut lines = Vec::new();
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim();
            if !line.is_empty() {
                lines.push(line.to_owned());
            }
        }
        Ok(TailPoll { lines, truncated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("grm-tail-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn returns_only_complete_lines_and_finishes_torn_ones() {
        let path = temp_path("torn");
        fs::write(&path, "alpha\nbet").unwrap();
        let mut f = TailFollower::new();
        let poll = f.poll(&path).unwrap();
        assert_eq!(poll.lines, vec!["alpha".to_owned()]);
        assert!(!poll.truncated);
        // Finish the torn line and add another.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "a\ngamma\n").unwrap();
        drop(file);
        let poll = f.poll(&path).unwrap();
        assert_eq!(poll.lines, vec!["beta".to_owned(), "gamma".to_owned()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_truncation_and_refollows_from_byte_zero() {
        let path = temp_path("trunc");
        fs::write(&path, "one\ntwo\nthree\n").unwrap();
        let mut f = TailFollower::new();
        assert_eq!(f.poll(&path).unwrap().lines.len(), 3);
        // Rotate: the file shrinks below the saved offset. A naive
        // offset follower would seek past EOF and wait forever.
        fs::write(&path, "fresh\n").unwrap();
        let poll = f.poll(&path).unwrap();
        assert!(poll.truncated, "shrunk file must be reported as truncation");
        assert_eq!(poll.lines, vec!["fresh".to_owned()]);
        assert_eq!(f.truncations(), 1);
        // Appends after the rotation follow normally again.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(file, "more").unwrap();
        drop(file);
        assert_eq!(f.poll(&path).unwrap().lines, vec!["more".to_owned()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_discards_the_partial_buffer() {
        let path = temp_path("trunc-partial");
        fs::write(&path, "complete\npart").unwrap();
        let mut f = TailFollower::new();
        assert_eq!(f.poll(&path).unwrap().lines, vec!["complete".to_owned()]);
        // Rotate mid-partial: the buffered "part" belongs to the old
        // file and must not be glued onto the new content.
        fs::write(&path, "new\n").unwrap();
        let poll = f.poll(&path).unwrap();
        assert!(poll.truncated);
        assert_eq!(poll.lines, vec!["new".to_owned()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn same_size_rewrite_is_not_flagged() {
        // A file rewritten to the exact same length is indistinguishable
        // from no change by size alone — the follower just sees EOF.
        let path = temp_path("same");
        fs::write(&path, "aa\n").unwrap();
        let mut f = TailFollower::new();
        assert_eq!(f.poll(&path).unwrap().lines.len(), 1);
        let poll = f.poll(&path).unwrap();
        assert!(poll.lines.is_empty());
        assert!(!poll.truncated);
        fs::remove_file(&path).unwrap();
    }
}
