//! Fixed-bucket latency/size histograms.
//!
//! A dependency-free HDR-style histogram over a fixed logarithmic
//! bucket layout, so any two histograms of the same metric merge
//! without rebinning — the property the per-worker → run-total
//! roll-up and the `grm trace diff` comparison both rely on.
//!
//! The layout is 64 buckets whose upper bounds grow geometrically
//! from `1e-6` by a factor of `1.8`, covering ~12 orders of magnitude
//! (sub-microsecond call latencies up to billions of rows/tokens).
//! Values at or below the first bound land in bucket 0; values above
//! the last bound land in the final bucket. Percentile estimates are
//! bucket midpoints clamped to the observed `[min, max]`, which makes
//! them exact for single-valued histograms and monotone in the
//! requested quantile always.

/// Number of buckets in the fixed layout.
pub const BUCKET_COUNT: usize = 64;

/// Upper bound of bucket 0.
const FIRST_UPPER: f64 = 1e-6;

/// Geometric growth factor between consecutive bucket bounds.
const GROWTH: f64 = 1.8;

/// Upper bound of bucket `i` (unbounded conceptually for the last).
fn upper_bound(i: usize) -> f64 {
    FIRST_UPPER * GROWTH.powi(i as i32)
}

/// Bucket index for a value. Total order of values maps to a
/// non-decreasing bucket index; NaN and non-positive values land in
/// bucket 0.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= FIRST_UPPER {
        return 0;
    }
    let idx = ((v / FIRST_UPPER).ln() / GROWTH.ln()).ceil();
    (idx as usize).min(BUCKET_COUNT - 1)
}

/// A mergeable fixed-bucket histogram.
///
/// Buckets are stored sparsely as `(index, count)` pairs sorted by
/// index, which keeps journal lines short (most metrics touch a
/// handful of buckets) while `PartialEq`/round-trips stay exact.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    /// Total observations.
    count: u64,
    /// Sum of all observed values (for the mean).
    sum: f64,
    /// Smallest observed value (0 when empty).
    min: f64,
    /// Largest observed value (0 when empty).
    max: f64,
    /// Sparse non-empty buckets, sorted by bucket index.
    buckets: Vec<(u32, u64)>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let idx = bucket_index(value) as u32;
        match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Folds `other` into `self`. Bucket counts, `count`, `min` and
    /// `max` merge exactly; `sum` merges up to float associativity.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |(i, _)| *i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated value at quantile `q` (percent, clamped to
    /// `[0, 100]`): the midpoint of the bucket holding the `⌈q·n⌉`-th
    /// observation, clamped to the observed range. 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 100.0);
        let target = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for &(idx, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return self.representative(idx as usize);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Representative value of bucket `i`, clamped into the observed
    /// range so estimates never leave `[min, max]`.
    fn representative(&self, i: usize) -> f64 {
        let raw = if i == 0 {
            FIRST_UPPER / 2.0
        } else if i == BUCKET_COUNT - 1 {
            self.max
        } else {
            (upper_bound(i - 1) + upper_bound(i)) / 2.0
        };
        raw.clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(95.0), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.record(7.25);
        for q in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(h.percentile(q), 7.25);
        }
        assert_eq!(h.min(), 7.25);
        assert_eq!(h.max(), 7.25);
        assert_eq!(h.mean(), 7.25);
    }

    #[test]
    fn percentiles_bracket_the_data() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        assert!(h.p50() >= h.min() && h.p50() <= h.max());
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p95());
        assert!(h.p95() <= h.p99());
        // The estimate lands within one growth factor of the truth.
        assert!(h.p50() > 5.0 / GROWTH && h.p50() < 5.0 * GROWTH, "{}", h.p50());
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..50 {
            let v = (i as f64) * 0.37 + 0.001;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.percentile(95.0), whole.percentile(95.0));
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(3.0);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e15); // beyond the last bucket bound
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 1e15);
        assert!(h.percentile(99.0) <= 1e15);
        assert!(h.percentile(1.0) >= -5.0);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0usize;
        let mut v = 1e-9;
        while v < 1e12 {
            let idx = bucket_index(v);
            assert!(idx >= last);
            last = idx;
            v *= 1.3;
        }
        assert_eq!(bucket_index(f64::NAN), 0);
    }
}
