//! Typed counter and gauge names.
//!
//! A closed enum instead of free-form strings so instrumentation
//! sites can't typo a name and journals stay greppable across
//! versions. The journal serialises the stable `name()` strings.

/// Monotonic counters the pipeline records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Nodes rendered by the graph-to-text encoder.
    NodesEncoded,
    /// Edges rendered by the graph-to-text encoder.
    EdgesEncoded,
    /// Tokens in the encoder output (approximate subword tokens).
    TokensEmitted,
    /// Sliding windows produced by the chunker.
    WindowsProduced,
    /// Encoder lines split across a window boundary (§4.5).
    BrokenPatterns,
    /// Chunks embedded into the vector store.
    ChunksIngested,
    /// Chunks returned by a RAG retrieval.
    ChunksRetrieved,
    /// Rule-mining prompts sent to the model.
    PromptsIssued,
    /// Prompt tokens across all model calls.
    PromptTokens,
    /// Completion tokens across all model calls.
    CompletionTokens,
    /// Rules returned by the model, before merging.
    RulesMined,
    /// Unique rules surviving the merge/dedup step.
    RulesDeduped,
    /// Rules translated to Cypher.
    RulesTranslated,
    /// Translated rules classified as already correct (§4.4). The
    /// five `rules_*` class counters partition `rules_translated`.
    RulesCorrect,
    /// Translated rules with a syntax error (§4.4).
    RulesSyntaxError,
    /// Translated rules referencing a hallucinated property (§4.4).
    RulesHallucinatedProperty,
    /// Translated rules with a wrong edge direction (§4.4).
    RulesWrongDirection,
    /// Translated rules with another semantic defect.
    RulesOtherSemantic,
    /// Cypher queries executed by the evaluation engine.
    CypherQueriesExecuted,
    /// Cypher queries executed with operator-level profiling on.
    CypherQueriesProfiled,
    /// Cypher queries answered from the scoring session's result memo
    /// without executing (zero db-hits).
    CypherQueriesMemoized,
    /// Plan-cache lookups that found a reusable compiled plan.
    PlanCacheHits,
    /// Plan-cache lookups that had to compile (absent, stale epoch,
    /// or expired entry).
    PlanCacheMisses,
    /// Plan-cache entries displaced by the capacity bound.
    PlanCacheEvictions,
    /// Plan-cache entries dropped by the TTL.
    PlanCacheExpirations,
    /// `WHERE` equality conjuncts the optimizer pushed into pattern
    /// property maps.
    OptimizerPredicatesPushed,
    /// Node patterns the optimizer re-anchored on their most
    /// selective label.
    OptimizerLabelsReordered,
    /// `MATCH` clauses whose patterns the optimizer re-sequenced
    /// cheapest-anchor-first.
    OptimizerPatternsReordered,
    /// Paths the optimizer pre-reversed towards their cheaper end.
    OptimizerPathsReversed,
    /// Profiled queries flagged by the slow-query policy.
    CypherSlowQueries,
    /// Result rows produced by those queries.
    CypherRowsMatched,
    /// Support/coverage/confidence evaluations performed.
    SupportEvaluations,
    /// Transient faults injected by the chaos plan.
    FaultsInjected,
    /// LLM-call units that needed at least one retry and recovered.
    LlmCallsRetried,
    /// LLM-call units abandoned after exhausting their retries.
    LlmCallsAbandoned,
    /// Mining contexts skipped entirely (abandoned or breaker-open).
    WindowsDegraded,
    /// Selected rules dropped because translation degraded.
    RulesDegraded,
    /// Rule evaluations skipped because the query degraded.
    QueriesDegraded,
    /// Times a stage circuit breaker tripped open.
    BreakerTrips,
    /// Telemetry events refused by a saturated bus sink. Stamped into
    /// `Totals` at snapshot time (never via `Scope::add`, which would
    /// emit events about dropping events) and only when non-zero, so
    /// loss is always journaled yet lossless runs stay byte-identical
    /// to bus-off runs.
    TelemetryEventsDropped,
}

impl Counter {
    /// Stable journal name (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::NodesEncoded => "nodes_encoded",
            Counter::EdgesEncoded => "edges_encoded",
            Counter::TokensEmitted => "tokens_emitted",
            Counter::WindowsProduced => "windows_produced",
            Counter::BrokenPatterns => "broken_patterns",
            Counter::ChunksIngested => "chunks_ingested",
            Counter::ChunksRetrieved => "chunks_retrieved",
            Counter::PromptsIssued => "prompts_issued",
            Counter::PromptTokens => "prompt_tokens",
            Counter::CompletionTokens => "completion_tokens",
            Counter::RulesMined => "rules_mined",
            Counter::RulesDeduped => "rules_deduped",
            Counter::RulesTranslated => "rules_translated",
            Counter::RulesCorrect => "rules_correct",
            Counter::RulesSyntaxError => "rules_syntax_error",
            Counter::RulesHallucinatedProperty => "rules_hallucinated_property",
            Counter::RulesWrongDirection => "rules_wrong_direction",
            Counter::RulesOtherSemantic => "rules_other_semantic",
            Counter::CypherQueriesExecuted => "cypher_queries_executed",
            Counter::CypherQueriesProfiled => "cypher_queries_profiled",
            Counter::CypherQueriesMemoized => "cypher_queries_memoized",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::PlanCacheEvictions => "plan_cache_evictions",
            Counter::PlanCacheExpirations => "plan_cache_expirations",
            Counter::OptimizerPredicatesPushed => "optimizer_predicates_pushed",
            Counter::OptimizerLabelsReordered => "optimizer_labels_reordered",
            Counter::OptimizerPatternsReordered => "optimizer_patterns_reordered",
            Counter::OptimizerPathsReversed => "optimizer_paths_reversed",
            Counter::CypherSlowQueries => "cypher_slow_queries",
            Counter::CypherRowsMatched => "cypher_rows_matched",
            Counter::SupportEvaluations => "support_evaluations",
            Counter::FaultsInjected => "faults_injected",
            Counter::LlmCallsRetried => "llm_calls_retried",
            Counter::LlmCallsAbandoned => "llm_calls_abandoned",
            Counter::WindowsDegraded => "windows_degraded",
            Counter::RulesDegraded => "rules_degraded",
            Counter::QueriesDegraded => "queries_degraded",
            Counter::BreakerTrips => "breaker_trips",
            Counter::TelemetryEventsDropped => "telemetry_events_dropped",
        }
    }
}

/// Point-in-time measurements (last write wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Fraction of graph elements visible after RAG retrieval.
    RagCoverage,
}

impl Gauge {
    /// Stable journal name (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::RagCoverage => "rag_coverage",
        }
    }
}

/// Distribution-valued metrics, recorded into fixed-bucket
/// [`crate::Histogram`]s — the per-event quantities whose percentiles
/// the run-over-run comparison (`grm trace diff`/`check`) gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Histo {
    /// Simulated seconds of one rule-mining model call (per prompt).
    MineCallSeconds,
    /// Simulated seconds of one NL→Cypher translation call (per rule).
    TranslateCallSeconds,
    /// Token count of one sliding window.
    WindowTokens,
    /// Similarity score of one retrieved RAG chunk.
    RetrievalScore,
    /// Result rows of one executed Cypher query.
    CypherRowsPerQuery,
    /// Total db-hits (node + edge + property accesses) of one
    /// profiled Cypher query.
    CypherDbHitsPerQuery,
    /// Cross-prompt frequency of one merged rule (§3.1.1 stability).
    RuleFrequency,
}

impl Histo {
    /// Stable journal name (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            Histo::MineCallSeconds => "mine_call_seconds",
            Histo::TranslateCallSeconds => "translate_call_seconds",
            Histo::WindowTokens => "window_tokens",
            Histo::RetrievalScore => "retrieval_score",
            Histo::CypherRowsPerQuery => "cypher_rows_per_query",
            Histo::CypherDbHitsPerQuery => "cypher_db_hits_per_query",
            Histo::RuleFrequency => "rule_frequency",
        }
    }
}
