//! Journal analytics: run-over-run diffing, folded-stack flamegraph
//! export, and regression gating against a committed baseline — the
//! machinery behind `grm trace diff|flame|check`.
//!
//! Everything here reads frozen [`RunJournal`]s; nothing touches the
//! recorder, so analytics can run on journals from other machines or
//! other commits. Gating decisions use only simulated seconds and
//! histogram percentiles of simulated/deterministic quantities —
//! `real_ms` is reported but never gated, because host wall-clock is
//! noise in CI.

use crate::histogram::Histogram;
use crate::journal::{HistoRecord, RunJournal, SpanRecord, StageTiming};
use crate::lineage::{BoundaryRecord, LineageRecord};
use crate::mem::FootprintRow;
use crate::resilience::{ChaosRecord, DegradedRecord};

/// Which clock weights the folded stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlameWeight {
    /// Host wall-clock self-time, microseconds.
    Real,
    /// Simulated LLM seconds (each span's own attribution), milliseconds.
    Sim,
    /// Allocated bytes (self: span delta minus children's deltas).
    Mem,
}

/// Renders the journal as folded stacks — `a;b;c <weight>`, one line
/// per span — the input format of standard flamegraph tooling
/// (`flamegraph.pl`, inferno, speedscope).
///
/// `Real` weights are *self* times (span minus children) so stack
/// depths sum correctly; `Sim` weights are each span's own simulated
/// attribution, which is already exclusive by construction; `Mem`
/// weights are self allocated bytes (a span's v6 `Mem` delta minus
/// its children's, clamped at zero). Zero-weight frames are omitted.
pub fn folded_stacks(journal: &RunJournal, weight: FlameWeight) -> String {
    let span_alloc = |id: u64| -> u64 {
        journal
            .mems
            .iter()
            .find(|m| m.kind == "span" && m.span == Some(id))
            .map(|m| m.alloc_bytes)
            .unwrap_or(0)
    };
    let mut out = String::new();
    for span in &journal.spans {
        let value = match weight {
            FlameWeight::Real => {
                let children: f64 = journal.children(span).iter().map(|c| c.real_ms).sum();
                ((span.real_ms - children).max(0.0) * 1000.0).round() as u64
            }
            FlameWeight::Sim => (span.sim_seconds * 1000.0).round() as u64,
            FlameWeight::Mem => {
                let children: u64 = journal.children(span).iter().map(|c| span_alloc(c.id)).sum();
                span_alloc(span.id).saturating_sub(children)
            }
        };
        if value == 0 {
            continue;
        }
        out.push_str(&span_path(journal, span, ";"));
        out.push_str(&format!(" {value}\n"));
    }
    out
}

/// `/`- or `;`-joined span names from the root down to `span`.
pub(crate) fn span_path(journal: &RunJournal, span: &SpanRecord, sep: &str) -> String {
    let mut names = vec![span.name.clone()];
    let mut parent = span.parent;
    while let Some(pid) = parent {
        match journal.spans.iter().find(|s| s.id == pid) {
            Some(p) => {
                names.push(p.name.clone());
                parent = p.parent;
            }
            None => break,
        }
    }
    names.reverse();
    names.join(sep)
}

/// [`span_path`] without the root segment — diff rows are labelled
/// relative to the `pipeline` root (`mine`, `mine/worker-0`, …).
pub(crate) fn relative_span_path(journal: &RunJournal, span: &SpanRecord) -> String {
    let full = span_path(journal, span, "/");
    match full.split_once('/') {
        Some((_, rest)) => rest.to_owned(),
        None => full,
    }
}

/// One span row of a diff: sim/real on each side, keyed by the span's
/// path (`mine`, `mine/worker-0`, …). A side that lacks the span
/// reports zeros.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageDiffRow {
    pub path: String,
    /// Depth below the root (1 = pipeline stage, 2 = worker, …).
    pub depth: usize,
    pub sim_a: f64,
    pub sim_b: f64,
    pub real_a: f64,
    pub real_b: f64,
    /// Total db-hits charged to this stage (depth-1 rows only; always
    /// 0 when a journal carries no v3 `Plan` records).
    pub hits_a: u64,
    pub hits_b: u64,
    pub in_a: bool,
    pub in_b: bool,
}

impl StageDiffRow {
    /// Relative simulated-seconds change, `|b − a| / max(a, b)`;
    /// 0 when both sides are (near) zero.
    pub fn relative_sim_delta(&self) -> f64 {
        let denom = self.sim_a.max(self.sim_b);
        if denom < 1e-9 {
            0.0
        } else {
            (self.sim_b - self.sim_a).abs() / denom
        }
    }
}

/// One counter row of a diff.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CounterDiffRow {
    pub name: String,
    pub a: u64,
    pub b: u64,
}

/// One histogram row of a diff. `scope` is `(run)` for run-wide
/// histograms or the owning span's path (`mine/worker-0`, …) — the
/// per-worker rows a `--workers 1` vs `--workers 4` diff surfaces.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistoDiffRow {
    pub scope: String,
    pub name: String,
    pub a: Histogram,
    pub b: Histogram,
}

/// A structural comparison of two run journals.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceDiff {
    pub stages: Vec<StageDiffRow>,
    pub counters: Vec<CounterDiffRow>,
    pub histograms: Vec<HistoDiffRow>,
    /// True when *both* journals carry v3 `Plan` records — the gate
    /// for rendering the per-stage db-hits delta column (silently
    /// omitted when either side is a v2 journal).
    pub has_plans: bool,
}

impl TraceDiff {
    /// Compares journal `a` (before) against `b` (after).
    pub fn compute(a: &RunJournal, b: &RunJournal) -> TraceDiff {
        // Span rows: union of both journals' non-root spans, keyed by
        // path, in a-order then b-only order.
        let collect = |j: &RunJournal| -> Vec<(String, usize, f64, f64)> {
            j.spans
                .iter()
                .filter(|s| s.parent.is_some())
                .map(|s| {
                    let path = relative_span_path(j, s);
                    let depth = path.matches('/').count() + 1;
                    (path, depth, s.sim_seconds, s.real_ms)
                })
                .collect()
        };
        let rows_a = collect(a);
        let rows_b = collect(b);
        let hits_a = a.stage_db_hits();
        let hits_b = b.stage_db_hits();
        let stage_hits = |set: &[(String, u64)], path: &str| {
            set.iter().find(|(s, _)| s == path).map(|(_, h)| *h).unwrap_or(0)
        };
        let mut stages: Vec<StageDiffRow> = Vec::new();
        for (path, depth, sim, real) in &rows_a {
            let other = rows_b.iter().find(|(p, ..)| p == path);
            stages.push(StageDiffRow {
                path: path.clone(),
                depth: *depth,
                sim_a: *sim,
                sim_b: other.map(|(_, _, s, _)| *s).unwrap_or(0.0),
                real_a: *real,
                real_b: other.map(|(_, _, _, r)| *r).unwrap_or(0.0),
                hits_a: stage_hits(&hits_a, path),
                hits_b: stage_hits(&hits_b, path),
                in_a: true,
                in_b: other.is_some(),
            });
        }
        for (path, depth, sim, real) in &rows_b {
            if rows_a.iter().any(|(p, ..)| p == path) {
                continue;
            }
            stages.push(StageDiffRow {
                path: path.clone(),
                depth: *depth,
                sim_a: 0.0,
                sim_b: *sim,
                real_a: 0.0,
                real_b: *real,
                hits_a: 0,
                hits_b: stage_hits(&hits_b, path),
                in_a: false,
                in_b: true,
            });
        }

        // Counter rows: union of totals, name-sorted.
        let mut names: Vec<&String> =
            a.totals.iter().chain(b.totals.iter()).map(|(k, _)| k).collect();
        names.sort();
        names.dedup();
        let counters = names
            .into_iter()
            .map(|name| CounterDiffRow { name: name.clone(), a: a.total(name), b: b.total(name) })
            .collect();

        // Histogram rows: union over (scope, name).
        let scoped = |j: &RunJournal| -> Vec<(String, String, Histogram)> {
            j.histos
                .iter()
                .map(|h: &HistoRecord| {
                    let scope = match h.span {
                        None => "(run)".to_owned(),
                        Some(id) => j
                            .spans
                            .iter()
                            .find(|s| s.id == id)
                            .map(|s| relative_span_path(j, s))
                            .unwrap_or_else(|| format!("span-{id}")),
                    };
                    (scope, h.name.clone(), h.histogram.clone())
                })
                .collect()
        };
        let ha = scoped(a);
        let hb = scoped(b);
        let mut keys: Vec<(String, String)> =
            ha.iter().chain(hb.iter()).map(|(s, n, _)| (s.clone(), n.clone())).collect();
        keys.sort();
        keys.dedup();
        let find = |set: &[(String, String, Histogram)], key: &(String, String)| {
            set.iter()
                .find(|(s, n, _)| (s, n) == (&key.0, &key.1))
                .map(|(_, _, h)| h.clone())
                .unwrap_or_default()
        };
        let histograms = keys
            .iter()
            .map(|key| HistoDiffRow {
                scope: key.0.clone(),
                name: key.1.clone(),
                a: find(&ha, key),
                b: find(&hb, key),
            })
            .collect();

        TraceDiff { stages, counters, histograms, has_plans: a.has_plans() && b.has_plans() }
    }

    /// Largest relative simulated-seconds change over the top-level
    /// stage rows — the quantity `grm trace diff --tolerance` gates.
    pub fn max_relative_sim_delta(&self) -> f64 {
        self.stages
            .iter()
            .filter(|r| r.depth == 1)
            .map(|r| r.relative_sim_delta())
            .fold(0.0, f64::max)
    }

    /// Human-readable rendering of the full diff. The per-stage
    /// db-hits delta column appears only when both journals carry v3
    /// `Plan` records.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let hits_header = if self.has_plans { "  db-hits A -> B" } else { "" };
        out.push_str(&format!(
            "per-span timings (sim seconds, A -> B):\n  {:<28} {:>10} {:>10} {:>8}  {}{}\n",
            "span", "sim A", "sim B", "Δ%", "real A -> B (ms)", hits_header
        ));
        for row in &self.stages {
            let presence = match (row.in_a, row.in_b) {
                (true, false) => "  [only in A]",
                (false, true) => "  [only in B]",
                _ => "",
            };
            let hits = if self.has_plans && (row.hits_a > 0 || row.hits_b > 0) {
                let delta = row.hits_b as i64 - row.hits_a as i64;
                format!("  hits {} -> {} ({delta:+})", row.hits_a, row.hits_b)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<28} {:>10.2} {:>10.2} {:>7.1}%  {:.1} -> {:.1}{}{}\n",
                row.path,
                row.sim_a,
                row.sim_b,
                100.0 * row.relative_sim_delta(),
                row.real_a,
                row.real_b,
                hits,
                presence
            ));
        }
        out.push_str("counter totals (A -> B):\n");
        for c in &self.counters {
            let delta = c.b as i64 - c.a as i64;
            out.push_str(&format!("  {:<28} {:>10} -> {:<10} ({delta:+})\n", c.name, c.a, c.b));
        }
        out.push_str(&format!(
            "histograms (A -> B):\n  {:<24} {:<24} {:>11} {:>21} {:>21}\n",
            "scope", "name", "count", "p50", "p95"
        ));
        for h in &self.histograms {
            out.push_str(&format!(
                "  {:<24} {:<24} {:>4} -> {:<4} {:>9.4} -> {:<9.4} {:>9.4} -> {:<9.4}\n",
                h.scope,
                h.name,
                h.a.count(),
                h.b.count(),
                h.a.p50(),
                h.b.p50(),
                h.a.p95(),
                h.b.p95(),
            ));
        }
        out
    }
}

/// Key histogram percentiles frozen into a baseline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselineHisto {
    pub name: String,
    pub count: u64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// A committed performance baseline: per-stage simulated seconds plus
/// key percentiles of the run-wide histograms. Written by
/// `repro --trace-baseline`, consumed by `grm trace check` in CI.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    pub stages: Vec<StageTiming>,
    pub histograms: Vec<BaselineHisto>,
}

impl TraceBaseline {
    /// Freezes `journal` into a baseline snapshot.
    pub fn from_journal(journal: &RunJournal) -> TraceBaseline {
        let mut histograms: Vec<BaselineHisto> = journal
            .histos
            .iter()
            .filter(|h| h.span.is_none())
            .map(|h| BaselineHisto {
                name: h.name.clone(),
                count: h.histogram.count(),
                p50: h.histogram.p50(),
                p95: h.histogram.p95(),
                p99: h.histogram.p99(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        TraceBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            stages: journal.stage_timings(),
            histograms,
        }
    }

    /// Checks `journal` against this baseline: every baseline stage
    /// must still exist and its simulated seconds must not exceed the
    /// baseline by more than `tolerance` (a fraction, e.g. 0.05);
    /// run-wide histogram p95/p99 latencies likewise. Returns the
    /// violations (empty = pass). Stages faster than baseline and
    /// `real_ms` changes never fail the check.
    pub fn check(&self, journal: &RunJournal, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        let current = journal.stage_timings();
        for stage in &self.stages {
            let Some(now) = current.iter().find(|t| t.stage == stage.stage) else {
                violations.push(format!("stage `{}` missing from the run", stage.stage));
                continue;
            };
            let allowed = stage.sim_seconds * (1.0 + tolerance);
            if stage.sim_seconds > 0.0 && now.sim_seconds > allowed {
                violations.push(format!(
                    "stage `{}`: sim {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                    stage.stage,
                    now.sim_seconds,
                    stage.sim_seconds,
                    tolerance * 100.0
                ));
            }
        }
        for base in &self.histograms {
            if base.count == 0 {
                continue;
            }
            let Some(now) = journal.histogram(&base.name) else {
                violations.push(format!("histogram `{}` missing from the run", base.name));
                continue;
            };
            for (label, base_q, now_q) in
                [("p95", base.p95, now.p95()), ("p99", base.p99, now.p99())]
            {
                if base_q > 0.0 && now_q > base_q * (1.0 + tolerance) {
                    violations.push(format!(
                        "histogram `{}` {label}: {now_q:.4} exceeds baseline {base_q:.4} \
                         by more than {:.0}%",
                        base.name,
                        tolerance * 100.0
                    ));
                }
            }
        }
        violations
    }
}

/// One operator row of a [`PlanReport`], aggregated over every plan
/// record in the journal by `(op, detail)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanOpAgg {
    pub op: String,
    pub detail: String,
    pub calls: u64,
    pub rows_in: u64,
    pub rows: u64,
    pub db_hits: u64,
    pub self_us: u64,
    pub sim_us: u64,
}

impl PlanOpAgg {
    /// Output/input row ratio — the selectivity of filtering
    /// operators (`None` when the operator consumed no rows).
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows as f64 / self.rows_in as f64)
    }
}

/// One scope (rule) row of a [`PlanReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanScopeAgg {
    pub scope: String,
    pub queries: u64,
    pub rows: u64,
    pub db_hits: u64,
    pub total_us: u64,
    pub sim_us: u64,
    pub slow: bool,
}

/// The aggregation behind `grm trace plans`: every `Plan` record of a
/// journal folded into per-operator and per-scope cost tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanReport {
    /// Operators sorted by db-hits descending (ties by op/detail).
    pub ops: Vec<PlanOpAgg>,
    /// Scopes sorted by db-hits descending (ties by scope name).
    pub scopes: Vec<PlanScopeAgg>,
}

impl PlanReport {
    /// Aggregates the journal's `Plan` records. Empty report (no rows
    /// at all) means the journal carries none — pre-v3 input.
    pub fn from_journal(journal: &RunJournal) -> PlanReport {
        let mut ops: Vec<PlanOpAgg> = Vec::new();
        let mut scopes: Vec<PlanScopeAgg> = Vec::new();
        for plan in &journal.plans {
            for op in &plan.ops {
                let row = match ops.iter_mut().find(|o| o.op == op.op && o.detail == op.detail) {
                    Some(row) => row,
                    None => {
                        ops.push(PlanOpAgg {
                            op: op.op.clone(),
                            detail: op.detail.clone(),
                            ..PlanOpAgg::default()
                        });
                        ops.last_mut().expect("just pushed")
                    }
                };
                row.calls += op.calls;
                row.rows_in += op.rows_in;
                row.rows += op.rows;
                row.db_hits += op.db_hits();
                row.self_us += op.self_us;
                row.sim_us += op.sim_us;
            }
            match scopes.iter_mut().find(|s| s.scope == plan.scope) {
                Some(s) => {
                    s.queries += plan.queries;
                    s.rows += plan.rows;
                    s.db_hits += plan.db_hits();
                    s.total_us += plan.total_us;
                    s.sim_us += plan.sim_us;
                    s.slow |= plan.slow;
                }
                None => scopes.push(PlanScopeAgg {
                    scope: plan.scope.clone(),
                    queries: plan.queries,
                    rows: plan.rows,
                    db_hits: plan.db_hits(),
                    total_us: plan.total_us,
                    sim_us: plan.sim_us,
                    slow: plan.slow,
                }),
            }
        }
        ops.sort_by(|a, b| {
            b.db_hits.cmp(&a.db_hits).then_with(|| (&a.op, &a.detail).cmp(&(&b.op, &b.detail)))
        });
        scopes.sort_by(|a, b| b.db_hits.cmp(&a.db_hits).then_with(|| a.scope.cmp(&b.scope)));
        PlanReport { ops, scopes }
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.scopes.is_empty()
    }

    /// The operator/scope cost tables, each truncated to `top` rows.
    /// Selectivity (`rows/rows_in`) makes filter effectiveness
    /// readable straight off the operator table.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "top operators by db-hits:\n  {:<18} {:<26} {:>8} {:>9} {:>9} {:>6} {:>10} {:>9} {:>9}\n",
            "operator", "detail", "calls", "rows in", "rows out", "sel%", "db-hits", "self ms", "sim ms"
        ));
        for op in self.ops.iter().take(top) {
            let sel = match op.selectivity() {
                Some(s) => format!("{:.0}%", s * 100.0),
                None => "-".to_owned(),
            };
            out.push_str(&format!(
                "  {:<18} {:<26} {:>8} {:>9} {:>9} {:>6} {:>10} {:>9.2} {:>9.2}\n",
                op.op,
                op.detail,
                op.calls,
                op.rows_in,
                op.rows,
                sel,
                op.db_hits,
                op.self_us as f64 / 1_000.0,
                op.sim_us as f64 / 1_000.0,
            ));
        }
        if self.ops.len() > top {
            out.push_str(&format!("  … {} more operators\n", self.ops.len() - top));
        }
        out.push_str(&format!(
            "db-hits per scope:\n  {:<22} {:>7} {:>9} {:>10} {:>9} {:>9}\n",
            "scope", "queries", "rows", "db-hits", "real ms", "sim ms"
        ));
        for s in self.scopes.iter().take(top) {
            out.push_str(&format!(
                "  {:<22} {:>7} {:>9} {:>10} {:>9.2} {:>9.2}{}\n",
                s.scope,
                s.queries,
                s.rows,
                s.db_hits,
                s.total_us as f64 / 1_000.0,
                s.sim_us as f64 / 1_000.0,
                if s.slow { "  SLOW" } else { "" },
            ));
        }
        if self.scopes.len() > top {
            out.push_str(&format!("  … {} more scopes\n", self.scopes.len() - top));
        }
        out
    }
}

/// One operator budget of a [`PlanBaseline`], aggregated by operator
/// name (details vary with the mined rules; names are structural).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanBaselineOp {
    pub op: String,
    pub db_hits: u64,
    pub rows: u64,
}

/// A committed per-operator db-hit budget: written by
/// `repro --plans-baseline`, consumed by `grm trace plans --check` in
/// CI. Db-hits are deterministic for a fixed seed and scale, so the
/// gate is exact up to the configured tolerance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    /// Plan records in the snapshot run.
    pub records: u64,
    /// Profiled queries in the snapshot run.
    pub queries: u64,
    /// Per-operator budgets, name-sorted.
    pub ops: Vec<PlanBaselineOp>,
    /// Optimizer A/B digest (absent/`null` in pre-optimizer
    /// baselines — the serde shim reads missing fields as `None`):
    /// naive-vs-optimized db-hits over the repro query suite plus
    /// plan-cache hit rates, gated *exactly* by
    /// [`OptimizerBaseline::check`].
    pub optimizer: Option<OptimizerBaseline>,
}

impl PlanBaseline {
    /// Freezes the journal's plan records into per-operator budgets.
    pub fn from_journal(journal: &RunJournal) -> PlanBaseline {
        let mut ops: Vec<PlanBaselineOp> = Vec::new();
        for plan in &journal.plans {
            for op in &plan.ops {
                match ops.iter_mut().find(|o| o.op == op.op) {
                    Some(o) => {
                        o.db_hits += op.db_hits();
                        o.rows += op.rows;
                    }
                    None => ops.push(PlanBaselineOp {
                        op: op.op.clone(),
                        db_hits: op.db_hits(),
                        rows: op.rows,
                    }),
                }
            }
        }
        ops.sort_by(|a, b| a.op.cmp(&b.op));
        PlanBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            records: journal.plans.len() as u64,
            queries: journal.plans.iter().map(|p| p.queries).sum(),
            ops,
            optimizer: None,
        }
    }

    /// Checks `journal` against the budgets: every baseline operator's
    /// total db-hits must not exceed its budget by more than
    /// `tolerance` (a fraction). A journal with no `Plan` records at
    /// all fails when the baseline has any — profiling silently
    /// turning off must not read as a pass. Operators cheaper than
    /// (or absent from) the run never fail. Returns the violations
    /// (empty = pass).
    pub fn check(&self, journal: &RunJournal, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.records > 0 && !journal.has_plans() {
            violations.push(
                "baseline has plan records but the journal carries none \
                 (was the run profiled?)"
                    .to_owned(),
            );
            return violations;
        }
        let current = PlanBaseline::from_journal(journal);
        for base in &self.ops {
            let now = current.ops.iter().find(|o| o.op == base.op).map(|o| o.db_hits).unwrap_or(0);
            let allowed = (base.db_hits as f64 * (1.0 + tolerance)).floor() as u64;
            if base.db_hits > 0 && now > allowed {
                violations.push(format!(
                    "operator `{}`: {now} db-hits exceed baseline {} by more than {:.0}%",
                    base.op,
                    base.db_hits,
                    tolerance * 100.0
                ));
            }
        }
        violations
    }
}

/// The optimizer A/B digest embedded in a [`PlanBaseline`]: one pass
/// of the repro query suite with the optimizing layer off, one with it
/// on. Both passes are deterministic for a fixed seed and scale, so —
/// like the lineage gate — the CI check is exact, not tolerance-based.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OptimizerBaseline {
    /// Queries in the A/B suite.
    pub suite_queries: u64,
    /// Total db-hits executing the suite naively (optimizer off).
    pub naive_db_hits: u64,
    /// Total db-hits executing the suite through the optimizing
    /// layer (rewrites + plan cache + result memo).
    pub optimized_db_hits: u64,
    /// Plan-cache lookups during the optimized pass.
    pub plan_cache_lookups: u64,
    /// Plan-cache lookups answered from the cache.
    pub plan_cache_hits: u64,
    /// Queries answered from the result memo (zero db-hits).
    pub memo_hits: u64,
    /// `plan_cache_hits / plan_cache_lookups`, stored for the humans
    /// reading the JSON; the gate compares the integer fields.
    pub plan_cache_hit_rate_pct: f64,
}

impl OptimizerBaseline {
    /// Percentage of suite db-hits the optimizing layer saved.
    pub fn db_hits_drop_pct(&self) -> f64 {
        if self.naive_db_hits == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.optimized_db_hits as f64 / self.naive_db_hits as f64)
        }
    }

    /// Exact comparison against a fresh A/B run. A current digest with
    /// zero lookups fails outright when the baseline has any — the
    /// optimizing layer silently turning off must not read as a pass.
    /// Returns the violations (empty = pass).
    pub fn check(&self, current: &OptimizerBaseline) -> Vec<String> {
        let mut violations = Vec::new();
        if self.plan_cache_lookups > 0 && current.plan_cache_lookups == 0 {
            violations.push(
                "baseline has plan-cache lookups but the run recorded none \
                 (was the optimizing layer on?)"
                    .to_owned(),
            );
            return violations;
        }
        let fields = [
            ("suite_queries", self.suite_queries, current.suite_queries),
            ("naive_db_hits", self.naive_db_hits, current.naive_db_hits),
            ("optimized_db_hits", self.optimized_db_hits, current.optimized_db_hits),
            ("plan_cache_lookups", self.plan_cache_lookups, current.plan_cache_lookups),
            ("plan_cache_hits", self.plan_cache_hits, current.plan_cache_hits),
            ("memo_hits", self.memo_hits, current.memo_hits),
        ];
        for (name, base, now) in fields {
            if base != now {
                violations.push(format!("`{name}`: run has {now}, baseline {base} (exact gate)"));
            }
        }
        violations
    }
}

/// Run-wide plan-cache and optimizer counters, read off a journal's
/// counter totals — the table behind the `grm trace plans` cache
/// section and its `--json` artifact.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanCacheReport {
    /// Plan-cache lookups (`hits + misses`).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries dropped by the TTL.
    pub expirations: u64,
    /// Queries answered from the result memo without executing.
    pub memoized_queries: u64,
    /// `WHERE` equality conjuncts pushed into pattern property maps.
    pub predicates_pushed: u64,
    /// Node patterns re-anchored on their most selective label.
    pub labels_reordered: u64,
    /// `MATCH` clauses re-sequenced cheapest-anchor-first.
    pub patterns_reordered: u64,
    /// Paths pre-reversed towards their cheaper end.
    pub paths_reversed: u64,
    /// `hits / lookups`, in percent (0 when the cache never ran).
    pub hit_rate_pct: f64,
}

impl PlanCacheReport {
    /// Reads the run-wide counter totals.
    pub fn from_journal(journal: &RunJournal) -> PlanCacheReport {
        let hits = journal.total("plan_cache_hits");
        let misses = journal.total("plan_cache_misses");
        let lookups = hits + misses;
        let hit_rate_pct = if lookups == 0 { 0.0 } else { 100.0 * hits as f64 / lookups as f64 };
        PlanCacheReport {
            lookups,
            hits,
            misses,
            evictions: journal.total("plan_cache_evictions"),
            expirations: journal.total("plan_cache_expirations"),
            memoized_queries: journal.total("cypher_queries_memoized"),
            predicates_pushed: journal.total("optimizer_predicates_pushed"),
            labels_reordered: journal.total("optimizer_labels_reordered"),
            patterns_reordered: journal.total("optimizer_patterns_reordered"),
            paths_reversed: journal.total("optimizer_paths_reversed"),
            hit_rate_pct,
        }
    }

    /// True when the run never touched the optimizing layer (naive
    /// scoring path, or a pre-optimizer journal).
    pub fn is_empty(&self) -> bool {
        self.lookups == 0 && self.memoized_queries == 0
    }

    /// Two-row summary table for the text mode of `grm trace plans`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan cache:\n  {:<9} {:>6} {:>8} {:>10} {:>12} {:>9} {:>9}\n",
            "lookups", "hits", "misses", "evictions", "expirations", "hit%", "memoized"
        ));
        out.push_str(&format!(
            "  {:<9} {:>6} {:>8} {:>10} {:>12} {:>8.1} {:>9}\n",
            self.lookups,
            self.hits,
            self.misses,
            self.evictions,
            self.expirations,
            self.hit_rate_pct,
            self.memoized_queries,
        ));
        out.push_str(&format!(
            "optimizer rewrites:\n  {:<9} {:>8} {:>10} {:>9}\n",
            "pushed", "relabels", "reorders", "reversals"
        ));
        out.push_str(&format!(
            "  {:<9} {:>8} {:>10} {:>9}\n",
            self.predicates_pushed,
            self.labels_reordered,
            self.patterns_reordered,
            self.paths_reversed,
        ));
        out
    }
}

/// One origin row of a [`LineageReport`]: how many selected rules a
/// single encoded context (window/chunk/summary) yielded.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OriginYield {
    /// Stable context id (`window-<i>`, `chunk-<i>`, `summary`).
    pub origin: String,
    /// First token of the context in the encoded text.
    pub start_token: u64,
    /// Context length in tokens.
    pub token_len: u64,
    /// Selected rules attributed to this context.
    pub rules: u64,
    /// Of those, rules whose translation was classified `correct`.
    pub correct: u64,
}

/// The aggregation behind `grm trace lineage`: every `Lineage` record
/// of a journal folded into a per-rule provenance table, per-origin
/// rule yields, an error-class tally, and the window-boundary
/// breakages. Serialisable as-is — `grm trace lineage --json` emits
/// it with `serde_json::to_string_pretty`.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineageReport {
    /// Lineage records in rule-index order.
    pub rules: Vec<LineageRecord>,
    /// Per-origin yields, sorted by (start_token, origin id).
    pub yields: Vec<OriginYield>,
    /// Error-class tally over `error_class`, name-sorted.
    pub classes: Vec<(String, u64)>,
    /// Window-boundary breakages, sorted by (first, last, node).
    pub boundaries: Vec<BoundaryRecord>,
}

impl LineageReport {
    /// Aggregates the journal's `Lineage` and `Boundary` records.
    /// Empty report means the journal carries none — pre-v4 input.
    pub fn from_journal(journal: &RunJournal) -> LineageReport {
        let mut rules = journal.lineages.clone();
        rules.sort_by_key(|l| l.index);
        let mut yields: Vec<OriginYield> = Vec::new();
        let mut classes: Vec<(String, u64)> = Vec::new();
        for lineage in &rules {
            let correct = (lineage.error_class == "correct") as u64;
            for origin in &lineage.origins {
                match yields.iter_mut().find(|y| y.origin == origin.id) {
                    Some(y) => {
                        y.rules += 1;
                        y.correct += correct;
                    }
                    None => yields.push(OriginYield {
                        origin: origin.id.clone(),
                        start_token: origin.start_token,
                        token_len: origin.token_len,
                        rules: 1,
                        correct,
                    }),
                }
            }
            match classes.iter_mut().find(|(name, _)| *name == lineage.error_class) {
                Some((_, n)) => *n += 1,
                None => classes.push((lineage.error_class.clone(), 1)),
            }
        }
        yields.sort_by(|a, b| (a.start_token, &a.origin).cmp(&(b.start_token, &b.origin)));
        classes.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut boundaries = journal.boundaries.clone();
        boundaries.sort_by(|a, b| {
            (a.first_window, a.last_window, &a.node).cmp(&(b.first_window, b.last_window, &b.node))
        });
        LineageReport { rules, yields, classes, boundaries }
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.boundaries.is_empty()
    }

    /// The provenance tables: origin → rules → error class → scores,
    /// then the per-origin yields, the class tally, and the §4.5
    /// boundary breakages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rule lineage (origin -> rule -> error class -> scores):\n  \
             {:<9} {:>4} {:>3} {:<22} {:<22} {:>3} {:>7} {:>7} {:>7}  {}\n",
            "rule", "freq", "att", "class", "final", "fix", "supp", "cov%", "conf%", "origins"
        ));
        for l in &self.rules {
            let origins: Vec<String> = l
                .origins
                .iter()
                .map(|o| format!("{}@{}+{}", o.id, o.start_token, o.token_len))
                .collect();
            out.push_str(&format!(
                "  {:<9} {:>4} {:>3} {:<22} {:<22} {:>3} {:>7} {:>7} {:>7}  {}\n",
                l.rule,
                l.frequency,
                l.translation_attempts,
                l.error_class,
                l.final_class,
                if l.corrected { "yes" } else { "no" },
                l.support.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
                l.coverage_pct.map(|c| format!("{c:.1}")).unwrap_or_else(|| "-".into()),
                l.confidence_pct.map(|c| format!("{c:.1}")).unwrap_or_else(|| "-".into()),
                origins.join(", "),
            ));
        }
        out.push_str("error classes:\n");
        for (name, count) in &self.classes {
            out.push_str(&format!("  {name:<26} {count}\n"));
        }
        out.push_str(&format!(
            "per-origin rule yield:\n  {:<12} {:>11} {:>10} {:>6} {:>8}\n",
            "origin", "start_token", "token_len", "rules", "correct"
        ));
        for y in &self.yields {
            out.push_str(&format!(
                "  {:<12} {:>11} {:>10} {:>6} {:>8}\n",
                y.origin, y.start_token, y.token_len, y.rules, y.correct
            ));
        }
        out.push_str(&format!("window-boundary breakages: {}\n", self.boundaries.len()));
        for b in &self.boundaries {
            out.push_str(&format!(
                "  {:<8} spans window-{}..window-{}\n",
                b.node, b.first_window, b.last_window
            ));
        }
        out
    }
}

/// Renders one rule's full ancestry chain for `grm explain`: origins
/// with token ranges, merge frequency, translation attempts, error
/// class and correction, final scores, and (when the journal carries
/// plan records) the rule's query-profile cost. `None` when the
/// journal has no lineage for `rule`.
pub fn explain_rule(journal: &RunJournal, rule: &str) -> Option<String> {
    let l = journal.lineage(rule)?;
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", l.rule, l.nl));
    out.push_str(&format!("  strategy:    {}\n", l.strategy));
    out.push_str(&format!("  mined from {} context(s):\n", l.origins.len()));
    for o in &l.origins {
        out.push_str(&format!(
            "    {:<10} tokens {}..{}\n",
            o.id,
            o.start_token,
            o.start_token + o.token_len
        ));
    }
    out.push_str(&format!(
        "  merge:       mined {} time(s) before dedup (frequency {})\n",
        l.frequency, l.frequency
    ));
    out.push_str(&format!(
        "  translation: {} attempt(s), error class {} -> {}{}\n",
        l.translation_attempts,
        l.error_class,
        l.final_class,
        if l.corrected { " (correction applied)" } else { "" }
    ));
    match (l.support, l.coverage_pct, l.confidence_pct) {
        (Some(support), Some(coverage), Some(confidence)) => out.push_str(&format!(
            "  scores:      support {support}, coverage {coverage:.2}%, confidence {confidence:.2}%\n"
        )),
        _ => out.push_str(&format!("  scores:      not scored (final class {})\n", l.final_class)),
    }
    if let Some(plan) = journal.plan(&l.rule) {
        out.push_str(&format!(
            "  profile:     {} queries, {} db-hits, {:.2}ms real{}\n",
            plan.queries,
            plan.db_hits(),
            plan.total_us as f64 / 1_000.0,
            if plan.slow { "  SLOW" } else { "" }
        ));
    }
    Some(out)
}

/// A committed lineage baseline: error-class counts, per-origin rule
/// yields and the boundary-breakage count of the deterministic sim.
/// Written by `repro --lineage-baseline`, consumed by `grm trace
/// lineage --check` in CI. Lineage is fully deterministic for a fixed
/// seed and scale, so the gate is **exact** — no tolerance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineageBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    /// Context strategy of the snapshot run.
    pub strategy: String,
    /// Selected rules in the snapshot run.
    pub rules: u64,
    /// Error-class counts, name-sorted.
    pub classes: Vec<(String, u64)>,
    /// Per-origin rule yields, (start_token, id)-sorted.
    pub yields: Vec<(String, u64)>,
    /// Window-boundary breakages in the snapshot run.
    pub boundaries: u64,
}

impl LineageBaseline {
    /// Freezes the journal's lineage into a baseline snapshot.
    pub fn from_journal(journal: &RunJournal) -> LineageBaseline {
        let report = LineageReport::from_journal(journal);
        LineageBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            strategy: report.rules.first().map(|l| l.strategy.clone()).unwrap_or_default(),
            rules: report.rules.len() as u64,
            classes: report.classes.clone(),
            yields: report.yields.iter().map(|y| (y.origin.clone(), y.rules)).collect(),
            boundaries: report.boundaries.len() as u64,
        }
    }

    /// Checks `journal` against this baseline exactly: rule count,
    /// every error-class count, every per-origin yield, and the
    /// boundary-breakage count must all match. A journal with no
    /// `Lineage` records at all fails when the baseline has any —
    /// lineage silently turning off must not read as a pass. Returns
    /// the violations (empty = pass).
    pub fn check(&self, journal: &RunJournal) -> Vec<String> {
        let mut violations = Vec::new();
        if self.rules > 0 && !journal.has_lineage() {
            violations.push(
                "baseline has lineage records but the journal carries none \
                 (was the run traced?)"
                    .to_owned(),
            );
            return violations;
        }
        let current = LineageBaseline::from_journal(journal);
        if current.rules != self.rules {
            violations.push(format!("{} rules, baseline has {}", current.rules, self.rules));
        }
        let count_of = |pairs: &[(String, u64)], key: &str| {
            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0)
        };
        let mut class_names: Vec<&String> =
            self.classes.iter().chain(&current.classes).map(|(k, _)| k).collect();
        class_names.sort();
        class_names.dedup();
        for name in class_names {
            let (base, now) = (count_of(&self.classes, name), count_of(&current.classes, name));
            if base != now {
                violations.push(format!("error class `{name}`: {now} rules, baseline has {base}"));
            }
        }
        let mut origin_names: Vec<&String> =
            self.yields.iter().chain(&current.yields).map(|(k, _)| k).collect();
        origin_names.sort();
        origin_names.dedup();
        for name in origin_names {
            let (base, now) = (count_of(&self.yields, name), count_of(&current.yields, name));
            if base != now {
                violations
                    .push(format!("origin `{name}`: yields {now} rules, baseline has {base}"));
            }
        }
        if current.boundaries != self.boundaries {
            violations.push(format!(
                "{} window-boundary breakages, baseline has {}",
                current.boundaries, self.boundaries
            ));
        }
        violations
    }
}

/// Per-stage fault digest inside a [`FaultReport`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageFaults {
    /// Stage name: `mine`, `translate`, or `evaluate`.
    pub stage: String,
    /// Faults injected into this stage's units.
    pub faults: u64,
    /// Fault-kind counts, name-sorted.
    pub kinds: Vec<(String, u64)>,
    /// Units that faulted at least once and eventually completed.
    pub recovered: u64,
    /// Units abandoned after exhausting their retries.
    pub abandoned: u64,
    /// Units the pipeline gave up on (abandoned or breaker-skipped).
    pub degraded: u64,
    /// Simulated seconds lost to the faults themselves.
    pub cost_seconds: f64,
    /// Simulated seconds spent backing off between attempts.
    pub backoff_seconds: f64,
}

/// The aggregation behind `grm trace faults`: every v5 resilience
/// record of a journal folded into the chaos identity, a per-stage
/// fault digest, the degraded-unit list, and the checkpoint count.
/// Serialisable as-is for `grm trace faults --json`.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultReport {
    /// Chaos-run identity, when the journal carries one.
    pub chaos: Option<ChaosRecord>,
    /// Per-stage digests, stage-name-sorted.
    pub stages: Vec<StageFaults>,
    /// Degraded units, (stage, unit)-sorted.
    pub degraded: Vec<DegradedRecord>,
    /// Completed-unit checkpoints available to `--resume`.
    pub checkpoints: u64,
    /// Stage-breaker trips (run-wide counter).
    pub breaker_trips: u64,
    /// Damaged lines a lossy parse dropped.
    pub corrupt_lines: u64,
    /// Unknown-record lines a parse skipped.
    pub unknown_lines: u64,
}

impl FaultReport {
    /// Aggregates the journal's resilience records. Empty report
    /// means the journal carries none — a fault-free (or pre-v5) run.
    pub fn from_journal(journal: &RunJournal) -> FaultReport {
        let mut stages: Vec<StageFaults> = Vec::new();
        let stage_mut = |name: &str, stages: &mut Vec<StageFaults>| -> usize {
            match stages.iter().position(|s| s.stage == name) {
                Some(i) => i,
                None => {
                    stages.push(StageFaults { stage: name.to_owned(), ..StageFaults::default() });
                    stages.len() - 1
                }
            }
        };
        for fault in &journal.faults {
            let i = stage_mut(&fault.stage, &mut stages);
            let s = &mut stages[i];
            s.faults += 1;
            s.cost_seconds += fault.cost_seconds;
            s.backoff_seconds += fault.backoff_seconds;
            match s.kinds.iter_mut().find(|(k, _)| *k == fault.kind) {
                Some((_, n)) => *n += 1,
                None => s.kinds.push((fault.kind.clone(), 1)),
            }
        }
        for retry in &journal.retries {
            let i = stage_mut(&retry.stage, &mut stages);
            if retry.recovered {
                stages[i].recovered += 1;
            } else {
                stages[i].abandoned += 1;
            }
        }
        for record in &journal.degraded {
            let i = stage_mut(&record.stage, &mut stages);
            stages[i].degraded += 1;
        }
        for s in &mut stages {
            s.kinds.sort_by(|(a, _), (b, _)| a.cmp(b));
        }
        stages.sort_by(|a, b| a.stage.cmp(&b.stage));
        let mut degraded = journal.degraded.clone();
        degraded.sort_by(|a, b| (&a.stage, &a.unit).cmp(&(&b.stage, &b.unit)));
        FaultReport {
            chaos: journal.chaos.clone(),
            stages,
            degraded,
            checkpoints: journal.checkpoints.len() as u64,
            breaker_trips: journal.total(crate::counter::Counter::BreakerTrips.name()),
            corrupt_lines: journal.corrupt_lines,
            unknown_lines: journal.unknown_lines,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.chaos.is_none() && self.stages.is_empty() && self.degraded.is_empty()
    }

    /// The fault tables: chaos identity, per-stage digest, degraded
    /// units, checkpoints, and parse losses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(c) = &self.chaos {
            out.push_str(&format!(
                "chaos run: seed {} fault-seed {} fault-rate {} max-retries {} \
                 breaker-threshold {}\n  {} / {} / {} on {} nodes, {} edges\n",
                c.run_seed,
                c.fault_seed,
                c.fault_rate,
                c.max_retries,
                c.breaker_threshold,
                c.model,
                c.strategy,
                c.prompting,
                c.graph_nodes,
                c.graph_edges
            ));
        }
        out.push_str(&format!(
            "faults by stage:\n  {:<10} {:>7} {:>9} {:>9} {:>9} {:>10} {:>11}  {}\n",
            "stage",
            "faults",
            "recovered",
            "abandoned",
            "degraded",
            "cost(s)",
            "backoff(s)",
            "kinds"
        ));
        for s in &self.stages {
            let kinds: Vec<String> = s.kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
            out.push_str(&format!(
                "  {:<10} {:>7} {:>9} {:>9} {:>9} {:>10.2} {:>11.2}  {}\n",
                s.stage,
                s.faults,
                s.recovered,
                s.abandoned,
                s.degraded,
                s.cost_seconds,
                s.backoff_seconds,
                kinds.join(", ")
            ));
        }
        out.push_str(&format!("degraded units: {}\n", self.degraded.len()));
        for d in &self.degraded {
            out.push_str(&format!("  {:<10} {:<12} {}\n", d.stage, d.unit, d.reason));
        }
        out.push_str(&format!(
            "breaker trips: {}\ncheckpoints: {}\n",
            self.breaker_trips, self.checkpoints
        ));
        if self.corrupt_lines + self.unknown_lines > 0 {
            out.push_str(&format!(
                "skipped lines: {} corrupt dropped, {} unknown record kinds\n",
                self.corrupt_lines, self.unknown_lines
            ));
        }
        out
    }
}

/// A committed chaos baseline: the fault counts, retry verdicts and
/// final rule count of the deterministic chaos sim. Written by
/// `repro --chaos-baseline`, consumed by `grm trace faults --check`
/// in CI. Chaos runs are fully deterministic for a fixed
/// `(seed, fault-seed, fault-rate)`, so the gate is **exact**.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    /// Fault-stream seed of the snapshot run.
    pub fault_seed: u64,
    /// Per-attempt fault probability of the snapshot run.
    pub fault_rate: f64,
    /// Total faults injected.
    pub faults_injected: u64,
    /// Fault-kind counts across all stages, name-sorted.
    pub kinds: Vec<(String, u64)>,
    /// Units that recovered by retrying.
    pub recovered: u64,
    /// Units abandoned after exhausting retries.
    pub abandoned: u64,
    /// Per-stage degraded-unit counts, stage-name-sorted.
    pub degraded: Vec<(String, u64)>,
    /// Stage-breaker trips.
    pub breaker_trips: u64,
    /// Completed-unit checkpoints written.
    pub checkpoints: u64,
    /// Rules surviving the degraded pipeline (lineage records).
    pub rules: u64,
}

impl ChaosBaseline {
    /// Freezes the journal's resilience records into a baseline.
    pub fn from_journal(journal: &RunJournal) -> ChaosBaseline {
        let report = FaultReport::from_journal(journal);
        let mut kinds: Vec<(String, u64)> = Vec::new();
        for s in &report.stages {
            for (kind, n) in &s.kinds {
                match kinds.iter_mut().find(|(k, _)| k == kind) {
                    Some((_, total)) => *total += n,
                    None => kinds.push((kind.clone(), *n)),
                }
            }
        }
        kinds.sort_by(|(a, _), (b, _)| a.cmp(b));
        ChaosBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            fault_seed: report.chaos.as_ref().map(|c| c.fault_seed).unwrap_or(0),
            fault_rate: report.chaos.as_ref().map(|c| c.fault_rate).unwrap_or(0.0),
            faults_injected: report.stages.iter().map(|s| s.faults).sum(),
            kinds,
            recovered: report.stages.iter().map(|s| s.recovered).sum(),
            abandoned: report.stages.iter().map(|s| s.abandoned).sum(),
            degraded: report.stages.iter().map(|s| (s.stage.clone(), s.degraded)).collect(),
            breaker_trips: report.breaker_trips,
            checkpoints: report.checkpoints,
            rules: journal.lineages.len() as u64,
        }
    }

    /// Checks `journal` against this baseline exactly: every fault
    /// count, kind tally, retry verdict, degraded count and the final
    /// rule count must match. A journal with no resilience records at
    /// all fails when the baseline has faults — chaos silently
    /// turning off must not read as a pass. Returns the violations
    /// (empty = pass).
    pub fn check(&self, journal: &RunJournal) -> Vec<String> {
        let mut violations = Vec::new();
        if self.faults_injected > 0 && !journal.has_faults() {
            violations.push(
                "baseline has fault records but the journal carries none \
                 (was the run chaos-injected?)"
                    .to_owned(),
            );
            return violations;
        }
        let current = ChaosBaseline::from_journal(journal);
        if current.fault_seed != self.fault_seed {
            violations.push(format!(
                "fault seed {}, baseline has {}",
                current.fault_seed, self.fault_seed
            ));
        }
        if current.fault_rate != self.fault_rate {
            violations.push(format!(
                "fault rate {}, baseline has {}",
                current.fault_rate, self.fault_rate
            ));
        }
        let exact = |name: &str, now: u64, base: u64, violations: &mut Vec<String>| {
            if now != base {
                violations.push(format!("{name}: {now}, baseline has {base}"));
            }
        };
        exact("faults injected", current.faults_injected, self.faults_injected, &mut violations);
        exact("units recovered", current.recovered, self.recovered, &mut violations);
        exact("units abandoned", current.abandoned, self.abandoned, &mut violations);
        exact("breaker trips", current.breaker_trips, self.breaker_trips, &mut violations);
        exact("checkpoints", current.checkpoints, self.checkpoints, &mut violations);
        exact("rules", current.rules, self.rules, &mut violations);
        let count_of = |pairs: &[(String, u64)], key: &str| {
            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0)
        };
        let mut kind_names: Vec<&String> =
            self.kinds.iter().chain(&current.kinds).map(|(k, _)| k).collect();
        kind_names.sort();
        kind_names.dedup();
        for name in kind_names {
            let (base, now) = (count_of(&self.kinds, name), count_of(&current.kinds, name));
            if base != now {
                violations.push(format!("fault kind `{name}`: {now}, baseline has {base}"));
            }
        }
        let mut stage_names: Vec<&String> =
            self.degraded.iter().chain(&current.degraded).map(|(k, _)| k).collect();
        stage_names.sort();
        stage_names.dedup();
        for name in stage_names {
            let (base, now) = (count_of(&self.degraded, name), count_of(&current.degraded, name));
            if base != now {
                violations
                    .push(format!("stage `{name}`: {now} degraded units, baseline has {base}"));
            }
        }
        violations
    }
}

/// One span row of a [`MemReport`], keyed by the span's path.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemSpanRow {
    pub path: String,
    /// Bytes allocated between span open and close (inclusive of
    /// children).
    pub alloc_bytes: u64,
    pub alloc_count: u64,
    pub dealloc_count: u64,
    /// Growth of the process peak while the span was open.
    pub peak_delta: u64,
}

/// One footprint component of a [`MemReport`] (`graph`, `vecstore`).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemComponent {
    pub component: String,
    /// Per-structure rows, as journaled.
    pub rows: Vec<FootprintRow>,
    /// Total bytes over the rows.
    pub bytes: u64,
}

/// The aggregation behind `grm trace mem`: every v6 `Mem` record of a
/// journal folded into an allocating-spans table, the run-wide
/// allocator totals, and the deterministic footprint breakdown.
/// Serialisable as-is for `grm trace mem --json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemReport {
    /// Span rows sorted by allocated bytes descending (ties by path).
    pub spans: Vec<MemSpanRow>,
    /// Run-wide process peak, bytes (0 without the tracking
    /// allocator).
    pub run_peak_bytes: u64,
    /// Run-wide bytes allocated between recorder start and snapshot.
    pub run_alloc_bytes: u64,
    pub run_alloc_count: u64,
    pub run_dealloc_count: u64,
    /// Footprint components, name-sorted.
    pub components: Vec<MemComponent>,
}

impl MemReport {
    /// Aggregates the journal's `Mem` records. Empty report means the
    /// journal carries none — pre-v6 input, or a run whose binary
    /// never installed [`crate::TrackingAlloc`] and recorded no
    /// footprints either.
    pub fn from_journal(journal: &RunJournal) -> MemReport {
        let mut report = MemReport::default();
        for mem in &journal.mems {
            match mem.kind.as_str() {
                "span" => {
                    let path = mem
                        .span
                        .and_then(|id| journal.spans.iter().find(|s| s.id == id))
                        .map(|s| span_path(journal, s, "/"))
                        .unwrap_or_else(|| "(run)".to_owned());
                    report.spans.push(MemSpanRow {
                        path,
                        alloc_bytes: mem.alloc_bytes,
                        alloc_count: mem.alloc_count,
                        dealloc_count: mem.dealloc_count,
                        peak_delta: mem.peak_delta,
                    });
                }
                "run" => {
                    report.run_peak_bytes = report.run_peak_bytes.max(mem.peak_bytes);
                    report.run_alloc_bytes += mem.alloc_bytes;
                    report.run_alloc_count += mem.alloc_count;
                    report.run_dealloc_count += mem.dealloc_count;
                }
                _ => {
                    let component =
                        match report.components.iter_mut().find(|c| c.component == mem.component) {
                            Some(c) => c,
                            None => {
                                report.components.push(MemComponent {
                                    component: mem.component.clone(),
                                    ..MemComponent::default()
                                });
                                report.components.last_mut().expect("just pushed")
                            }
                        };
                    component.bytes += mem.footprint_bytes();
                    component.rows.extend(mem.footprint.iter().cloned());
                }
            }
        }
        report
            .spans
            .sort_by(|a, b| b.alloc_bytes.cmp(&a.alloc_bytes).then_with(|| a.path.cmp(&b.path)));
        report.components.sort_by(|a, b| a.component.cmp(&b.component));
        report
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.components.is_empty() && self.run_alloc_count == 0
    }

    /// Total deterministic footprint bytes over every component.
    pub fn footprint_bytes(&self) -> u64 {
        self.components.iter().map(|c| c.bytes).sum()
    }

    /// The memory tables: top-`top` allocating spans, the run totals,
    /// then the footprint breakdown.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "top allocating spans:\n  {:<28} {:>14} {:>10} {:>10} {:>14}\n",
                "span", "alloc bytes", "allocs", "frees", "peak delta"
            ));
            for s in self.spans.iter().take(top) {
                out.push_str(&format!(
                    "  {:<28} {:>14} {:>10} {:>10} {:>14}\n",
                    s.path, s.alloc_bytes, s.alloc_count, s.dealloc_count, s.peak_delta
                ));
            }
            if self.spans.len() > top {
                out.push_str(&format!("  … {} more spans\n", self.spans.len() - top));
            }
        }
        if self.run_alloc_count > 0 {
            out.push_str(&format!(
                "run totals: {} bytes allocated in {} allocs ({} frees), peak {} bytes\n",
                self.run_alloc_bytes,
                self.run_alloc_count,
                self.run_dealloc_count,
                self.run_peak_bytes
            ));
        }
        out.push_str(&format!(
            "deterministic footprint ({} bytes total):\n",
            self.footprint_bytes()
        ));
        for c in &self.components {
            out.push_str(&format!("  {:<12} {:>14} bytes\n", c.component, c.bytes));
            for row in &c.rows {
                out.push_str(&format!(
                    "    {:<18} {:>10} x {:>12} bytes\n",
                    row.name, row.count, row.bytes
                ));
            }
        }
        out
    }
}

/// A committed memory baseline: the deterministic footprint tables
/// (gated **exactly** — pure capacity arithmetic) plus the run-wide
/// allocator peak and alloc count (tolerance-gated — real allocator
/// numbers jitter across platforms and toolchains). Written by
/// `repro --mem-baseline`, consumed by `grm trace mem --check` in CI.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemBaseline {
    /// Journal schema version the snapshot was taken from.
    pub journal_version: u32,
    /// Footprint components of the snapshot run, name-sorted.
    pub components: Vec<MemComponent>,
    /// Run-wide peak bytes of the snapshot run.
    pub run_peak_bytes: u64,
    /// Run-wide allocation count of the snapshot run.
    pub run_alloc_count: u64,
}

impl MemBaseline {
    /// Freezes the journal's memory records into a baseline.
    pub fn from_journal(journal: &RunJournal) -> MemBaseline {
        let report = MemReport::from_journal(journal);
        MemBaseline {
            journal_version: crate::journal::JOURNAL_VERSION,
            components: report.components,
            run_peak_bytes: report.run_peak_bytes,
            run_alloc_count: report.run_alloc_count,
        }
    }

    /// Checks `journal` against this baseline: every footprint row
    /// must match **exactly** (count and bytes — capacity arithmetic
    /// is deterministic for a fixed seed and scale), while the
    /// allocator peak and alloc count must not exceed the baseline by
    /// more than `tolerance` (a fraction) and must not be zero when
    /// the baseline has them. A journal with no `Mem` records at all
    /// fails when the baseline has any — allocation tracking silently
    /// turning off must not read as a pass. Returns the violations
    /// (empty = pass).
    pub fn check(&self, journal: &RunJournal, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        let has_baseline =
            !self.components.is_empty() || self.run_peak_bytes > 0 || self.run_alloc_count > 0;
        if has_baseline && !journal.has_mem() {
            violations.push(
                "baseline has mem records but the journal carries none \
                 (was allocation tracking enabled?)"
                    .to_owned(),
            );
            return violations;
        }
        let current = MemReport::from_journal(journal);
        for base in &self.components {
            let Some(now) = current.components.iter().find(|c| c.component == base.component)
            else {
                violations
                    .push(format!("footprint component `{}` missing from the run", base.component));
                continue;
            };
            for row in &base.rows {
                let Some(now_row) = now.rows.iter().find(|r| r.name == row.name) else {
                    violations.push(format!(
                        "footprint `{}/{}` missing from the run",
                        base.component, row.name
                    ));
                    continue;
                };
                if (now_row.count, now_row.bytes) != (row.count, row.bytes) {
                    violations.push(format!(
                        "footprint `{}/{}`: {} x {} bytes, baseline has {} x {} (exact gate)",
                        base.component,
                        row.name,
                        now_row.count,
                        now_row.bytes,
                        row.count,
                        row.bytes
                    ));
                }
            }
            for now_row in &now.rows {
                if !base.rows.iter().any(|r| r.name == now_row.name) {
                    violations.push(format!(
                        "footprint `{}/{}` missing from the baseline (exact gate)",
                        base.component, now_row.name
                    ));
                }
            }
        }
        for (name, base, now) in [
            ("run peak", self.run_peak_bytes, current.run_peak_bytes),
            ("run alloc count", self.run_alloc_count, current.run_alloc_count),
        ] {
            if base == 0 {
                continue;
            }
            if now == 0 {
                violations.push(format!(
                    "baseline has a non-zero {name} but the run recorded none \
                     (was the tracking allocator installed?)"
                ));
            } else if now as f64 > base as f64 * (1.0 + tolerance) {
                violations.push(format!(
                    "{name}: {now} exceeds baseline {base} by more than {:.0}%",
                    tolerance * 100.0
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{Counter, Histo};
    use crate::plan::{PlanOpRecord, PlanRecord};
    use crate::recorder::Recorder;

    /// A small two-stage recording with per-worker children.
    fn sample(scale: f64) -> RunJournal {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        for w in 0..2u64 {
            let worker = mine.scope().span(&format!("worker-{w}"));
            let scope = worker.scope();
            scope.add(Counter::PromptsIssued, 3);
            for i in 0..3 {
                scope.observe(Histo::MineCallSeconds, scale * (1.0 + i as f64));
                scope.add_sim_seconds(scale * (1.0 + i as f64));
            }
            worker.finish();
        }
        mine.scope().add_sim_seconds(scale * 6.0);
        mine.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn identical_journals_diff_to_zero() {
        let a = sample(1.0);
        let b = sample(1.0);
        let diff = TraceDiff::compute(&a, &b);
        assert_eq!(diff.max_relative_sim_delta(), 0.0);
        assert!(diff.counters.iter().all(|c| c.a == c.b));
        let render = diff.render();
        assert!(render.contains("mine"));
        assert!(render.contains("prompts_issued"));
    }

    #[test]
    fn slower_run_exceeds_tolerance() {
        let a = sample(1.0);
        let b = sample(1.5);
        let diff = TraceDiff::compute(&a, &b);
        assert!(diff.max_relative_sim_delta() > 0.3);
        assert!(diff.max_relative_sim_delta() < 0.35);
    }

    #[test]
    fn worker_rows_appear_when_only_one_side_has_them() {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        mine.scope().observe(Histo::MineCallSeconds, 2.0);
        mine.scope().add_sim_seconds(2.0);
        mine.finish();
        root.finish();
        let serial = rec.snapshot();
        let parallel = sample(1.0);

        let diff = TraceDiff::compute(&serial, &parallel);
        let worker_rows: Vec<&StageDiffRow> =
            diff.stages.iter().filter(|r| r.path.starts_with("mine/worker-")).collect();
        assert_eq!(worker_rows.len(), 2);
        assert!(worker_rows.iter().all(|r| !r.in_a && r.in_b));
        // Per-worker histogram rows are present for side B only.
        let worker_histos: Vec<&HistoDiffRow> =
            diff.histograms.iter().filter(|h| h.scope.starts_with("mine/worker-")).collect();
        assert_eq!(worker_histos.len(), 2);
        assert!(worker_histos.iter().all(|h| h.a.is_empty() && !h.b.is_empty()));
    }

    #[test]
    fn folded_stacks_use_semicolon_paths() {
        let journal = sample(1.0);
        let sim = folded_stacks(&journal, FlameWeight::Sim);
        assert!(sim.contains("pipeline;mine;worker-0 "), "{sim}");
        for line in sim.lines() {
            let (_, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(weight.parse::<u64>().is_ok(), "{line}");
        }
        // Real weights are self-times: parseable and non-negative.
        for line in folded_stacks(&journal, FlameWeight::Real).lines() {
            let (_, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(weight.parse::<u64>().is_ok(), "{line}");
        }
    }

    /// `sample(scale)` plus an `evaluate` stage carrying plan records
    /// whose db-hits scale with `hits`.
    fn sample_with_plans(hits: u64) -> RunJournal {
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let evaluate = root.scope().span("evaluate");
        for r in 0..2u64 {
            let mut plan = PlanRecord::new(format!("rule-{r}"));
            plan.absorb(
                vec![
                    PlanOpRecord {
                        path: "ProduceResults/Filter/NodeByLabelScan".into(),
                        op: "NodeByLabelScan".into(),
                        detail: "(p:Person)".into(),
                        calls: 1,
                        rows: hits,
                        db_nodes: hits,
                        self_us: 40,
                        sim_us: 20,
                        ..PlanOpRecord::default()
                    },
                    PlanOpRecord {
                        path: "ProduceResults/Filter".into(),
                        op: "Filter".into(),
                        detail: "p.age > 30".into(),
                        calls: 1,
                        rows_in: hits,
                        rows: hits / 2,
                        db_props: hits,
                        self_us: 10,
                        sim_us: 5,
                        ..PlanOpRecord::default()
                    },
                ],
                hits / 2,
                120,
                60,
            );
            evaluate.scope().plan(plan);
        }
        evaluate.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn plan_report_aggregates_and_renders() {
        let journal = sample_with_plans(100);
        let report = PlanReport::from_journal(&journal);
        assert!(!report.is_empty());
        // Two rules, same two operators: merged into two op rows.
        assert_eq!(report.ops.len(), 2);
        let scan = report.ops.iter().find(|o| o.op == "NodeByLabelScan").unwrap();
        assert_eq!(scan.db_hits, 200);
        let filter = report.ops.iter().find(|o| o.op == "Filter").unwrap();
        assert_eq!(filter.rows_in, 200);
        assert_eq!(filter.rows, 100);
        assert_eq!(filter.selectivity(), Some(0.5));
        assert_eq!(report.scopes.len(), 2);
        let rendered = report.render(10);
        assert!(rendered.contains("NodeByLabelScan"), "{rendered}");
        assert!(rendered.contains("rule-0"), "{rendered}");
        assert!(rendered.contains("50%"), "{rendered}");
        // Truncation note appears when top-k cuts the table.
        assert!(PlanReport::from_journal(&journal).render(1).contains("more"), "empty");
        // A plan-free journal aggregates to an empty report.
        assert!(PlanReport::from_journal(&sample(1.0)).is_empty());
    }

    #[test]
    fn plan_baseline_gates_db_hit_budgets() {
        let journal = sample_with_plans(100);
        let baseline = PlanBaseline::from_journal(&journal);
        // Name-sorted op budgets, serde round-trip.
        assert_eq!(baseline.records, 2);
        assert_eq!(baseline.queries, 2);
        let ops: Vec<&str> = baseline.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, ["Filter", "NodeByLabelScan"]);
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let parsed: PlanBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, baseline);

        // The run it was taken from passes exactly.
        assert!(baseline.check(&journal, 0.0).is_empty());
        // More db-hits than budget fails a 5% tolerance…
        let violations = baseline.check(&sample_with_plans(120), 0.05);
        assert!(violations.iter().any(|v| v.contains("NodeByLabelScan")), "{violations:?}");
        // …passes once the tolerance covers it, and cheaper runs pass.
        assert!(baseline.check(&sample_with_plans(120), 0.25).is_empty());
        assert!(baseline.check(&sample_with_plans(50), 0.0).is_empty());
        // Profiling silently off is a failure, not a pass.
        let unprofiled = baseline.check(&sample(1.0), 0.0);
        assert!(unprofiled.iter().any(|v| v.contains("no") || v.contains("none")));
    }

    #[test]
    fn diff_db_hits_column_requires_plans_on_both_sides() {
        let with = sample_with_plans(100);
        let without = sample(1.0);
        let mixed = TraceDiff::compute(&with, &without);
        assert!(!mixed.has_plans);
        assert!(!mixed.render().contains("db-hits"));

        let both = TraceDiff::compute(&sample_with_plans(100), &sample_with_plans(120));
        assert!(both.has_plans);
        let evaluate = both.stages.iter().find(|r| r.path == "evaluate").unwrap();
        assert_eq!(evaluate.hits_a, 400);
        assert_eq!(evaluate.hits_b, 480);
        let rendered = both.render();
        assert!(rendered.contains("db-hits"), "{rendered}");
        assert!(rendered.contains("hits 400 -> 480 (+80)"), "{rendered}");
    }

    /// `sample(scale)` plus an `evaluate` stage carrying lineage for
    /// two rules mined from two windows, and one boundary breakage.
    fn sample_with_lineage(class_of_rule_1: &str) -> RunJournal {
        use crate::lineage::{BoundaryRecord, LineageRecord, OriginRef};
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let encode = root.scope().span("encode");
        encode.scope().boundary(BoundaryRecord {
            span: None,
            node: "n14".into(),
            first_window: 0,
            last_window: 1,
        });
        encode.finish();
        let evaluate = root.scope().span("evaluate");
        let origin =
            |i: u64| OriginRef { id: format!("window-{i}"), start_token: i * 900, token_len: 1000 };
        evaluate.scope().lineage(LineageRecord {
            index: 0,
            rule: "rule-0".into(),
            nl: "every Person has a name".into(),
            strategy: "sliding-window".into(),
            origins: vec![origin(1), origin(0)],
            frequency: 2,
            translation_attempts: 1,
            error_class: "correct".into(),
            final_class: "correct".into(),
            support: Some(120),
            coverage_pct: Some(100.0),
            confidence_pct: Some(98.5),
            ..LineageRecord::default()
        });
        evaluate.scope().lineage(LineageRecord {
            index: 1,
            rule: "rule-1".into(),
            nl: "every Team belongs to a Squad".into(),
            strategy: "sliding-window".into(),
            origins: vec![origin(1)],
            frequency: 1,
            translation_attempts: 2,
            error_class: class_of_rule_1.into(),
            final_class: "correct".into(),
            corrected: true,
            support: Some(40),
            coverage_pct: Some(80.0),
            confidence_pct: Some(75.0),
            ..LineageRecord::default()
        });
        evaluate.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn lineage_report_aggregates_and_renders() {
        let journal = sample_with_lineage("wrong_direction");
        let report = LineageReport::from_journal(&journal);
        assert!(!report.is_empty());
        assert_eq!(report.rules.len(), 2);
        // Origins were recorded out of order; the recorder sorts them.
        let ids: Vec<&str> = report.rules[0].origins.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, ["window-0", "window-1"]);
        // window-1 fed both rules, window-0 only the correct one.
        assert_eq!(report.yields.len(), 2);
        assert_eq!(report.yields[0].origin, "window-0");
        assert_eq!(report.yields[0].rules, 1);
        assert_eq!(report.yields[1].origin, "window-1");
        assert_eq!(report.yields[1].rules, 2);
        assert_eq!(report.yields[1].correct, 1);
        assert_eq!(report.classes, [("correct".to_owned(), 1), ("wrong_direction".to_owned(), 1)]);
        assert_eq!(report.boundaries.len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("rule-1"), "{rendered}");
        assert!(rendered.contains("wrong_direction"), "{rendered}");
        assert!(rendered.contains("window-1@900+1000"), "{rendered}");
        assert!(rendered.contains("n14"), "{rendered}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: LineageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
        // A lineage-free journal aggregates to an empty report.
        assert!(LineageReport::from_journal(&sample(1.0)).is_empty());
    }

    #[test]
    fn explain_rule_renders_the_ancestry_chain() {
        let journal = sample_with_lineage("syntax_error");
        let text = explain_rule(&journal, "rule-1").unwrap();
        assert!(text.contains("rule-1: every Team belongs to a Squad"), "{text}");
        assert!(text.contains("window-1"), "{text}");
        assert!(text.contains("2 attempt(s)"), "{text}");
        assert!(text.contains("syntax_error -> correct (correction applied)"), "{text}");
        assert!(text.contains("support 40"), "{text}");
        assert!(explain_rule(&journal, "rule-9").is_none());
        assert!(explain_rule(&sample(1.0), "rule-0").is_none());
    }

    #[test]
    fn lineage_baseline_gates_exactly() {
        let journal = sample_with_lineage("wrong_direction");
        let baseline = LineageBaseline::from_journal(&journal);
        assert_eq!(baseline.rules, 2);
        assert_eq!(baseline.boundaries, 1);
        assert_eq!(baseline.strategy, "sliding-window");
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let parsed: LineageBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, baseline);

        // The run it was taken from passes exactly.
        assert!(baseline.check(&journal).is_empty());
        // A different error class fails — the gate has no tolerance.
        let drifted = sample_with_lineage("syntax_error");
        let violations = baseline.check(&drifted);
        assert!(violations.iter().any(|v| v.contains("wrong_direction")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("syntax_error")), "{violations:?}");
        // Lineage silently off is a failure, not a pass.
        let unlineaged = baseline.check(&sample(1.0));
        assert!(unlineaged.iter().any(|v| v.contains("none")), "{unlineaged:?}");
    }

    /// A chaos recording: one recovered mine unit, one abandoned +
    /// degraded mine unit, and a degraded evaluate unit.
    fn sample_with_faults(kind_of_unit_3: &str) -> RunJournal {
        use crate::resilience::{
            ChaosRecord, CheckpointRecord, DegradedRecord, FaultRecord, RetryRecord,
        };
        let rec = Recorder::new();
        rec.set_chaos(ChaosRecord {
            run_seed: 42,
            fault_seed: 7,
            fault_rate: 0.2,
            max_retries: 3,
            breaker_threshold: 4,
            model: "Llama3-70B".into(),
            strategy: "Sliding Window Attention".into(),
            prompting: "Zero-shot".into(),
            graph_nodes: 100,
            graph_edges: 400,
        });
        let root = rec.root_scope().span("pipeline");
        let mine = root.scope().span("mine");
        let scope = mine.scope();
        scope.fault(FaultRecord {
            span: None,
            stage: "mine".into(),
            unit: 1,
            attempt: 0,
            kind: "timeout".into(),
            cost_seconds: 20.0,
            backoff_seconds: 0.55,
        });
        scope.add(Counter::FaultsInjected, 1);
        scope.retry(RetryRecord {
            span: None,
            stage: "mine".into(),
            unit: 1,
            attempts: 2,
            recovered: true,
        });
        scope.add(Counter::LlmCallsRetried, 1);
        for attempt in 0..2 {
            scope.fault(FaultRecord {
                span: None,
                stage: "mine".into(),
                unit: 3,
                attempt,
                kind: kind_of_unit_3.into(),
                cost_seconds: 5.0,
                backoff_seconds: if attempt == 1 { 0.0 } else { 0.5 },
            });
            scope.add(Counter::FaultsInjected, 1);
        }
        scope.retry(RetryRecord {
            span: None,
            stage: "mine".into(),
            unit: 3,
            attempts: 2,
            recovered: false,
        });
        scope.add(Counter::LlmCallsAbandoned, 1);
        scope.degraded(DegradedRecord {
            span: None,
            stage: "mine".into(),
            unit: "context-3".into(),
            reason: "retries_exhausted".into(),
        });
        scope.add(Counter::WindowsDegraded, 1);
        for unit in [0u64, 1, 2] {
            scope.checkpoint(CheckpointRecord {
                span: None,
                stage: "mine".into(),
                unit,
                payload: "{}".into(),
            });
        }
        mine.finish();
        let evaluate = root.scope().span("evaluate");
        evaluate.scope().degraded(DegradedRecord {
            span: None,
            stage: "evaluate".into(),
            unit: "rule-0".into(),
            reason: "retries_exhausted".into(),
        });
        evaluate.scope().add(Counter::QueriesDegraded, 1);
        evaluate.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn fault_report_aggregates_and_renders() {
        let journal = sample_with_faults("rate_limit");
        let report = FaultReport::from_journal(&journal);
        assert!(!report.is_empty());
        assert_eq!(report.chaos.as_ref().unwrap().fault_seed, 7);
        assert_eq!(report.checkpoints, 3);
        // Stage names sort "evaluate" before "mine".
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].stage, "evaluate");
        assert_eq!(report.stages[0].degraded, 1);
        let mine = &report.stages[1];
        assert_eq!(mine.faults, 3);
        assert_eq!(mine.recovered, 1);
        assert_eq!(mine.abandoned, 1);
        assert_eq!(mine.degraded, 1);
        assert_eq!(mine.kinds, [("rate_limit".to_owned(), 2), ("timeout".to_owned(), 1)]);
        assert!((mine.cost_seconds - 30.0).abs() < 1e-9);
        assert!((mine.backoff_seconds - 1.05).abs() < 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("fault-seed 7"), "{rendered}");
        assert!(rendered.contains("context-3"), "{rendered}");
        assert!(rendered.contains("timeout=1"), "{rendered}");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
        // A fault-free journal aggregates to an empty report.
        assert!(FaultReport::from_journal(&sample(1.0)).is_empty());
    }

    #[test]
    fn chaos_baseline_gates_exactly() {
        let journal = sample_with_faults("rate_limit");
        let baseline = ChaosBaseline::from_journal(&journal);
        assert_eq!(baseline.faults_injected, 3);
        assert_eq!(baseline.recovered, 1);
        assert_eq!(baseline.abandoned, 1);
        assert_eq!(baseline.checkpoints, 3);
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let parsed: ChaosBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, baseline);

        // The run it was taken from passes exactly.
        assert!(baseline.check(&journal).is_empty());
        // A different fault-kind mix fails — the gate has no tolerance.
        let drifted = sample_with_faults("garbled");
        let violations = baseline.check(&drifted);
        assert!(violations.iter().any(|v| v.contains("rate_limit")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("garbled")), "{violations:?}");
        // Chaos silently off is a failure, not a pass.
        let faultless = baseline.check(&sample(1.0));
        assert!(faultless.iter().any(|v| v.contains("none")), "{faultless:?}");
    }

    /// A traced run carrying footprint records for two components.
    /// Scaling `bytes_scale` models a graph that grew between runs.
    fn sample_with_mem(bytes_scale: u64) -> RunJournal {
        use crate::mem::{FootprintRow, MemRecord};
        let rec = Recorder::new();
        let root = rec.root_scope().span("pipeline");
        let encode = root.scope().span("encode");
        encode.scope().mem(MemRecord::footprint_of(
            "graph",
            vec![
                FootprintRow { name: "nodes".into(), count: 10, bytes: 640 * bytes_scale },
                FootprintRow { name: "edges".into(), count: 4, bytes: 320 * bytes_scale },
            ],
        ));
        encode.scope().mem(MemRecord::footprint_of(
            "vecstore",
            vec![FootprintRow { name: "embeddings".into(), count: 3, bytes: 3072 }],
        ));
        encode.finish();
        root.finish();
        rec.snapshot()
    }

    #[test]
    fn mem_report_aggregates_footprints_and_span_deltas() {
        use crate::mem::MemRecord;
        let mut journal = sample_with_mem(1);
        // Unit-test binaries don't install the tracking allocator, so
        // span/run records never appear organically — splice some in
        // the way a tracked binary would journal them.
        journal.mems.push(MemRecord {
            span: Some(1),
            kind: "span".into(),
            alloc_bytes: 5000,
            alloc_count: 12,
            dealloc_count: 9,
            peak_delta: 2000,
            ..MemRecord::default()
        });
        journal.mems.push(MemRecord {
            span: Some(0),
            kind: "span".into(),
            alloc_bytes: 8000,
            alloc_count: 20,
            dealloc_count: 15,
            peak_delta: 2500,
            ..MemRecord::default()
        });
        journal.mems.push(MemRecord {
            kind: "run".into(),
            alloc_bytes: 9000,
            alloc_count: 25,
            dealloc_count: 18,
            peak_delta: 2500,
            peak_bytes: 4096,
            ..MemRecord::default()
        });

        let report = MemReport::from_journal(&journal);
        assert!(!report.is_empty());
        // Spans sort by allocated bytes descending.
        assert_eq!(report.spans[0].path, "pipeline");
        assert_eq!(report.spans[0].alloc_bytes, 8000);
        assert_eq!(report.spans[1].path, "pipeline/encode");
        assert_eq!(report.spans[1].alloc_bytes, 5000);
        assert_eq!(report.run_peak_bytes, 4096);
        assert_eq!(report.run_alloc_count, 25);
        // Components sort by name and sum their rows.
        assert_eq!(report.components.len(), 2);
        assert_eq!(report.components[0].component, "graph");
        assert_eq!(report.components[0].bytes, 960);
        assert_eq!(report.components[1].component, "vecstore");
        assert_eq!(report.components[1].bytes, 3072);
        assert_eq!(report.footprint_bytes(), 4032);

        let rendered = report.render(1);
        assert!(rendered.contains("pipeline"), "{rendered}");
        assert!(rendered.contains("… 1 more spans"), "{rendered}");
        assert!(rendered.contains("run totals: 9000 bytes"), "{rendered}");
        assert!(rendered.contains("deterministic footprint (4032 bytes total)"), "{rendered}");
        assert!(rendered.contains("embeddings"), "{rendered}");
        crate::assert_roundtrip(&report);

        // A journal with no mem records reports empty.
        assert!(MemReport::from_journal(&sample(1.0)).is_empty());
    }

    #[test]
    fn mem_baseline_gates_footprints_exactly_and_counters_by_tolerance() {
        use crate::mem::MemRecord;
        let journal = sample_with_mem(1);
        let baseline = MemBaseline::from_journal(&journal);
        assert_eq!(baseline.journal_version, crate::journal::JOURNAL_VERSION);
        assert_eq!(baseline.components.len(), 2);
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let parsed: MemBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, baseline);

        // The run it was taken from passes exactly.
        assert!(baseline.check(&journal, 0.0).is_empty());
        // A grown footprint fails — the footprint gate has no
        // tolerance, whatever tolerance the allocator counters get.
        let violations = baseline.check(&sample_with_mem(2), 0.5);
        assert!(violations.iter().any(|v| v.contains("graph/nodes")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("exact gate")), "{violations:?}");
        // Mem tracking silently off is a failure, not a pass.
        let untracked = baseline.check(&sample(1.0), 0.5);
        assert!(untracked.iter().any(|v| v.contains("none")), "{untracked:?}");

        // Allocator counters gate by tolerance: build a baseline with
        // run counters, then check runs above and below the slack.
        let mut tracked = sample_with_mem(1);
        tracked.mems.push(MemRecord {
            kind: "run".into(),
            alloc_bytes: 10_000,
            alloc_count: 100,
            dealloc_count: 90,
            peak_delta: 4000,
            peak_bytes: 8000,
            ..MemRecord::default()
        });
        let counter_baseline = MemBaseline::from_journal(&tracked);
        assert_eq!(counter_baseline.run_peak_bytes, 8000);
        assert_eq!(counter_baseline.run_alloc_count, 100);
        let mut slower = sample_with_mem(1);
        slower.mems.push(MemRecord {
            kind: "run".into(),
            alloc_bytes: 12_000,
            alloc_count: 140,
            dealloc_count: 120,
            peak_delta: 5000,
            peak_bytes: 8400,
            ..MemRecord::default()
        });
        // +40% allocs fails a 10% tolerance…
        let over = counter_baseline.check(&slower, 0.1);
        assert!(over.iter().any(|v| v.contains("run alloc count")), "{over:?}");
        // …and passes a 50% one.
        assert!(counter_baseline.check(&slower, 0.5).is_empty());
        // A run whose counters vanished entirely fails even at high
        // tolerance — the allocator was silently uninstalled.
        let vanished = counter_baseline.check(&journal, 10.0);
        assert!(vanished.iter().any(|v| v.contains("tracking allocator")), "{vanished:?}");
    }

    #[test]
    fn folded_stacks_weighs_self_allocation_for_mem() {
        use crate::mem::MemRecord;
        let mut journal = sample_with_mem(1);
        // pipeline allocated 8000 inclusive, encode 5000 — pipeline's
        // self weight is the 3000-byte difference.
        journal.mems.push(MemRecord {
            span: Some(0),
            kind: "span".into(),
            alloc_bytes: 8000,
            alloc_count: 20,
            dealloc_count: 15,
            peak_delta: 2500,
            ..MemRecord::default()
        });
        journal.mems.push(MemRecord {
            span: Some(1),
            kind: "span".into(),
            alloc_bytes: 5000,
            alloc_count: 12,
            dealloc_count: 9,
            peak_delta: 2000,
            ..MemRecord::default()
        });
        let folded = folded_stacks(&journal, FlameWeight::Mem);
        assert!(folded.contains("pipeline 3000"), "{folded}");
        assert!(folded.contains("pipeline;encode 5000"), "{folded}");
        // Without span records every frame weighs zero and is omitted.
        assert_eq!(folded_stacks(&sample_with_mem(1), FlameWeight::Mem), "");
    }

    #[test]
    fn baseline_round_trips_and_gates() {
        let journal = sample(1.0);
        let baseline = TraceBaseline::from_journal(&journal);
        let json = serde_json::to_string_pretty(&baseline).unwrap();
        let parsed: TraceBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, baseline);

        // The run it was taken from passes at any tolerance.
        assert!(baseline.check(&journal, 0.0).is_empty());
        // A 50% slower run fails a 5% tolerance on both the stage
        // timing and the histogram percentiles…
        let slow = sample(1.5);
        let violations = baseline.check(&slow, 0.05);
        assert!(violations.iter().any(|v| v.contains("stage `mine`")), "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("mine_call_seconds")), "{violations:?}");
        // …and passes once the tolerance covers the slack.
        assert!(baseline.check(&slow, 0.6).is_empty());
        // A faster run never fails.
        assert!(baseline.check(&sample(0.5), 0.0).is_empty());
    }
}
