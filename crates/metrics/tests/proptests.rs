//! Property-based tests for metric identities, classification
//! totality, and correction safety.

use grm_metrics::{aggregate, classify, correct, evaluate, QueryClass, RuleMetrics};
use grm_pgraph::{props, GraphSchema, PropertyGraph, Value};
use grm_rules::{reference_queries, ConsistencyRule};
use proptest::prelude::*;

/// A graph of `total` nodes where exactly `with_key` carry `k`.
fn partial_graph(total: usize, with_key: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for i in 0..total {
        let mut p = props([("id", Value::Int(i as i64))]);
        if i < with_key {
            p.insert("k".into(), Value::Int(i as i64));
        }
        g.add_node(["N"], p);
    }
    g
}

proptest! {
    /// Mandatory-property metrics equal the analytic values for any
    /// presence fraction.
    #[test]
    fn mandatory_metrics_are_analytic(total in 1usize..60, with in 0usize..60) {
        let with_key = with.min(total);
        let g = partial_graph(total, with_key);
        let rule = ConsistencyRule::MandatoryProperty { label: "N".into(), key: "k".into() };
        let m = evaluate(&g, &reference_queries(&rule)).unwrap();
        prop_assert_eq!(m.support, with_key as i64);
        let expected = 100.0 * with_key as f64 / total as f64;
        prop_assert!((m.coverage_pct - expected).abs() < 1e-9);
        prop_assert!((m.confidence_pct - expected).abs() < 1e-9);
    }

    /// Unique-property support counts singleton values exactly.
    #[test]
    fn unique_metrics_count_singletons(values in prop::collection::vec(0i64..8, 1..40)) {
        let mut g = PropertyGraph::new();
        for v in &values {
            g.add_node(["N"], props([("k", Value::Int(*v))]));
        }
        let rule = ConsistencyRule::UniqueProperty { label: "N".into(), key: "k".into() };
        let m = evaluate(&g, &reference_queries(&rule)).unwrap();
        let singletons = (0i64..8)
            .filter(|v| values.iter().filter(|x| *x == v).count() == 1)
            .count();
        prop_assert_eq!(m.support, singletons as i64);
    }

    /// Metrics are always within bounds, whatever the rule instance.
    #[test]
    fn metrics_are_bounded(
        total in 1usize..40,
        with in 0usize..40,
        key in prop_oneof![Just("k"), Just("id"), Just("ghost")],
    ) {
        let g = partial_graph(total, with.min(total));
        let rule = ConsistencyRule::MandatoryProperty { label: "N".into(), key: key.into() };
        let m = evaluate(&g, &reference_queries(&rule)).unwrap();
        prop_assert!(m.support >= 0);
        prop_assert!((0.0..=100.0).contains(&m.coverage_pct));
        prop_assert!((0.0..=100.0).contains(&m.confidence_pct));
    }

    /// Aggregation means stay inside the per-rule envelope.
    #[test]
    fn aggregate_within_envelope(metrics in prop::collection::vec(
        (0i64..1000, 0.0f64..=100.0, 0.0f64..=100.0), 1..20
    )) {
        let per_rule: Vec<RuleMetrics> = metrics
            .iter()
            .map(|(s, c, f)| RuleMetrics { support: *s, coverage_pct: *c, confidence_pct: *f })
            .collect();
        let a = aggregate(&per_rule);
        let max_cov = per_rule.iter().map(|m| m.coverage_pct).fold(0.0, f64::max);
        let min_cov = per_rule.iter().map(|m| m.coverage_pct).fold(100.0, f64::min);
        prop_assert!(a.coverage_pct <= max_cov + 1e-9);
        prop_assert!(a.coverage_pct >= min_cov - 1e-9);
        prop_assert_eq!(a.rules, per_rule.len());
    }

    /// Classification is total on arbitrary query text.
    #[test]
    fn classify_never_panics(query in ".{0,200}") {
        let g = partial_graph(3, 3);
        let schema = GraphSchema::infer(&g);
        let _ = classify(&query, &schema);
    }

    /// Correction never makes a correct query incorrect.
    #[test]
    fn correction_preserves_correctness(total in 2usize..20) {
        let g = partial_graph(total, total);
        let schema = GraphSchema::infer(&g);
        for rule in [
            ConsistencyRule::MandatoryProperty { label: "N".into(), key: "k".into() },
            ConsistencyRule::UniqueProperty { label: "N".into(), key: "id".into() },
        ] {
            let q = reference_queries(&rule).satisfied;
            let out = correct(&q, &schema);
            prop_assert_eq!(out.original_class, QueryClass::Correct);
            prop_assert_eq!(out.final_class, QueryClass::Correct);
            prop_assert!(!out.changed);
        }
    }
}
