//! # grm-metrics — rule evaluation, error taxonomy, query correction
//!
//! The evaluation substrate of the study:
//!
//! * [`scores`] — support / coverage / confidence per §4.2, computed
//!   by executing each rule's three metric queries on the graph;
//! * [`mod@classify`] — the §4.4 error taxonomy (syntax / hallucinated
//!   property / wrong direction) recovered automatically from the
//!   query text and the inferred schema;
//! * [`mod@violations`] — violation localization: the concrete
//!   elements breaking a rule, for actionable audits;
//! * [`mod@correct`] — the paper's manual repair procedure automated:
//!   syntax and direction errors fixed, hallucinations deliberately
//!   left in place.

pub mod classify;
pub mod correct;
pub mod drift;
pub mod scores;
pub mod violations;

pub use classify::{class_counter, classify, Assessment, ClassTally, QueryClass};
pub use correct::{correct, repair_directions, repair_syntax, CorrectionOutcome};
pub use drift::{drift, RuleDrift};
pub use scores::{
    aggregate, evaluate, evaluate_labeled, evaluate_labeled_batched, evaluate_resilient,
    evaluate_resilient_batched, evaluate_traced, record_batch_stats, AggregateMetrics, RuleMetrics,
};
pub use violations::{find_violations, find_violations_traced, Violation};
