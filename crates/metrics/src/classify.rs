//! Query-error classification — the machine version of the paper's
//! §4.4 analysis.
//!
//! The paper considers a generated query "not correct if it has syntax
//! errors or if its formulation does not match the data model" and
//! sorts the failures into three categories. Given the query text and
//! the graph's inferred schema we recover the same taxonomy:
//!
//! 1. [`QueryClass::SyntaxError`] — the lexer/parser rejects it;
//! 2. [`QueryClass::HallucinatedProperty`] — it references properties
//!    absent from the data model;
//! 3. [`QueryClass::DirectionError`] — a relationship is drawn against
//!    every direction the schema exhibits;
//! 4. [`QueryClass::OtherSemantic`] — remaining mismatches (unknown
//!    labels/types/variables);
//! 5. [`QueryClass::Correct`] — parses and matches the data model.
//!
//! Hallucination outranks direction in mixed cases because the paper
//! treats hallucinations as rule-level (uncorrectable) while direction
//! slips are translation-level (correctable).

use grm_cypher::{analyze, parse, SemanticIssue};
use grm_pgraph::GraphSchema;

/// Correctness classification of one generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QueryClass {
    /// Parses and is consistent with the data model.
    Correct,
    /// Rejected by the parser (paper error class 3).
    SyntaxError,
    /// References nonexistent properties (paper error class 2).
    HallucinatedProperty,
    /// Relationship drawn in the wrong direction (paper error class 1).
    DirectionError,
    /// Other data-model mismatch (unknown label/type/variable).
    OtherSemantic,
}

impl QueryClass {
    /// True when the paper's Table 6 would count the query as correct.
    pub fn is_correct(self) -> bool {
        self == QueryClass::Correct
    }

    /// Stable name used in journal `Lineage` records and counter
    /// names (`rules_<name>`).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Correct => "correct",
            QueryClass::SyntaxError => "syntax_error",
            QueryClass::HallucinatedProperty => "hallucinated_property",
            QueryClass::DirectionError => "wrong_direction",
            QueryClass::OtherSemantic => "other_semantic",
        }
    }
}

/// The journal counter tallying queries of `class` — together the five
/// counters partition `rules_translated`.
pub fn class_counter(class: QueryClass) -> grm_obs::Counter {
    match class {
        QueryClass::Correct => grm_obs::Counter::RulesCorrect,
        QueryClass::SyntaxError => grm_obs::Counter::RulesSyntaxError,
        QueryClass::HallucinatedProperty => grm_obs::Counter::RulesHallucinatedProperty,
        QueryClass::DirectionError => grm_obs::Counter::RulesWrongDirection,
        QueryClass::OtherSemantic => grm_obs::Counter::RulesOtherSemantic,
    }
}

/// Full assessment of one query.
#[derive(Debug, Clone)]
pub struct Assessment {
    pub class: QueryClass,
    /// The semantic issues found (empty for `Correct`/`SyntaxError`).
    pub issues: Vec<SemanticIssue>,
}

/// Classifies `query` against `schema`.
pub fn classify(query: &str, schema: &GraphSchema) -> Assessment {
    let ast = match parse(query) {
        Ok(ast) => ast,
        Err(_) => return Assessment { class: QueryClass::SyntaxError, issues: vec![] },
    };
    let issues = analyze(&ast, schema);
    let class = if issues.is_empty() {
        QueryClass::Correct
    } else if issues.iter().any(SemanticIssue::is_hallucination) {
        QueryClass::HallucinatedProperty
    } else if issues.iter().any(SemanticIssue::is_direction) {
        QueryClass::DirectionError
    } else {
        QueryClass::OtherSemantic
    };
    Assessment { class, issues }
}

/// Tally of classifications — one Table 6 cell plus the §4.4 error
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassTally {
    pub total: usize,
    pub correct: usize,
    pub syntax: usize,
    pub hallucinated: usize,
    pub direction: usize,
    pub other: usize,
}

impl ClassTally {
    /// Adds one classification.
    pub fn add(&mut self, class: QueryClass) {
        self.total += 1;
        match class {
            QueryClass::Correct => self.correct += 1,
            QueryClass::SyntaxError => self.syntax += 1,
            QueryClass::HallucinatedProperty => self.hallucinated += 1,
            QueryClass::DirectionError => self.direction += 1,
            QueryClass::OtherSemantic => self.other += 1,
        }
    }

    /// `correct/total` as the paper prints it (e.g. `11/12`).
    pub fn as_fraction(&self) -> String {
        format!("{}/{}", self.correct, self.total)
    }

    /// Correctness ratio in `[0, 1]`; 1.0 for an empty tally.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::{props, PropertyGraph, Value};

    fn schema() -> GraphSchema {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], props([("id", Value::Int(1))]));
        let m = g.add_node(["Match"], props([("id", Value::from("m1"))]));
        g.add_edge(m, t, "IN_TOURNAMENT", Default::default());
        GraphSchema::infer(&g)
    }

    #[test]
    fn correct_query() {
        let a = classify(
            "MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c",
            &schema(),
        );
        assert_eq!(a.class, QueryClass::Correct);
    }

    #[test]
    fn syntax_error() {
        let a = classify("MATCH (m:Match RETURN COUNT(*) AS c", &schema());
        assert_eq!(a.class, QueryClass::SyntaxError);
    }

    #[test]
    fn direction_error_the_papers_example() {
        let a = classify(
            "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) RETURN COUNT(*) AS c",
            &schema(),
        );
        assert_eq!(a.class, QueryClass::DirectionError);
    }

    #[test]
    fn hallucinated_property() {
        let a =
            classify("MATCH (m:Match) WHERE m.penaltyScore > 0 RETURN COUNT(*) AS c", &schema());
        assert_eq!(a.class, QueryClass::HallucinatedProperty);
    }

    #[test]
    fn hallucination_outranks_direction() {
        let a = classify(
            "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) \
             WHERE m.penaltyScore > 0 RETURN COUNT(*) AS c",
            &schema(),
        );
        assert_eq!(a.class, QueryClass::HallucinatedProperty);
    }

    #[test]
    fn unknown_label_is_other_semantic() {
        let a = classify("MATCH (x:Ghost) RETURN COUNT(*) AS c", &schema());
        assert_eq!(a.class, QueryClass::OtherSemantic);
    }

    #[test]
    fn tally_arithmetic() {
        let mut t = ClassTally::default();
        t.add(QueryClass::Correct);
        t.add(QueryClass::Correct);
        t.add(QueryClass::SyntaxError);
        assert_eq!(t.as_fraction(), "2/3");
        assert!((t.accuracy() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(ClassTally::default().accuracy(), 1.0);
    }
}
