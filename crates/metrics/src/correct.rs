//! Automated query correction — the paper's manual repair procedure
//! (§4.4), as code.
//!
//! The authors "corrected the queries in case of syntax errors or
//! wrong edge directions, but … left them as they were the queries
//! with additional non-existing properties, because those errors
//! corresponded to hallucination at rule generation level". This
//! module does exactly that:
//!
//! * **syntax** — reinsert the token the parser says is missing
//!   (iterating, bounded) until the query parses;
//! * **direction** — flip every relationship the analyzer flags as
//!   [`SemanticIssue::WrongDirection`] and re-check;
//! * **hallucination** — detected but deliberately *not* repaired.

use grm_cypher::{analyze, parse, Clause, CypherError, Direction, Query, SemanticIssue};
use grm_pgraph::GraphSchema;

use crate::classify::{classify, QueryClass};

/// Outcome of running the corrector on one query.
#[derive(Debug, Clone)]
pub struct CorrectionOutcome {
    /// Classification of the query as received.
    pub original_class: QueryClass,
    /// The query after repair (identical to the input when nothing
    /// needed or could be fixed).
    pub corrected: String,
    /// Classification of the corrected query.
    pub final_class: QueryClass,
    /// True when the corrector changed the text.
    pub changed: bool,
    /// Number of individual repairs applied: one per syntax-token
    /// insertion plus one when a direction flip was made. Zero when
    /// nothing was (or could be) fixed.
    pub repairs: usize,
}

/// Repairs `query` as far as the paper's policy allows.
pub fn correct(query: &str, schema: &GraphSchema) -> CorrectionOutcome {
    let original = classify(query, schema);
    let mut text = query.to_owned();
    let mut changed = false;
    let mut repairs = 0usize;

    // Phase 1: syntax repair.
    if original.class == QueryClass::SyntaxError {
        if let Some((fixed, insertions)) = repair_syntax_counted(&text) {
            text = fixed;
            changed = true;
            repairs += insertions;
        }
    }

    // Phase 2: direction repair (only meaningful once it parses).
    if let Ok(ast) = parse(&text) {
        let issues = analyze(&ast, schema);
        if issues.iter().any(SemanticIssue::is_direction) {
            if let Some(fixed) = repair_directions(&ast, schema) {
                text = fixed;
                changed = true;
                repairs += 1;
            }
        }
    }

    let final_class = classify(&text, schema).class;
    CorrectionOutcome {
        original_class: original.class,
        corrected: text,
        final_class,
        changed,
        repairs,
    }
}

/// Iteratively inserts the character the parser appears to be missing
/// at the reported error position. Handles the common LLM slips
/// (dropped parenthesis/bracket); gives up after a few rounds.
pub fn repair_syntax(query: &str) -> Option<String> {
    repair_syntax_counted(query).map(|(text, _)| text)
}

/// [`repair_syntax`], also reporting how many characters were
/// inserted — the per-rule repair count lineage records carry.
fn repair_syntax_counted(query: &str) -> Option<(String, usize)> {
    let mut text = query.to_owned();
    for round in 0..4 {
        let err = match parse(&text) {
            Ok(_) => return Some((text, round)),
            Err(e) => e,
        };
        let (message, pos) = match &err {
            CypherError::Parse { message, span } => (message.clone(), span.start),
            CypherError::Lex { message, span } => (message.clone(), span.start),
            _ => return None,
        };
        let insert = if message.contains("')'") {
            ')'
        } else if message.contains("']'") {
            ']'
        } else if message.contains("'}'") {
            '}'
        } else if message.contains("unterminated string") {
            '\''
        } else {
            return None;
        };
        let pos = pos.min(text.len());
        text.insert(pos, insert);
    }
    None
}

/// Flips every relationship whose (type, endpoint-labels) orientation
/// contradicts the schema; returns the re-rendered query when at
/// least one flip was applied and the result is direction-clean.
pub fn repair_directions(ast: &Query, schema: &GraphSchema) -> Option<String> {
    let mut fixed = ast.clone();
    let mut any = false;
    for clause in &mut fixed.clauses {
        let Clause::Match { patterns, .. } = clause else { continue };
        for pattern in patterns.iter_mut() {
            let mut prev = pattern.start.clone();
            for (rel, node) in pattern.steps.iter_mut() {
                if rel.direction != Direction::Undirected {
                    if let (Some(ll), Some(rl)) = (prev.labels.first(), node.labels.first()) {
                        let (from, to) = match rel.direction {
                            Direction::Out => (ll.as_str(), rl.as_str()),
                            Direction::In => (rl.as_str(), ll.as_str()),
                            Direction::Undirected => unreachable!(),
                        };
                        for t in &rel.types {
                            if let Some(sig) = schema.signature(t) {
                                if !sig.connects(from, to) && sig.connects(to, from) {
                                    rel.direction = rel.direction.reversed();
                                    any = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                prev = node.clone();
            }
        }
    }
    if !any {
        return None;
    }
    let text = fixed.to_string();
    let still_wrong = analyze(&parse(&text).ok()?, schema).iter().any(SemanticIssue::is_direction);
    (!still_wrong).then_some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_cypher::execute;
    use grm_pgraph::{props, PropertyGraph, Value};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], props([("id", Value::Int(1))]));
        for i in 0..3 {
            let m = g.add_node(["Match"], props([("id", Value::from(format!("m{i}")))]));
            g.add_edge(m, t, "IN_TOURNAMENT", Default::default());
        }
        g
    }

    #[test]
    fn fixes_dropped_parenthesis() {
        let g = graph();
        let schema = GraphSchema::infer(&g);
        // The corruption `break_syntax` produces.
        let broken = "MATCH (m:Match) RETURN COUNT(* AS c";
        let out = correct(broken, &schema);
        assert_eq!(out.original_class, QueryClass::SyntaxError);
        assert_eq!(out.final_class, QueryClass::Correct);
        assert_eq!(execute(&g, &out.corrected).unwrap().single_int(), Some(3));
    }

    #[test]
    fn fixes_the_papers_direction_error() {
        let g = graph();
        let schema = GraphSchema::infer(&g);
        let wrong = "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) RETURN COUNT(*) AS c";
        // Wrong direction runs but counts 0.
        assert_eq!(execute(&g, wrong).unwrap().single_int(), Some(0));
        let out = correct(wrong, &schema);
        assert_eq!(out.original_class, QueryClass::DirectionError);
        assert_eq!(out.final_class, QueryClass::Correct);
        assert_eq!(execute(&g, &out.corrected).unwrap().single_int(), Some(3));
    }

    #[test]
    fn leaves_hallucinations_alone() {
        let g = graph();
        let schema = GraphSchema::infer(&g);
        let q = "MATCH (m:Match) WHERE m.penaltyScore > 0 RETURN COUNT(*) AS c";
        let out = correct(q, &schema);
        assert_eq!(out.original_class, QueryClass::HallucinatedProperty);
        assert_eq!(out.final_class, QueryClass::HallucinatedProperty);
        assert!(!out.changed);
        assert_eq!(out.corrected, q);
    }

    #[test]
    fn correct_query_passes_through() {
        let g = graph();
        let schema = GraphSchema::infer(&g);
        let q = "MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c";
        let out = correct(q, &schema);
        assert!(!out.changed);
        assert_eq!(out.final_class, QueryClass::Correct);
    }

    #[test]
    fn syntax_then_direction_both_fixed() {
        let g = graph();
        let schema = GraphSchema::infer(&g);
        // Wrong direction AND missing paren.
        let broken = "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) RETURN COUNT(* AS c";
        let out = correct(broken, &schema);
        assert_eq!(out.original_class, QueryClass::SyntaxError);
        assert_eq!(out.final_class, QueryClass::Correct);
        assert_eq!(execute(&g, &out.corrected).unwrap().single_int(), Some(3));
    }

    #[test]
    fn unrepairable_garbage_stays_broken() {
        let schema = GraphSchema::infer(&graph());
        let out = correct("MATCH MATCH MATCH", &schema);
        assert_eq!(out.final_class, QueryClass::SyntaxError);
    }

    #[test]
    fn repair_syntax_handles_multiple_drops() {
        let fixed = repair_syntax("MATCH (n:Match WHERE n.id IS NOT NULL RETURN COUNT(* AS c");
        assert!(fixed.is_some());
        assert!(parse(&fixed.unwrap()).is_ok());
    }
}
