//! Violation localization: from "this rule has 12 violations" to
//! *which elements* violate it.
//!
//! The paper's pipeline stops at support/coverage/confidence; a data
//! engineer's next question is always "show me the offending rows".
//! This module builds, per rule family, a listing query that returns
//! the violating elements themselves, so audits (and the `grm audit`
//! command) can print actionable findings.

use grm_cypher::{execute, execute_profiled, CypherError};
use grm_obs::{Counter, Histo, PlanRecord, Scope};
use grm_pgraph::{PropertyGraph, Value};
use grm_rules::ConsistencyRule;

/// One localized violation.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum Violation {
    /// A node violating a node-level rule.
    Node {
        /// Internal node id.
        id: i64,
        /// What is wrong, human-readable.
        detail: String,
    },
    /// A property value shared by several elements that should be
    /// unique, or out of its domain.
    Value { value: String, count: i64, detail: String },
    /// A relationship instance violating an edge-level rule.
    Edge { src: i64, dst: i64, detail: String },
}

/// Builds the listing query for `rule`, returning `None` for rule
/// families without a canonical violation listing (custom rules carry
/// their own queries; endpoint-label listings need edge ids).
fn listing_query(rule: &ConsistencyRule, limit: usize) -> Option<(String, Shape)> {
    use ConsistencyRule::*;
    Some(match rule {
        MandatoryProperty { label, key } => (
            format!(
                "MATCH (n:{label}) WHERE n.{key} IS NULL \
                 RETURN id(n) AS id ORDER BY id LIMIT {limit}"
            ),
            Shape::NodeIds { detail: format!("missing `{key}`") },
        ),
        UniqueProperty { label, key } => (
            format!(
                "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
                 WITH n.{key} AS v, COUNT(*) AS c WHERE c > 1 \
                 RETURN toString(v) AS v, c ORDER BY c DESC, v LIMIT {limit}"
            ),
            Shape::ValueCounts { detail: format!("duplicated `{key}`") },
        ),
        PropertyValueIn { label, key, allowed } => {
            let vals: Vec<String> = allowed.iter().map(Value::to_string).collect();
            (
                format!(
                    "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
                     AND NOT (n.{key} IN [{}]) \
                     RETURN id(n) AS id ORDER BY id LIMIT {limit}",
                    vals.join(", ")
                ),
                Shape::NodeIds { detail: format!("`{key}` outside its domain") },
            )
        }
        PropertyRegex { label, key, pattern } => (
            format!(
                "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
                 AND NOT (n.{key} =~ '{}') \
                 RETURN id(n) AS id ORDER BY id LIMIT {limit}",
                pattern.replace('\'', "\\'")
            ),
            Shape::NodeIds { detail: format!("`{key}` malformed") },
        ),
        PropertyRange { label, key, min, max } => (
            format!(
                "MATCH (n:{label}) WHERE n.{key} IS NOT NULL \
                 AND (n.{key} < {min} OR n.{key} > {max}) \
                 RETURN id(n) AS id ORDER BY id LIMIT {limit}"
            ),
            Shape::NodeIds { detail: format!("`{key}` out of [{min}, {max}]") },
        ),
        NoSelfLoop { label, etype } => (
            format!(
                "MATCH (a:{label})-[r:{etype}]->(b) WHERE id(a) = id(b) \
                 RETURN id(a) AS src, id(b) AS dst LIMIT {limit}"
            ),
            Shape::EdgePairs { detail: format!("self-referential `{etype}`") },
        ),
        TemporalOrder { src_label, src_key, etype, dst_label, dst_key } => (
            format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE a.{src_key} < b.{dst_key} \
                 RETURN id(a) AS src, id(b) AS dst LIMIT {limit}"
            ),
            Shape::EdgePairs { detail: format!("`{src_key}` precedes the target's `{dst_key}`") },
        ),
        IncomingExactlyOne { src_label, etype, dst_label } => (
            format!(
                "MATCH (t:{dst_label}) OPTIONAL MATCH (s:{src_label})-[r:{etype}]->(t) \
                 WITH t AS t, COUNT(r) AS c WHERE c <> 1 \
                 RETURN id(t) AS id, c ORDER BY id LIMIT {limit}"
            ),
            Shape::NodeIdsWithCount { detail: format!("incoming `{etype}` count ≠ 1") },
        ),
        PatternUniqueness { src_label, etype, dst_label, key } => (
            format!(
                "MATCH (a:{src_label})-[r:{etype}]->(b:{dst_label}) \
                 WHERE r.{key} IS NOT NULL \
                 WITH id(a) AS src, id(b) AS dst, r.{key} AS v, COUNT(*) AS c WHERE c > 1 \
                 RETURN src, dst ORDER BY src LIMIT {limit}"
            ),
            Shape::EdgePairs { detail: format!("duplicated `{key}` between the same pair") },
        ),
        EdgeEndpointLabels { .. } | Custom { .. } => return None,
    })
}

enum Shape {
    NodeIds { detail: String },
    NodeIdsWithCount { detail: String },
    ValueCounts { detail: String },
    EdgePairs { detail: String },
}

/// Lists up to `limit` concrete violations of `rule` on `graph`.
/// Returns `Ok(None)` for rule families without a canonical listing.
pub fn find_violations(
    graph: &PropertyGraph,
    rule: &ConsistencyRule,
    limit: usize,
) -> Result<Option<Vec<Violation>>, CypherError> {
    find_violations_traced(graph, rule, limit, &Scope::disabled(), "violations")
}

/// [`find_violations`] with observability: on an enabled scope the
/// listing query runs under `PROFILE`, its plan is attached to the
/// scope's span as a [`PlanRecord`] labelled `label`, and the query /
/// row / db-hit counters are recorded. On a disabled scope this is
/// exactly [`find_violations`].
pub fn find_violations_traced(
    graph: &PropertyGraph,
    rule: &ConsistencyRule,
    limit: usize,
    scope: &Scope,
    label: &str,
) -> Result<Option<Vec<Violation>>, CypherError> {
    let Some((query, shape)) = listing_query(rule, limit) else {
        return Ok(None);
    };
    let rs = if scope.is_enabled() {
        scope.add(Counter::CypherQueriesExecuted, 1);
        scope.add(Counter::CypherQueriesProfiled, 1);
        let (rs, profile) = execute_profiled(graph, &query)?;
        scope.add(Counter::CypherRowsMatched, rs.len() as u64);
        scope.observe(Histo::CypherRowsPerQuery, rs.len() as f64);
        scope.observe(Histo::CypherDbHitsPerQuery, profile.db_hits().total() as f64);
        let mut plan = PlanRecord::new(label);
        plan.absorb(profile.plan_ops(), profile.rows, profile.total_us, profile.sim_us);
        scope.plan(plan);
        rs
    } else {
        execute(graph, &query)?
    };
    let as_int = |v: &Value| match v {
        Value::Int(i) => *i,
        _ => -1,
    };
    let out = rs
        .rows
        .iter()
        .map(|row| match &shape {
            Shape::NodeIds { detail } => {
                Violation::Node { id: as_int(&row[0]), detail: detail.clone() }
            }
            Shape::NodeIdsWithCount { detail } => Violation::Node {
                id: as_int(&row[0]),
                detail: format!("{detail} (found {})", row[1]),
            },
            Shape::ValueCounts { detail } => Violation::Value {
                value: row[0].to_string(),
                count: as_int(&row[1]),
                detail: detail.clone(),
            },
            Shape::EdgePairs { detail } => Violation::Edge {
                src: as_int(&row[0]),
                dst: as_int(&row[1]),
                detail: detail.clone(),
            },
        })
        .collect();
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::props;

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["User"], props([("id", Value::Int(1)), ("followers", Value::Int(-5))]));
        let b = g.add_node(["User"], props([("id", Value::Int(1))])); // dup id
        let _c = g.add_node(["User"], props([("followers", Value::Int(10))])); // no id
        g.add_edge(a, a, "FOLLOWS", Default::default()); // self loop
        g.add_edge(a, b, "FOLLOWS", Default::default());
        g
    }

    #[test]
    fn locates_missing_properties() {
        let g = graph();
        let rule = ConsistencyRule::MandatoryProperty { label: "User".into(), key: "id".into() };
        let v = find_violations(&g, &rule, 10).unwrap().unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::Node { id: 2, .. }));
    }

    #[test]
    fn locates_duplicate_values() {
        let g = graph();
        let rule = ConsistencyRule::UniqueProperty { label: "User".into(), key: "id".into() };
        let v = find_violations(&g, &rule, 10).unwrap().unwrap();
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::Value { value, count, .. } => {
                assert_eq!(value.trim_matches('\''), "1");
                assert_eq!(*count, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn locates_self_loops() {
        let g = graph();
        let rule = ConsistencyRule::NoSelfLoop { label: "User".into(), etype: "FOLLOWS".into() };
        let v = find_violations(&g, &rule, 10).unwrap().unwrap();
        assert_eq!(
            v,
            vec![Violation::Edge { src: 0, dst: 0, detail: "self-referential `FOLLOWS`".into() }]
        );
    }

    #[test]
    fn locates_out_of_range_values() {
        let g = graph();
        let rule = ConsistencyRule::PropertyRange {
            label: "User".into(),
            key: "followers".into(),
            min: 0,
            max: 1000,
        };
        let v = find_violations(&g, &rule, 10).unwrap().unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::Node { id: 0, .. }));
    }

    #[test]
    fn limit_truncates() {
        let mut g = PropertyGraph::new();
        for _ in 0..20 {
            g.add_node(["User"], props([("x", Value::Int(1))]));
        }
        let rule = ConsistencyRule::MandatoryProperty { label: "User".into(), key: "id".into() };
        let v = find_violations(&g, &rule, 5).unwrap().unwrap();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn custom_rules_have_no_canonical_listing() {
        let g = graph();
        let rule = ConsistencyRule::Custom {
            id: "x".into(),
            nl: "x".into(),
            satisfied: "RETURN 0 AS c".into(),
            body: "RETURN 0 AS c".into(),
            head_total: "RETURN 0 AS c".into(),
            complexity: grm_rules::RuleComplexity::Pattern,
        };
        assert!(find_violations(&g, &rule, 10).unwrap().is_none());
    }

    #[test]
    fn clean_rule_lists_nothing() {
        let mut g = PropertyGraph::new();
        g.add_node(["User"], props([("id", Value::Int(1))]));
        let rule = ConsistencyRule::MandatoryProperty { label: "User".into(), key: "id".into() };
        let v = find_violations(&g, &rule, 10).unwrap().unwrap();
        assert!(v.is_empty());
    }
}
