//! Metric drift between two graph versions.
//!
//! Consistency rules are most useful *over time*: a rule book mined
//! on yesterday's graph, re-evaluated on today's, shows exactly where
//! data quality moved. This module evaluates a rule set against two
//! graphs and reports the per-rule coverage/confidence deltas — the
//! machinery behind `grm diff`.

use grm_cypher::CypherError;
use grm_pgraph::PropertyGraph;
use grm_rules::{reference_queries, ConsistencyRule};

use crate::scores::{evaluate, RuleMetrics};

/// Drift of one rule between two graph versions.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RuleDrift {
    pub rule: ConsistencyRule,
    pub before: RuleMetrics,
    pub after: RuleMetrics,
}

impl RuleDrift {
    /// Confidence delta (after − before), percentage points.
    pub fn confidence_delta(&self) -> f64 {
        self.after.confidence_pct - self.before.confidence_pct
    }

    /// Coverage delta (after − before), percentage points.
    pub fn coverage_delta(&self) -> f64 {
        self.after.coverage_pct - self.before.coverage_pct
    }

    /// True when quality regressed beyond `threshold` points on
    /// either measure.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.confidence_delta() < -threshold || self.coverage_delta() < -threshold
    }
}

/// Evaluates `rules` on both graphs; rules whose queries fail on
/// either side are skipped (they cannot be compared).
pub fn drift(
    before: &PropertyGraph,
    after: &PropertyGraph,
    rules: &[ConsistencyRule],
) -> Result<Vec<RuleDrift>, CypherError> {
    let mut out = Vec::with_capacity(rules.len());
    for rule in rules {
        let queries = reference_queries(rule);
        let (Ok(b), Ok(a)) = (evaluate(before, &queries), evaluate(after, &queries)) else {
            continue;
        };
        out.push(RuleDrift { rule: rule.clone(), before: b, after: a });
    }
    // Worst regressions first.
    out.sort_by(|x, y| {
        x.confidence_delta().partial_cmp(&y.confidence_delta()).unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::{props, Value};

    fn graph(missing: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..10usize {
            let mut p = props([("id", Value::Int(i as i64))]);
            if i >= missing {
                p.insert("name".into(), Value::from(format!("u{i}")));
            }
            g.add_node(["User"], p);
        }
        g
    }

    fn name_rule() -> ConsistencyRule {
        ConsistencyRule::MandatoryProperty { label: "User".into(), key: "name".into() }
    }

    #[test]
    fn detects_regression() {
        let before = graph(0); // everyone named
        let after = graph(3); // three lost their names
        let d = drift(&before, &after, &[name_rule()]).unwrap();
        assert_eq!(d.len(), 1);
        assert!((d[0].confidence_delta() + 30.0).abs() < 1e-9);
        assert!(d[0].regressed(5.0));
        assert!(!d[0].regressed(50.0));
    }

    #[test]
    fn detects_improvement() {
        let before = graph(5);
        let after = graph(1);
        let d = drift(&before, &after, &[name_rule()]).unwrap();
        assert!(d[0].confidence_delta() > 0.0);
        assert!(!d[0].regressed(1.0));
    }

    #[test]
    fn worst_regressions_sort_first() {
        let before = graph(0);
        let after = graph(4);
        let rules = [
            ConsistencyRule::UniqueProperty { label: "User".into(), key: "id".into() }, // stable
            name_rule(),                                                                // regresses
        ];
        let d = drift(&before, &after, &rules).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d[0].confidence_delta() <= d[1].confidence_delta());
        assert!(matches!(d[0].rule, ConsistencyRule::MandatoryProperty { .. }));
    }

    #[test]
    fn empty_rule_set_is_fine() {
        let g = graph(0);
        assert!(drift(&g, &g, &[]).unwrap().is_empty());
    }
}
