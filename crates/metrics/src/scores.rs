//! Support / coverage / confidence (§4.2 of the paper, AMIE-style
//! measures adapted to property graphs).
//!
//! *Support* is the count of elements satisfying the rule; *coverage*
//! normalises by the head relation's fact count; *confidence*
//! normalises by the body-match count. All three come from executing
//! the rule's three metric queries on the graph.

use grm_cypher::{execute, execute_profiled, BatchSession, BatchStats, CypherError, ResultSet};
use grm_obs::{Counter, Histo, PlanRecord, Scope};
use grm_pgraph::PropertyGraph;
use grm_rules::RuleQueries;

/// Metrics of one rule on one graph.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RuleMetrics {
    /// Elements satisfying the rule (absolute count, as the paper
    /// reports it).
    pub support: i64,
    /// `100 · support / head_total`, clamped to `[0, 100]`.
    pub coverage_pct: f64,
    /// `100 · support / body_count`, clamped to `[0, 100]`.
    pub confidence_pct: f64,
}

/// Aggregate over a rule set — one cell group of Tables 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct AggregateMetrics {
    /// Number of rules scored.
    pub rules: usize,
    /// Mean support (the paper's `Supp%` column holds absolute
    /// numbers; we report the per-rule mean).
    pub support: f64,
    /// Mean coverage, percent.
    pub coverage_pct: f64,
    /// Mean confidence, percent.
    pub confidence_pct: f64,
}

/// Evaluates the three metric queries of a rule on `graph`.
pub fn evaluate(graph: &PropertyGraph, queries: &RuleQueries) -> Result<RuleMetrics, CypherError> {
    evaluate_traced(graph, queries, &Scope::disabled())
}

/// [`evaluate`] with counters on `scope`, under the generic plan
/// scope `"rule"`. Prefer [`evaluate_labeled`] when a stable per-rule
/// label is available.
pub fn evaluate_traced(
    graph: &PropertyGraph,
    queries: &RuleQueries,
    scope: &Scope,
) -> Result<RuleMetrics, CypherError> {
    evaluate_labeled(graph, queries, scope, "rule")
}

/// [`evaluate`] with full observability on `scope`: counters for the
/// support evaluation and its three Cypher queries, and — because
/// tracing is on — every query runs under `PROFILE`. The three plans
/// are folded into one [`PlanRecord`] labelled `label` and attached
/// to the scope's span, where the recorder's slow-query policy can
/// flag it. On a disabled scope this is exactly [`evaluate`]: the
/// engine does zero db-hit accounting.
pub fn evaluate_labeled(
    graph: &PropertyGraph,
    queries: &RuleQueries,
    scope: &Scope,
    label: &str,
) -> Result<RuleMetrics, CypherError> {
    scope.add(Counter::SupportEvaluations, 1);
    let mut plan = scope.is_enabled().then(|| PlanRecord::new(label));
    let result = {
        let mut count = |query: &str| -> Result<i64, CypherError> {
            let rs = match &mut plan {
                Some(plan) => {
                    scope.add(Counter::CypherQueriesExecuted, 1);
                    scope.add(Counter::CypherQueriesProfiled, 1);
                    let (rs, profile) = execute_profiled(graph, query)?;
                    scope.add(Counter::CypherRowsMatched, rs.len() as u64);
                    scope.observe(Histo::CypherRowsPerQuery, rs.len() as f64);
                    scope.observe(Histo::CypherDbHitsPerQuery, profile.db_hits().total() as f64);
                    plan.absorb(profile.plan_ops(), profile.rows, profile.total_us, profile.sim_us);
                    rs
                }
                None => execute(graph, query)?,
            };
            single_count(&rs, query)
        };
        let mut run = || -> Result<(i64, i64, i64), CypherError> {
            Ok((count(&queries.satisfied)?, count(&queries.body)?, count(&queries.head_total)?))
        };
        run()
    };
    // Attach whatever was profiled even when a later query failed —
    // partial plans still explain where the time went.
    if let Some(plan) = plan {
        if plan.queries > 0 {
            scope.plan(plan);
        }
    }
    let (satisfied, body, head_total) = result?;
    Ok(metrics_from(satisfied, body, head_total))
}

/// [`evaluate_labeled`] through a shared [`BatchSession`]: each
/// distinct query compiles once via the plan cache, and repeated
/// counts (the head-total query recurs verbatim across rules sharing
/// a head) come from the session's result memo at zero db-hits. A
/// memoized answer bumps `cypher_queries_memoized` and attaches no
/// plan — nothing ran. An executed query accounts exactly like
/// [`evaluate_labeled`], so a session whose memo never hits journals
/// the same per-rule plan shape as the naive path.
pub fn evaluate_labeled_batched(
    graph: &PropertyGraph,
    queries: &RuleQueries,
    scope: &Scope,
    label: &str,
    session: &mut BatchSession,
) -> Result<RuleMetrics, CypherError> {
    scope.add(Counter::SupportEvaluations, 1);
    let mut plan = scope.is_enabled().then(|| PlanRecord::new(label));
    let result = {
        let mut count = |query: &str| -> Result<i64, CypherError> {
            let rs = match &mut plan {
                Some(plan) => {
                    let (rs, profile) = session.execute_profiled(graph, query)?;
                    match profile {
                        Some(profile) => {
                            scope.add(Counter::CypherQueriesExecuted, 1);
                            scope.add(Counter::CypherQueriesProfiled, 1);
                            scope.add(Counter::CypherRowsMatched, rs.len() as u64);
                            scope.observe(Histo::CypherRowsPerQuery, rs.len() as f64);
                            scope.observe(
                                Histo::CypherDbHitsPerQuery,
                                profile.db_hits().total() as f64,
                            );
                            plan.absorb(
                                profile.plan_ops(),
                                profile.rows,
                                profile.total_us,
                                profile.sim_us,
                            );
                        }
                        None => scope.add(Counter::CypherQueriesMemoized, 1),
                    }
                    rs
                }
                None => session.execute(graph, query)?,
            };
            single_count(&rs, query)
        };
        let mut run = || -> Result<(i64, i64, i64), CypherError> {
            Ok((count(&queries.satisfied)?, count(&queries.body)?, count(&queries.head_total)?))
        };
        run()
    };
    if let Some(plan) = plan {
        if plan.queries > 0 {
            scope.plan(plan);
        }
    }
    let (satisfied, body, head_total) = result?;
    Ok(metrics_from(satisfied, body, head_total))
}

/// Folds a finished session's plan-cache and optimizer counters into
/// `scope` — call once per run, after the evaluate loop, so journals
/// carry run-wide cache hit-rates. Memo hits are *not* re-added here:
/// [`evaluate_labeled_batched`] counts them per query. Zero counters
/// stay unrecorded to keep journals free of noise rows.
pub fn record_batch_stats(scope: &Scope, stats: &BatchStats) {
    let add = |counter: Counter, value: u64| {
        if value > 0 {
            scope.add(counter, value);
        }
    };
    add(Counter::PlanCacheHits, stats.plan_cache.hits);
    add(Counter::PlanCacheMisses, stats.plan_cache.misses);
    add(Counter::PlanCacheEvictions, stats.plan_cache.evictions);
    add(Counter::PlanCacheExpirations, stats.plan_cache.expirations);
    add(Counter::OptimizerPredicatesPushed, stats.rewrites.predicates_pushed);
    add(Counter::OptimizerLabelsReordered, stats.rewrites.labels_reordered);
    add(Counter::OptimizerPatternsReordered, stats.rewrites.patterns_reordered);
    add(Counter::OptimizerPathsReversed, stats.rewrites.paths_prereversed);
}

fn single_count(rs: &ResultSet, query: &str) -> Result<i64, CypherError> {
    rs.single_int().ok_or_else(|| {
        CypherError::runtime(format!(
            "metric query must return a single count, got {}x{} result: {query}",
            rs.rows.len(),
            rs.columns.len()
        ))
    })
}

fn metrics_from(satisfied: i64, body: i64, head_total: i64) -> RuleMetrics {
    let pct = |num: i64, den: i64| -> f64 {
        if den <= 0 {
            0.0
        } else {
            (100.0 * num as f64 / den as f64).clamp(0.0, 100.0)
        }
    };
    RuleMetrics {
        support: satisfied,
        coverage_pct: pct(satisfied, head_total),
        confidence_pct: pct(satisfied, body),
    }
}

/// [`evaluate_labeled`] under a chaos unit plan: injects the unit's
/// transient query faults before evaluating. A degraded unit
/// (retries exhausted or breaker-open) records its faults, bumps
/// `queries_degraded`, and returns `None` — the rule simply stays
/// unscored, exactly like a rule too broken to query. A completed
/// unit records any recovered retries and evaluates normally;
/// evaluation errors also come back as `None` (matching the
/// fault-free pipeline's `.ok()` at the call site).
pub fn evaluate_resilient(
    graph: &PropertyGraph,
    queries: &RuleQueries,
    scope: &Scope,
    label: &str,
    unit: &grm_resil::UnitPlan,
) -> Option<RuleMetrics> {
    if !chaos_gate(scope, label, unit) {
        return None;
    }
    evaluate_labeled(graph, queries, scope, label).ok()
}

/// [`evaluate_resilient`] through a shared [`BatchSession`] — the
/// chaos path of the batched scorer. Fault accounting is identical;
/// only the surviving evaluation goes through the session.
pub fn evaluate_resilient_batched(
    graph: &PropertyGraph,
    queries: &RuleQueries,
    scope: &Scope,
    label: &str,
    unit: &grm_resil::UnitPlan,
    session: &mut BatchSession,
) -> Option<RuleMetrics> {
    if !chaos_gate(scope, label, unit) {
        return None;
    }
    evaluate_labeled_batched(graph, queries, scope, label, session).ok()
}

/// Records a chaos unit's faults, retries and degradation on `scope`.
/// Returns `false` when the unit degraded — the rule stays unscored.
fn chaos_gate(scope: &Scope, label: &str, unit: &grm_resil::UnitPlan) -> bool {
    use grm_obs::{DegradedRecord, RetryRecord};
    // Query faults cost a flat reconnect stall, never the call itself.
    let fault_seconds = grm_resil::record_unit_faults(unit, 0.0, scope);
    scope.add_sim_seconds(fault_seconds);
    if unit.is_degraded() {
        scope.add(Counter::QueriesDegraded, 1);
        if unit.attempts() > 0 {
            scope.retry(RetryRecord {
                span: None,
                stage: unit.stage.name().into(),
                unit: unit.key,
                attempts: unit.attempts() as u64,
                recovered: false,
            });
        }
        scope.degraded(DegradedRecord {
            span: None,
            stage: unit.stage.name().into(),
            unit: label.to_owned(),
            reason: if unit.attempts() == 0 { "breaker_open" } else { "retries_exhausted" }
                .to_owned(),
        });
        return false;
    }
    if !unit.faults.is_empty() {
        scope.retry(RetryRecord {
            span: None,
            stage: unit.stage.name().into(),
            unit: unit.key,
            attempts: unit.attempts() as u64,
            recovered: true,
        });
    }
    true
}

/// Aggregates per-rule metrics into a table cell.
pub fn aggregate(per_rule: &[RuleMetrics]) -> AggregateMetrics {
    if per_rule.is_empty() {
        return AggregateMetrics::default();
    }
    let n = per_rule.len() as f64;
    AggregateMetrics {
        rules: per_rule.len(),
        support: per_rule.iter().map(|m| m.support as f64).sum::<f64>() / n,
        coverage_pct: per_rule.iter().map(|m| m.coverage_pct).sum::<f64>() / n,
        confidence_pct: per_rule.iter().map(|m| m.confidence_pct).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::{props, Value};
    use grm_rules::{reference_queries, ConsistencyRule};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        for i in 0..10i64 {
            let mut p = props([("id", Value::Int(i))]);
            if i < 8 {
                p.insert("name".into(), Value::from(format!("u{i}")));
            }
            g.add_node(["User"], p);
        }
        g
    }

    #[test]
    fn mandatory_property_metrics() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::MandatoryProperty {
            label: "User".into(),
            key: "name".into(),
        });
        let m = evaluate(&g, &q).unwrap();
        assert_eq!(m.support, 8);
        assert!((m.coverage_pct - 80.0).abs() < 1e-9);
        assert!((m.confidence_pct - 80.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_rule_scores_100() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::UniqueProperty {
            label: "User".into(),
            key: "id".into(),
        });
        let m = evaluate(&g, &q).unwrap();
        assert_eq!(m.support, 10);
        assert_eq!(m.coverage_pct, 100.0);
        assert_eq!(m.confidence_pct, 100.0);
    }

    #[test]
    fn hallucinated_property_scores_zero_not_error() {
        let g = graph();
        let q = reference_queries(&ConsistencyRule::MandatoryProperty {
            label: "User".into(),
            key: "penaltyScore".into(),
        });
        let m = evaluate(&g, &q).unwrap();
        assert_eq!(m.support, 0);
        assert_eq!(m.coverage_pct, 0.0);
        assert_eq!(m.confidence_pct, 0.0);
    }

    #[test]
    fn broken_query_is_an_error() {
        let g = graph();
        let q = RuleQueries {
            satisfied: "MATCH (n RETURN COUNT(*) AS c".into(),
            body: "MATCH (n) RETURN COUNT(*) AS c".into(),
            head_total: "MATCH (n) RETURN COUNT(*) AS c".into(),
        };
        assert!(evaluate(&g, &q).is_err());
    }

    #[test]
    fn non_count_query_rejected() {
        let g = graph();
        let q = RuleQueries {
            satisfied: "MATCH (n:User) RETURN n.id AS id".into(),
            body: "MATCH (n) RETURN COUNT(*) AS c".into(),
            head_total: "MATCH (n) RETURN COUNT(*) AS c".into(),
        };
        assert!(evaluate(&g, &q).is_err());
    }

    #[test]
    fn batched_matches_naive_and_memoizes_shared_heads() {
        use grm_cypher::BatchConfig;
        let g = graph();
        let rules = [
            ConsistencyRule::MandatoryProperty { label: "User".into(), key: "name".into() },
            ConsistencyRule::UniqueProperty { label: "User".into(), key: "id".into() },
            ConsistencyRule::MandatoryProperty { label: "User".into(), key: "id".into() },
        ];
        let mut session = BatchSession::new(BatchConfig::default());
        for rule in &rules {
            let q = reference_queries(rule);
            let naive = evaluate(&g, &q).unwrap();
            let batched =
                evaluate_labeled_batched(&g, &q, &Scope::disabled(), "rule", &mut session).unwrap();
            assert_eq!(naive, batched, "divergence on {rule:?}");
        }
        // All three rules share the `MATCH (n:User)` head-total (and
        // the two mandatory-property rules share a body query), so
        // the memo must have answered at least the repeats.
        assert!(session.stats().memo_hits >= 2, "stats: {:?}", session.stats());
    }

    #[test]
    fn aggregate_means() {
        let ms = [
            RuleMetrics { support: 10, coverage_pct: 100.0, confidence_pct: 100.0 },
            RuleMetrics { support: 0, coverage_pct: 0.0, confidence_pct: 50.0 },
        ];
        let a = aggregate(&ms);
        assert_eq!(a.rules, 2);
        assert!((a.support - 5.0).abs() < 1e-9);
        assert!((a.coverage_pct - 50.0).abs() < 1e-9);
        assert!((a.confidence_pct - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let a = aggregate(&[]);
        assert_eq!(a.rules, 0);
        assert_eq!(a.support, 0.0);
    }
}
