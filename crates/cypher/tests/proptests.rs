//! Property-based tests for the Cypher engine: total functions on
//! arbitrary input, render/parse fixed points, regex engine sanity,
//! and executor invariants.

use grm_cypher::{
    execute, execute_optimized, execute_profiled, lexer::lex, parse, BatchConfig, BatchSession,
    Regex,
};
use grm_pgraph::{props, PropertyGraph, Value};
use proptest::prelude::*;

proptest! {
    /// The lexer is total: any input produces tokens or an error,
    /// never a panic.
    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// The parser is total over arbitrary input too.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// parse → render → parse is a fixed point for queries built from
    /// arbitrary identifiers over the rule-query shapes.
    #[test]
    fn render_parse_fixed_point(
        label in "[A-Za-z][A-Za-z0-9_]{0,8}",
        key in "[a-z][a-z0-9_]{0,8}",
        etype in "[A-Z][A-Z0-9_]{0,8}",
    ) {
        let queries = [
            format!("MATCH (n:{label}) WHERE n.{key} IS NOT NULL RETURN COUNT(*) AS c"),
            format!(
                "MATCH (a:{label})-[r:{etype}]->(b) WITH a AS a, r.{key} AS v, COUNT(*) AS c \
                 WHERE c = 1 RETURN COUNT(*) AS c"
            ),
            format!("MATCH (n:{label}) RETURN DISTINCT n.{key} AS v ORDER BY v LIMIT 7"),
        ];
        for q in queries {
            let ast1 = parse(&q).unwrap();
            let rendered = ast1.to_string();
            let ast2 = parse(&rendered).unwrap();
            prop_assert_eq!(ast1, ast2, "query: {}", q);
        }
    }

    /// Regex compilation is total; matching never panics.
    #[test]
    fn regex_never_panics(pattern in ".{0,30}", text in ".{0,30}") {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&text);
        }
    }

    /// A literal (escaped) pattern matches exactly itself.
    #[test]
    fn escaped_literal_matches_itself(text in "[a-zA-Z0-9 ]{0,20}") {
        let escaped: String = text
            .chars()
            .flat_map(|c| {
                if c.is_ascii_alphanumeric() || c == ' ' {
                    vec![c]
                } else {
                    vec!['\\', c]
                }
            })
            .collect();
        let re = Regex::new(&escaped).unwrap();
        prop_assert!(re.is_match(&text));
        prop_assert!(!re.is_match(&(text.clone() + "!")));
    }

    /// Bounded repetition counts exactly.
    #[test]
    fn bounded_repetition(n in 0usize..12, m in 0usize..12) {
        let re = Regex::new(&format!("a{{{n}}}")).unwrap();
        let text = "a".repeat(m);
        prop_assert_eq!(re.is_match(&text), n == m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// COUNT(*) over a label equals the number of nodes carrying it,
    /// on randomly generated graphs.
    #[test]
    fn count_matches_label_population(
        labels in prop::collection::vec(prop_oneof![Just("A"), Just("B"), Just("C")], 1..40),
    ) {
        let mut g = PropertyGraph::new();
        for (i, l) in labels.iter().enumerate() {
            g.add_node([*l], props([("id", i as i64)]));
        }
        for l in ["A", "B", "C"] {
            let rs = execute(&g, &format!("MATCH (n:{l}) RETURN COUNT(*) AS c")).unwrap();
            prop_assert_eq!(rs.single_int().unwrap() as usize, g.label_count(l));
        }
    }

    /// Directed edge counts: out-pattern total equals edge count, and
    /// equals the reversed-arrow formulation.
    #[test]
    fn direction_formulations_agree(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..30),
    ) {
        let mut g = PropertyGraph::new();
        for i in 0..10i64 {
            g.add_node(["N"], props([("id", i)]));
        }
        for (s, d) in &edges {
            g.add_edge(
                grm_pgraph::NodeId(u32::from(*s)),
                grm_pgraph::NodeId(u32::from(*d)),
                "E",
                Default::default(),
            );
        }
        let fwd = execute(&g, "MATCH (a)-[r:E]->(b) RETURN COUNT(*) AS c").unwrap();
        let rev = execute(&g, "MATCH (b)<-[r:E]-(a) RETURN COUNT(*) AS c").unwrap();
        prop_assert_eq!(fwd.single_int(), rev.single_int());
        prop_assert_eq!(fwd.single_int().unwrap() as usize, edges.len());
    }

    /// WHERE partitions rows: count(p) + count(NOT p) ≤ count(*) with
    /// equality when the predicate never evaluates to NULL.
    #[test]
    fn where_partitions_rows(vals in prop::collection::vec(any::<i32>(), 1..30)) {
        let mut g = PropertyGraph::new();
        for v in &vals {
            g.add_node(["N"], props([("x", i64::from(*v))]));
        }
        let total = execute(&g, "MATCH (n:N) RETURN COUNT(*) AS c").unwrap().single_int().unwrap();
        let pos = execute(&g, "MATCH (n:N) WHERE n.x >= 0 RETURN COUNT(*) AS c")
            .unwrap().single_int().unwrap();
        let neg = execute(&g, "MATCH (n:N) WHERE NOT (n.x >= 0) RETURN COUNT(*) AS c")
            .unwrap().single_int().unwrap();
        prop_assert_eq!(pos + neg, total);
    }

    /// DISTINCT never returns more rows than the plain projection.
    #[test]
    fn distinct_is_a_contraction(vals in prop::collection::vec(0i64..5, 1..30)) {
        let mut g = PropertyGraph::new();
        for v in &vals {
            g.add_node(["N"], props([("x", *v)]));
        }
        let plain = execute(&g, "MATCH (n:N) RETURN n.x AS x").unwrap();
        let distinct = execute(&g, "MATCH (n:N) RETURN DISTINCT n.x AS x").unwrap();
        prop_assert!(distinct.len() <= plain.len());
        let unique: std::collections::HashSet<i64> = vals.iter().copied().collect();
        prop_assert_eq!(distinct.len(), unique.len());
    }

    /// ORDER BY produces a sorted column; LIMIT truncates.
    #[test]
    fn order_by_sorts_and_limit_truncates(vals in prop::collection::vec(any::<i16>(), 1..25)) {
        let mut g = PropertyGraph::new();
        for v in &vals {
            g.add_node(["N"], props([("x", i64::from(*v))]));
        }
        let rs = execute(&g, "MATCH (n:N) RETURN n.x AS x ORDER BY x").unwrap();
        let col: Vec<i64> = rs.rows.iter().map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        }).collect();
        let mut sorted = col.clone();
        sorted.sort();
        prop_assert_eq!(&col, &sorted);

        let limited = execute(&g, "MATCH (n:N) RETURN n.x AS x ORDER BY x LIMIT 3").unwrap();
        prop_assert_eq!(limited.len(), col.len().min(3));
        prop_assert_eq!(
            limited.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            sorted.iter().take(3).map(|v| Value::Int(*v)).collect::<Vec<_>>()
        );
    }

    /// Aggregation identity: SUM(x) over grouped rows equals the sum
    /// of the values.
    #[test]
    fn sum_aggregate_identity(vals in prop::collection::vec(-1000i64..1000, 1..25)) {
        let mut g = PropertyGraph::new();
        for v in &vals {
            g.add_node(["N"], props([("x", *v)]));
        }
        let rs = execute(&g, "MATCH (n:N) RETURN SUM(n.x) AS s").unwrap();
        prop_assert_eq!(rs.single_int(), Some(vals.iter().sum::<i64>()));
    }

    /// PROFILE invariants on random graphs and the rule-query shapes:
    /// the profiled run returns the same rows as the plain run, the
    /// switch protocol keeps the per-operator self-times summing to
    /// at most the root's inclusive total, and the deterministic sim
    /// cost equals db-hits + rows by construction.
    #[test]
    fn profile_self_times_partition_the_run(
        labels in prop::collection::vec(prop_oneof![Just("A"), Just("B")], 1..25),
        edges in prop::collection::vec((0u8..25, 0u8..25), 0..40),
    ) {
        let mut g = PropertyGraph::new();
        for (i, l) in labels.iter().enumerate() {
            g.add_node([*l], props([("id", i as i64)]));
        }
        let n = labels.len() as u32;
        for (s, d) in &edges {
            let (s, d) = (u32::from(*s) % n, u32::from(*d) % n);
            g.add_edge(grm_pgraph::NodeId(s), grm_pgraph::NodeId(d), "E", Default::default());
        }
        for q in [
            "MATCH (n) RETURN COUNT(*) AS c",
            "MATCH (a:A)-[r:E]->(b) WHERE b.id >= 3 RETURN a.id AS i ORDER BY i LIMIT 5",
            "MATCH (a:A)-[:E*1..2]->(b:B) RETURN COUNT(*) AS c",
            "MATCH (a)-[r:E]->(b) WITH b AS b, COUNT(*) AS c WHERE c > 1 RETURN COUNT(*) AS c",
        ] {
            let plain = execute(&g, q).unwrap();
            let (rs, profile) = execute_profiled(&g, q).unwrap();
            prop_assert_eq!(&rs, &plain, "query: {}", q);
            let ops = profile.plan_ops();
            let self_sum: u64 = ops.iter().map(|o| o.self_us).sum();
            prop_assert!(
                self_sum <= profile.total_us,
                "Σ self {} > total {} for {}", self_sum, profile.total_us, q
            );
            let sim_sum: u64 = ops.iter().map(|o| o.db_hits() + o.rows).sum();
            prop_assert_eq!(profile.sim_us, sim_sum, "query: {}", q);
            prop_assert_eq!(profile.rows, rs.len() as u64, "query: {}", q);
        }
    }

    /// The optimizing layer is result-transparent: on random graphs
    /// and a query family covering pushable equality predicates,
    /// multi-label patterns, reversible paths, cross products,
    /// OPTIONAL MATCH and row-returning projections, the optimized
    /// execution returns the same ResultSet — rows AND ordering — as
    /// the naive walk. Each query also runs twice through one
    /// session, so plan-cache and memo hits are checked to return the
    /// identical result.
    #[test]
    fn optimized_execution_is_result_transparent(
        labels in prop::collection::vec(prop_oneof![Just("A"), Just("B"), Just("C")], 1..25),
        edges in prop::collection::vec((0u8..25, 0u8..25), 0..40),
        second_label in prop::collection::vec(any::<bool>(), 1..25),
    ) {
        let mut g = PropertyGraph::new();
        for (i, l) in labels.iter().enumerate() {
            if second_label[i % second_label.len()] {
                g.add_node([*l, "X"], props([("id", i as i64)]));
            } else {
                g.add_node([*l], props([("id", i as i64)]));
            }
        }
        let n = labels.len() as u32;
        for (s, d) in &edges {
            let (s, d) = (u32::from(*s) % n, u32::from(*d) % n);
            g.add_edge(grm_pgraph::NodeId(s), grm_pgraph::NodeId(d), "E", Default::default());
        }
        let mut session = BatchSession::new(BatchConfig::default());
        for q in [
            "MATCH (n) RETURN COUNT(*) AS c",
            "MATCH (n:A) WHERE n.id = 3 RETURN COUNT(*) AS c",
            "MATCH (n:X:A) WHERE n.id >= 2 AND n.id = 4 RETURN n.id AS i",
            "MATCH (a:A)-[:E]->(b:X) RETURN COUNT(*) AS c",
            "MATCH (a:C)-[:E]->(b) WHERE b.id = 1 RETURN COUNT(*) AS c",
            "MATCH (a:A), (b:B), (c:X) RETURN COUNT(*) AS c",
            "MATCH (a:B)-[:E*1..2]->(b:A) RETURN COUNT(*) AS c",
            "OPTIONAL MATCH (a:A)-[:E]->(b:B) WHERE a.id = 0 RETURN COUNT(b) AS c",
            "MATCH (a:A)-[:E]->(b) RETURN a.id AS i, b.id AS j ORDER BY i, j",
            "MATCH (a)-[:E]->(b:X) WITH b AS b, COUNT(*) AS c WHERE c > 1 RETURN COUNT(*) AS c",
        ] {
            let naive = execute(&g, q).unwrap();
            let optimized = execute_optimized(&g, q).unwrap();
            prop_assert_eq!(&optimized, &naive, "optimize diverged on: {}", q);
            let first = session.execute(&g, q).unwrap();
            prop_assert_eq!(&*first, &naive, "session diverged on: {}", q);
            let repeat = session.execute(&g, q).unwrap();
            prop_assert_eq!(&*repeat, &naive, "cached repeat diverged on: {}", q);
        }
    }

    /// Plan-cache hits never leak results across schema epochs: after
    /// any mutation the epoch moves, cached plans and memoized
    /// results are invalidated, and the session answer equals a fresh
    /// naive execution of the mutated graph.
    #[test]
    fn plan_cache_respects_schema_epochs(
        ids in prop::collection::vec(0i64..50, 1..20),
        extra in prop::collection::vec(0i64..50, 1..5),
    ) {
        let mut g = PropertyGraph::new();
        for id in &ids {
            g.add_node(["N"], props([("id", *id)]));
        }
        let mut session = BatchSession::new(BatchConfig::default());
        const Q: &str = "MATCH (n:N) WHERE n.id >= 10 RETURN COUNT(*) AS c";
        let before = session.execute(&g, Q).unwrap();
        prop_assert_eq!(&*before, &execute(&g, Q).unwrap());
        let epoch_before = g.epoch();
        for id in &extra {
            g.add_node(["N"], props([("id", *id)]));
        }
        prop_assert!(g.epoch() > epoch_before);
        let after = session.execute(&g, Q).unwrap();
        prop_assert_eq!(&*after, &execute(&g, Q).unwrap());
        prop_assert_eq!(
            after.single_int().unwrap(),
            ids.iter().chain(&extra).filter(|id| **id >= 10).count() as i64
        );
    }
}
