//! Corpus test: the *verbatim* queries printed in the paper run on
//! this engine with the semantics the paper describes.
//!
//! §4.4 shows three LLM-generated queries (one per error class). All
//! three must behave on our engine exactly as the authors describe:
//! the direction-flipped query runs but is wrong, the
//! hallucinated-property query runs and returns nothing, and the
//! regex-operator slip is detectable.

use grm_cypher::{analyze, execute, parse, SemanticIssue};
use grm_pgraph::{props, GraphSchema, PropertyGraph, Value};

/// A miniature WWC2019 with tournaments, matches and goals.
fn wwc() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let t = g.add_node(["Tournament"], props([("id", Value::Int(1))]));
    let mut matches = Vec::new();
    for i in 0..4i64 {
        let m = g.add_node(["Match"], props([("id", Value::from(format!("m{i}")))]));
        g.add_edge(m, t, "IN_TOURNAMENT", Default::default());
        matches.push(m);
    }
    let p =
        g.add_node(["Person"], props([("id", Value::from("p0")), ("name", Value::from("Ada"))]));
    g.add_edge(p, matches[0], "SCORED_GOAL", props([("minute", Value::Int(12))]));
    g.add_edge(p, matches[0], "SCORED_GOAL", props([("minute", Value::Int(12))]));
    g
}

/// Paper §4.4, error class 1 — "Unique Match identifier within a
/// Tournament" with the relationship direction inverted:
///
/// ```text
/// MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match)
/// WITH t.id AS tournament_id, m.id AS match_id, COUNT(*) AS count
/// WHERE count = 1
/// RETURN COUNT(*) AS support;
/// ```
#[test]
fn direction_error_query_runs_but_counts_zero() {
    let g = wwc();
    let query = "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match)\n\
         WITH t.id AS tournament_id, m.id AS match_id, COUNT(*) AS count\n\
         WHERE count = 1\n\
         RETURN COUNT(*) AS support;";
    // It executes fine — the failure is silent, as the paper observed.
    let rs = execute(&g, query).expect("query is syntactically valid");
    assert_eq!(rs.single_int(), Some(0));
    // The analyzer catches what the authors caught by inspection.
    let issues = analyze(&parse(query).unwrap(), &GraphSchema::infer(&g));
    assert!(issues.iter().any(SemanticIssue::is_direction), "{issues:?}");
    // The corrected orientation finds the matches.
    let fixed = "MATCH (t:Tournament)<-[:IN_TOURNAMENT]-(m:Match)\n\
         WITH t.id AS tournament_id, m.id AS match_id, COUNT(*) AS count\n\
         WHERE count = 1\n\
         RETURN COUNT(*) AS support;";
    assert_eq!(execute(&g, fixed).unwrap().single_int(), Some(4));
}

/// Paper §4.4, error class 2 — Mixtral's same-minute query inventing
/// `score`, `penaltyScore` and `minute` on `Match`:
///
/// ```text
/// MATCH (p:Person)-[:SCORED_GOAL]->(m:Match)
/// WITH m.id AS match_id, p.id AS person_id,
/// COLLECT (DISTINCT p.name + ':' + toString(m.score) + ':' +
///   toString(m.penaltyScore) + ':' + toString(m.minute)) AS minutes
/// WHERE Size(minutes) > 1
/// RETURN match_id, person_id, minutes;
/// ```
#[test]
fn hallucinated_property_query_runs_and_finds_nothing() {
    let g = wwc();
    let query = "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match)\n\
         WITH m.id AS match_id, p.id AS person_id,\n\
         COLLECT (DISTINCT p.name + ':' + toString(m.score) + ':' \
         + toString(m.penaltyScore) + ':' + toString(m.minute)) AS minutes \
         WHERE Size(minutes) > 1\n\
         RETURN match_id, person_id, minutes;";
    // NULL-typed string concatenation makes every collected element
    // NULL, so nothing satisfies SIZE(...) > 1 — it "works" and is
    // silently wrong, exactly the hallucination failure mode.
    let rs = execute(&g, query).expect("query is syntactically valid");
    assert!(rs.is_empty());
    let issues = analyze(&parse(query).unwrap(), &GraphSchema::infer(&g));
    let hallucinated: Vec<_> = issues.iter().filter(|i| i.is_hallucination()).collect();
    assert!(
        hallucinated.len() >= 3,
        "score/penaltyScore/minute should all be flagged: {hallucinated:?}"
    );
}

/// Paper §4.4, error class 3 — the domain-format rule using `=` where
/// `=~` belongs:
///
/// ```text
/// MATCH (n)
/// WHERE n.domain IS NULL AND n.domain = '^([a-zA-Z0-9-]+\\.)+
/// [a-zA-Z](2,)$'
/// RETURN COUNT(*) AS valid_domains
/// ```
#[test]
fn operator_slip_is_wrong_but_the_fixed_regex_works() {
    let mut g = PropertyGraph::new();
    g.add_node(["Computer"], props([("domain", Value::from("good.example.com"))]));
    g.add_node(["Computer"], props([("domain", Value::from("bad domain"))]));

    // As printed (with `=` and the contradictory IS NULL), the query
    // runs and counts zero valid domains — a silent wrong answer.
    let slipped = r"MATCH (n) WHERE n.domain IS NULL AND n.domain = '^([a-zA-Z0-9-]+\.)+[a-zA-Z](2,)$' RETURN COUNT(*) AS valid_domains";
    assert_eq!(execute(&g, slipped).unwrap().single_int(), Some(0));

    // The intended query with `=~` (and the `{2,}` quantifier the
    // LLM also mangled) counts the well-formed domain.
    let intended = r"MATCH (n) WHERE n.domain IS NOT NULL AND n.domain =~ '^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$' RETURN COUNT(*) AS valid_domains";
    assert_eq!(execute(&g, intended).unwrap().single_int(), Some(1));
}

/// The paper's flagship complex rule as a direct query: "a player
/// cannot score two goals in the same minute of the same match" —
/// the duplicate in the fixture must be found.
#[test]
fn same_minute_goals_are_detectable() {
    let g = wwc();
    let rs = execute(
        &g,
        "MATCH (p:Person)-[sg:SCORED_GOAL]->(m:Match) \
         WITH p.id AS player, m.id AS game, sg.minute AS minute, COUNT(*) AS goals \
         WHERE goals > 1 RETURN player, game, minute, goals",
    )
    .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][3], Value::Int(2));
}

/// The intro's Twitter rules, as queries.
#[test]
fn intro_twitter_rules_run() {
    let mut g = PropertyGraph::new();
    let u = g.add_node(["User"], props([("id", Value::Int(1))]));
    let t1 = g
        .add_node(["Tweet"], props([("id", Value::Int(10)), ("created_at", Value::DateTime(100))]));
    let t2 =
        g.add_node(["Tweet"], props([("id", Value::Int(11)), ("created_at", Value::DateTime(50))]));
    g.add_edge(u, t1, "POSTS", Default::default());
    g.add_edge(u, t2, "POSTS", Default::default());
    g.add_edge(t2, t1, "RETWEETS", Default::default()); // retweet predates original!
    g.add_edge(u, u, "FOLLOWS", Default::default()); // self-follow!

    // "a retweet can occur only after the original tweet"
    let temporal = execute(
        &g,
        "MATCH (rt:Tweet)-[:RETWEETS]->(t:Tweet) WHERE rt.created_at < t.created_at \
         RETURN COUNT(*) AS violations",
    )
    .unwrap();
    assert_eq!(temporal.single_int(), Some(1));

    // "users cannot follow themselves"
    let selffollow = execute(
        &g,
        "MATCH (a:User)-[:FOLLOWS]->(b:User) WHERE id(a) = id(b) RETURN COUNT(*) AS violations",
    )
    .unwrap();
    assert_eq!(selffollow.single_int(), Some(1));

    // "every tweet must be associated with a valid user who posted it"
    let orphans = execute(
        &g,
        "MATCH (t:Tweet) OPTIONAL MATCH (u:User)-[p:POSTS]->(t) \
         WITH t AS t, COUNT(p) AS authors WHERE authors = 0 RETURN COUNT(*) AS orphans",
    )
    .unwrap();
    assert_eq!(orphans.single_int(), Some(0));
}
