//! Cypher lexer.
//!
//! Tokenizes the Cypher subset the rule-mining pipeline emits.
//! Keywords are case-insensitive (Cypher convention); identifiers keep
//! their case. Every token carries its byte span for error reporting.

use crate::error::{CypherError, Result, Span};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals & names
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    // Keywords (case-insensitive in source)
    Match,
    Optional,
    Where,
    With,
    Return,
    As,
    And,
    Or,
    Xor,
    Not,
    Null,
    Is,
    In,
    Distinct,
    Order,
    By,
    Limit,
    Skip,
    Asc,
    Desc,
    True,
    False,
    Exists,
    Unwind,
    Starts,
    Ends,
    Contains,
    // Punctuation / operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Colon,
    Comma,
    Dot,
    Pipe,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Eq,      // =
    Neq,     // <>
    Lt,      // <
    Le,      // <=
    Gt,      // >
    Ge,      // >=
    RegexEq, // =~
    Arrow,   // ->
    LArrow,  // <-
    Eof,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    // Case-insensitive keyword table. Function names such as COUNT or
    // COLLECT are deliberately *not* keywords: `COUNT(*) AS count` is
    // legal Cypher, so they lex as identifiers.
    match word.to_ascii_uppercase().as_str() {
        "MATCH" => Some(Tok::Match),
        "OPTIONAL" => Some(Tok::Optional),
        "WHERE" => Some(Tok::Where),
        "WITH" => Some(Tok::With),
        "RETURN" => Some(Tok::Return),
        "AS" => Some(Tok::As),
        "AND" => Some(Tok::And),
        "OR" => Some(Tok::Or),
        "XOR" => Some(Tok::Xor),
        "NOT" => Some(Tok::Not),
        "NULL" => Some(Tok::Null),
        "IS" => Some(Tok::Is),
        "IN" => Some(Tok::In),
        "DISTINCT" => Some(Tok::Distinct),
        "ORDER" => Some(Tok::Order),
        "BY" => Some(Tok::By),
        "LIMIT" => Some(Tok::Limit),
        "SKIP" => Some(Tok::Skip),
        "ASC" | "ASCENDING" => Some(Tok::Asc),
        "DESC" | "DESCENDING" => Some(Tok::Desc),
        "TRUE" => Some(Tok::True),
        "FALSE" => Some(Tok::False),
        "EXISTS" => Some(Tok::Exists),
        "UNWIND" => Some(Tok::Unwind),
        "STARTS" => Some(Tok::Starts),
        "ENDS" => Some(Tok::Ends),
        "CONTAINS" => Some(Tok::Contains),
        _ => None,
    }
}

/// Lexes `src` into a token vector terminated by [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Skip whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers / keywords (also backtick-quoted identifiers).
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_owned()));
            out.push(Token { tok, span: Span::new(start, i) });
            continue;
        }
        if c == '`' {
            i += 1;
            let name_start = i;
            while i < bytes.len() && bytes[i] != b'`' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(CypherError::lex(
                    "unterminated backtick identifier",
                    Span::new(start, i),
                ));
            }
            out.push(Token {
                tok: Tok::Ident(src[name_start..i].to_owned()),
                span: Span::new(start, i + 1),
            });
            i += 1;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::FloatLit(text.parse().map_err(|_| {
                    CypherError::lex(format!("bad float literal {text}"), Span::new(start, i))
                })?)
            } else {
                Tok::IntLit(text.parse().map_err(|_| {
                    CypherError::lex(format!("bad int literal {text}"), Span::new(start, i))
                })?)
            };
            out.push(Token { tok, span: Span::new(start, i) });
            continue;
        }
        // Strings, single or double quoted, with backslash escapes.
        if c == '\'' || c == '"' {
            let quote = bytes[i];
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < bytes.len() {
                let b = bytes[i];
                if b == b'\\' && i + 1 < bytes.len() {
                    // The escaped character may be multi-byte; decode
                    // it whole so `i` always lands on a boundary.
                    let esc_len = utf8_len(bytes[i + 1]);
                    let esc_str = &src[i + 1..(i + 1 + esc_len).min(src.len())];
                    let esc = esc_str.chars().next().unwrap_or('\\');
                    match esc {
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        '\\' => s.push('\\'),
                        '\'' => s.push('\''),
                        '"' => s.push('"'),
                        // Cypher regex strings keep unknown escapes
                        // verbatim (e.g. `\.` inside a pattern).
                        other => {
                            s.push('\\');
                            s.push(other);
                        }
                    }
                    i += 1 + esc.len_utf8();
                    continue;
                }
                if b == quote {
                    closed = true;
                    i += 1;
                    break;
                }
                // Multi-byte UTF-8: copy the full scalar.
                let ch_len = utf8_len(b);
                s.push_str(&src[i..i + ch_len]);
                i += ch_len;
            }
            if !closed {
                return Err(CypherError::lex("unterminated string literal", Span::new(start, i)));
            }
            out.push(Token { tok: Tok::StrLit(s), span: Span::new(start, i) });
            continue;
        }
        // Operators & punctuation.
        let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
        let (tok, len) = if two(b'<', b'>') {
            (Tok::Neq, 2)
        } else if two(b'<', b'=') {
            (Tok::Le, 2)
        } else if two(b'>', b'=') {
            (Tok::Ge, 2)
        } else if two(b'=', b'~') {
            (Tok::RegexEq, 2)
        } else if two(b'-', b'>') {
            (Tok::Arrow, 2)
        } else if two(b'<', b'-') {
            (Tok::LArrow, 2)
        } else {
            let t = match c {
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                '[' => Tok::LBracket,
                ']' => Tok::RBracket,
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                ':' => Tok::Colon,
                ',' => Tok::Comma,
                '.' => Tok::Dot,
                '|' => Tok::Pipe,
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '*' => Tok::Star,
                '/' => Tok::Slash,
                '%' => Tok::Percent,
                '^' => Tok::Caret,
                '=' => Tok::Eq,
                '<' => Tok::Lt,
                '>' => Tok::Gt,
                ';' => {
                    // Trailing semicolons are tolerated and skipped.
                    i += 1;
                    continue;
                }
                other => {
                    return Err(CypherError::lex(
                        format!("unexpected character {other:?}"),
                        Span::point(i),
                    ))
                }
            };
            (t, 1)
        };
        i += len;
        out.push(Token { tok, span: Span::new(start, i) });
    }
    out.push(Token { tok: Tok::Eof, span: Span::point(src.len()) });
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        // Continuation or invalid lead byte: treat as one byte so the
        // scanner cannot get stuck or slice mid-character upstream.
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("match MATCH Match")[..3], [Tok::Match, Tok::Match, Tok::Match]);
    }

    #[test]
    fn count_is_an_identifier() {
        let ks = kinds("COUNT(*) AS count");
        assert_eq!(ks[0], Tok::Ident("COUNT".into()));
        assert_eq!(ks[4], Tok::As);
        assert_eq!(ks[5], Tok::Ident("count".into()));
    }

    #[test]
    fn arrows_and_comparisons() {
        assert_eq!(
            kinds("-> <- <= >= <> =~ =")[..7],
            [Tok::Arrow, Tok::LArrow, Tok::Le, Tok::Ge, Tok::Neq, Tok::RegexEq, Tok::Eq]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r"'a\'b'")[0], Tok::StrLit("a'b".into()));
        assert_eq!(kinds(r#""x\ny""#)[0], Tok::StrLit("x\ny".into()));
        // Unknown escapes (regex patterns) pass through.
        assert_eq!(kinds(r"'\d+\.'")[0], Tok::StrLit(r"\d+\.".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Tok::IntLit(42));
        assert_eq!(kinds("3.25")[0], Tok::FloatLit(3.25));
        // `1.` is int-dot (property access style), not a float.
        assert_eq!(kinds("1.x")[..3], [Tok::IntLit(1), Tok::Dot, Tok::Ident("x".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").unwrap_err().is_syntax());
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("MATCH @").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("MATCH // everything\nRETURN")[..2], [Tok::Match, Tok::Return]);
    }

    #[test]
    fn semicolon_tolerated() {
        assert_eq!(kinds("RETURN 1;").len(), 3); // RETURN, 1, EOF
    }

    #[test]
    fn backtick_identifiers() {
        assert_eq!(kinds("`weird name`")[0], Tok::Ident("weird name".into()));
    }

    #[test]
    fn spans_cover_source() {
        let toks = lex("MATCH (n)").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 5));
        assert_eq!(toks[1].span, Span::new(6, 7));
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo ✓'")[0], Tok::StrLit("héllo ✓".into()));
    }
}
