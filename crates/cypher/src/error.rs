//! Positioned errors for the Cypher engine.
//!
//! Syntax errors carry byte offsets so callers (notably the error
//! classifier in `grm-metrics`) can point at the offending token —
//! mirroring how the paper's authors identified the `=` vs `=~`
//! syntax slip in §4.4.

use std::fmt;

/// Byte-offset span within the query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Zero-width span at `pos`.
    pub fn point(pos: usize) -> Self {
        Span { start: pos, end: pos }
    }
}

/// Any failure while lexing, parsing, analyzing, or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum CypherError {
    /// Lexical error: unexpected character, unterminated string, ...
    Lex { message: String, span: Span },
    /// Grammar violation.
    Parse { message: String, span: Span },
    /// Query is well-formed but inconsistent with itself
    /// (e.g. unknown variable, aggregate nested in aggregate).
    Semantic { message: String },
    /// Runtime failure (type error that Neo4j would raise eagerly).
    Runtime { message: String },
}

impl CypherError {
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        CypherError::Lex { message: message.into(), span }
    }
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        CypherError::Parse { message: message.into(), span }
    }
    pub fn semantic(message: impl Into<String>) -> Self {
        CypherError::Semantic { message: message.into() }
    }
    pub fn runtime(message: impl Into<String>) -> Self {
        CypherError::Runtime { message: message.into() }
    }

    /// True for lexer/parser failures — the paper's third error
    /// category ("syntax issues in the Cypher query").
    pub fn is_syntax(&self) -> bool {
        matches!(self, CypherError::Lex { .. } | CypherError::Parse { .. })
    }
}

impl fmt::Display for CypherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CypherError::Lex { message, span } => {
                write!(f, "lex error at {}..{}: {message}", span.start, span.end)
            }
            CypherError::Parse { message, span } => {
                write!(f, "parse error at {}..{}: {message}", span.start, span.end)
            }
            CypherError::Semantic { message } => write!(f, "semantic error: {message}"),
            CypherError::Runtime { message } => write!(f, "runtime error: {message}"),
        }
    }
}

impl std::error::Error for CypherError {}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, CypherError>;
