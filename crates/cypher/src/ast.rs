//! Abstract syntax tree for the supported Cypher subset, plus a
//! canonical renderer (`Display`) used by the query corrector in
//! `grm-metrics` to re-emit repaired queries as text.

use std::fmt;

use grm_pgraph::Value;

/// A full query: a pipeline of reading clauses ending in `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub clauses: Vec<Clause>,
    pub ret: Return,
}

/// A reading/projecting clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH <patterns> [WHERE <expr>]` (optionally `OPTIONAL MATCH`).
    Match { optional: bool, patterns: Vec<PathPattern>, where_clause: Option<Expr> },
    /// `WITH [DISTINCT] items [WHERE expr]`.
    With { distinct: bool, items: Vec<ProjItem>, where_clause: Option<Expr> },
    /// `UNWIND <expr> AS <var>`.
    Unwind { expr: Expr, var: String },
}

/// `RETURN [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Return {
    pub distinct: bool,
    pub items: Vec<ProjItem>,
    pub order_by: Vec<OrderItem>,
    pub skip: Option<u64>,
    pub limit: Option<u64>,
}

/// A projection item: expression with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl ProjItem {
    /// Output column name: explicit alias, else rendered expression.
    pub fn name(&self) -> String {
        self.alias.clone().unwrap_or_else(|| self.expr.to_string())
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// A linear path pattern `(a)-[r:T]->(b)-...`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    pub start: NodePattern,
    pub steps: Vec<(RelPattern, NodePattern)>,
}

impl PathPattern {
    /// The same path written end-to-start, with every relationship
    /// direction flipped. Matching the reversal produces identical
    /// bindings; the planner uses it to begin at whichever end is
    /// cheaper (bound variable or more selective label).
    pub fn reversed(&self) -> PathPattern {
        let mut nodes: Vec<&NodePattern> = vec![&self.start];
        nodes.extend(self.steps.iter().map(|(_, n)| n));
        let rels: Vec<&RelPattern> = self.steps.iter().map(|(r, _)| r).collect();

        let start = (*nodes.last().expect("path has at least one node")).clone();
        let steps = rels
            .iter()
            .zip(nodes.iter())
            .rev()
            .map(|(rel, node)| {
                let mut rel = (*rel).clone();
                rel.direction = rel.direction.reversed();
                (rel, (*node).clone())
            })
            .collect();
        PathPattern { start, steps }
    }
}

/// `(var:Label {key: expr, ...})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    pub var: Option<String>,
    pub labels: Vec<String>,
    pub props: Vec<(String, Expr)>,
}

/// Relationship direction as written in the pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Out,
    /// `<-[..]-`
    In,
    /// `-[..]-`
    Undirected,
}

impl Direction {
    /// The opposite direction (used by the direction-error corrector).
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
            Direction::Undirected => Direction::Undirected,
        }
    }
}

/// `-[var:TYPE {key: expr}]->` (direction included).
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    pub var: Option<String>,
    pub types: Vec<String>,
    pub props: Vec<(String, Expr)>,
    pub direction: Direction,
    /// Variable-length hop bounds: `Some((min, max))` for `*min..max`
    /// (`max = None` for unbounded `*min..`); `None` for a plain
    /// single relationship.
    pub length: Option<(u32, Option<u32>)>,
}

/// Binary operators, lowest to highest precedence tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    Xor,
    And,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Regex,
    StartsWith,
    EndsWith,
    Contains,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::Xor => "XOR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Regex => "=~",
            BinOp::StartsWith => "STARTS WITH",
            BinOp::EndsWith => "ENDS WITH",
            BinOp::Contains => "CONTAINS",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value (`42`, `'x'`, `true`, `null`, `[1,2]`).
    Literal(Value),
    /// Variable reference.
    Var(String),
    /// `base.key` property access.
    Prop { base: Box<Expr>, key: String },
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr IN list`.
    In { expr: Box<Expr>, list: Box<Expr> },
    /// Function call; `name` is stored lowercase. `star` marks
    /// `COUNT(*)`.
    FnCall { name: String, distinct: bool, star: bool, args: Vec<Expr> },
    /// List literal of expressions.
    List(Vec<Expr>),
    /// `EXISTS(n.prop)` keyword form.
    ExistsProp(Box<Expr>),
}

impl Expr {
    /// Builds `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Builds `var.key`.
    pub fn prop(var: &str, key: &str) -> Expr {
        Expr::Prop { base: Box::new(Expr::Var(var.to_owned())), key: key.to_owned() }
    }

    /// True when the expression contains an aggregate function call
    /// (`count`, `collect`, `sum`, `min`, `max`, `avg`) at any depth
    /// outside another aggregate.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::FnCall { name, args, .. } => {
                is_aggregate_fn(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Literal(_) | Expr::Var(_) => false,
            Expr::Prop { base, .. } => base.contains_aggregate(),
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::In { expr, list } => expr.contains_aggregate() || list.contains_aggregate(),
            Expr::List(items) => items.iter().any(Expr::contains_aggregate),
            Expr::ExistsProp(e) => e.contains_aggregate(),
        }
    }

    /// Collects every `var.key` property access into `out`.
    pub fn property_accesses(&self, out: &mut Vec<(String, String)>) {
        match self {
            Expr::Prop { base, key } => {
                if let Expr::Var(v) = base.as_ref() {
                    out.push((v.clone(), key.clone()));
                }
                base.property_accesses(out);
            }
            Expr::Unary { expr, .. } => expr.property_accesses(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.property_accesses(out);
                rhs.property_accesses(out);
            }
            Expr::IsNull { expr, .. } => expr.property_accesses(out),
            Expr::In { expr, list } => {
                expr.property_accesses(out);
                list.property_accesses(out);
            }
            Expr::FnCall { args, .. } => {
                for a in args {
                    a.property_accesses(out);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.property_accesses(out);
                }
            }
            Expr::ExistsProp(e) => e.property_accesses(out),
            Expr::Literal(_) | Expr::Var(_) => {}
        }
    }
}

/// True for Cypher aggregate function names (lowercase).
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(name, "count" | "collect" | "sum" | "min" | "max" | "avg")
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            writeln!(f, "{clause}")?;
        }
        write!(f, "{}", self.ret)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Match { optional, patterns, where_clause } => {
                if *optional {
                    write!(f, "OPTIONAL ")?;
                }
                write!(f, "MATCH ")?;
                for (i, p) in patterns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::With { distinct, items, where_clause } => {
                write!(f, "WITH ")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                if let Some(w) = where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Clause::Unwind { expr, var } => write!(f, "UNWIND {expr} AS {var}"),
        }
    }
}

impl fmt::Display for Return {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RETURN ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.descending {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(s) = self.skip {
            write!(f, " SKIP {s}")?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for (rel, node) in &self.steps {
            write!(f, "{rel}{node}")?;
        }
        Ok(())
    }
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        if let Some(v) = &self.var {
            write!(f, "{v}")?;
        }
        for l in &self.labels {
            write!(f, ":{l}")?;
        }
        if !self.props.is_empty() {
            write!(f, " {{")?;
            for (i, (k, e)) in self.props.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}: {e}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (pre, post) = match self.direction {
            Direction::Out => ("-", "->"),
            Direction::In => ("<-", "-"),
            Direction::Undirected => ("-", "-"),
        };
        write!(f, "{pre}[")?;
        if let Some(v) = &self.var {
            write!(f, "{v}")?;
        }
        for (i, t) in self.types.iter().enumerate() {
            write!(f, "{}{t}", if i == 0 { ":" } else { "|" })?;
        }
        match self.length {
            None => {}
            Some((1, None)) => write!(f, "*")?,
            Some((min, None)) => write!(f, "*{min}..")?,
            Some((min, Some(max))) if min == max => write!(f, "*{min}")?,
            Some((min, Some(max))) => write!(f, "*{min}..{max}")?,
        }
        if !self.props.is_empty() {
            write!(f, " {{")?;
            for (i, (k, e)) in self.props.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}: {e}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "]{post}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::Null => write!(f, "null"),
                other => write!(f, "{other}"),
            },
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Prop { base, key } => write!(f, "{base}.{key}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { op, lhs, rhs } => {
                // Parenthesise nested binaries for unambiguous output;
                // atoms render bare to keep queries readable.
                fn wrap(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
                    match e {
                        Expr::Binary { .. } => write!(f, "({e})"),
                        _ => write!(f, "{e}"),
                    }
                }
                wrap(f, lhs)?;
                write!(f, " {} ", op.symbol())?;
                wrap(f, rhs)
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::In { expr, list } => write!(f, "{expr} IN {list}"),
            Expr::FnCall { name, distinct, star, args } => {
                // Conventional casing: aggregates upper-case, scalar
                // functions as written in Neo4j docs.
                let shown = match name.as_str() {
                    "count" | "collect" | "sum" | "min" | "max" | "avg" | "size" => {
                        name.to_ascii_uppercase()
                    }
                    "tostring" => "toString".to_owned(),
                    "tolower" => "toLower".to_owned(),
                    "toupper" => "toUpper".to_owned(),
                    "tointeger" => "toInteger".to_owned(),
                    other => other.to_owned(),
                };
                write!(f, "{shown}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    if *distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
            Expr::List(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::ExistsProp(e) => write!(f, "EXISTS({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_node_pattern() {
        let n = NodePattern {
            var: Some("m".into()),
            labels: vec!["Match".into()],
            props: vec![("id".into(), Expr::Literal(Value::Int(1)))],
        };
        assert_eq!(n.to_string(), "(m:Match {id: 1})");
    }

    #[test]
    fn render_rel_directions() {
        let mk = |d| RelPattern {
            var: None,
            types: vec!["IN_TOURNAMENT".into()],
            props: vec![],
            direction: d,
            length: None,
        };
        assert_eq!(mk(Direction::Out).to_string(), "-[:IN_TOURNAMENT]->");
        assert_eq!(mk(Direction::In).to_string(), "<-[:IN_TOURNAMENT]-");
        assert_eq!(mk(Direction::Undirected).to_string(), "-[:IN_TOURNAMENT]-");
    }

    #[test]
    fn direction_reversal() {
        assert_eq!(Direction::Out.reversed(), Direction::In);
        assert_eq!(Direction::Undirected.reversed(), Direction::Undirected);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::FnCall { name: "count".into(), distinct: false, star: true, args: vec![] };
        assert!(agg.contains_aggregate());
        assert!(Expr::binary(BinOp::Add, agg, Expr::Literal(Value::Int(1))).contains_aggregate());
        assert!(!Expr::prop("n", "id").contains_aggregate());
    }

    #[test]
    fn property_access_collection() {
        let e = Expr::binary(BinOp::Eq, Expr::prop("n", "id"), Expr::prop("m", "id"));
        let mut accesses = Vec::new();
        e.property_accesses(&mut accesses);
        assert_eq!(
            accesses,
            vec![("n".to_owned(), "id".to_owned()), ("m".to_owned(), "id".to_owned())]
        );
    }

    #[test]
    fn fn_call_rendering() {
        let e = Expr::FnCall {
            name: "collect".into(),
            distinct: true,
            star: false,
            args: vec![Expr::prop("p", "name")],
        };
        assert_eq!(e.to_string(), "COLLECT(DISTINCT p.name)");
        let e = Expr::FnCall {
            name: "tostring".into(),
            distinct: false,
            star: false,
            args: vec![Expr::Var("x".into())],
        };
        assert_eq!(e.to_string(), "toString(x)");
    }
}
