//! Semantic analysis of a query against an inferred graph schema.
//!
//! This module reproduces, as machine checks, the manual inspection
//! the paper's authors performed in §4.4. Given a parsed query and a
//! [`GraphSchema`], it reports:
//!
//! * **unknown labels / relationship types** — the query cannot match
//!   anything;
//! * **wrong relationship direction** — the type exists but only in
//!   the opposite orientation (the paper's first error category, e.g.
//!   `(t:Tournament)-[:IN_TOURNAMENT]->(m:Match)`);
//! * **unknown ("hallucinated") properties** — a `var.key` access
//!   where no element under the variable's label carries `key` (the
//!   paper's second error category, e.g. `m.penaltyScore`);
//! * **unknown variables** — referenced but never bound.
//!
//! Syntax errors (the third category) never reach this module: the
//! parser rejects them first.

use std::collections::HashMap;

use grm_pgraph::GraphSchema;

use crate::ast::*;

/// One semantic problem found in a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticIssue {
    /// A node label that does not exist in the schema.
    UnknownNodeLabel { label: String },
    /// A relationship type that does not exist in the schema.
    UnknownEdgeType { etype: String },
    /// A relationship drawn in a direction the schema never exhibits,
    /// while the reverse direction does exist.
    WrongDirection { etype: String, from: String, to: String },
    /// Endpoint labels the type connects in neither direction.
    ImpossibleEndpoints { etype: String, from: String, to: String },
    /// `var.key` where the schema has no such property under the
    /// variable's label(s) — a hallucinated property.
    UnknownProperty { var: String, on: String, key: String },
    /// A variable used but never introduced.
    UnknownVariable { var: String },
}

impl SemanticIssue {
    /// True for the paper's "direction" error category.
    pub fn is_direction(&self) -> bool {
        matches!(self, SemanticIssue::WrongDirection { .. })
    }

    /// True for the paper's "hallucinated property" error category.
    pub fn is_hallucination(&self) -> bool {
        matches!(self, SemanticIssue::UnknownProperty { .. })
    }
}

/// What a pattern variable is known to denote.
#[derive(Debug, Clone, PartialEq)]
enum VarKind {
    /// Node variable with the labels stated in its pattern(s).
    Node(Vec<String>),
    /// Relationship variable with its stated types.
    Rel(Vec<String>),
    /// Projected value (WITH/UNWIND alias) — not checkable.
    Value,
}

/// Analyzes `query` against `schema`; returns all issues found
/// (empty = semantically clean).
pub fn analyze(query: &Query, schema: &GraphSchema) -> Vec<SemanticIssue> {
    let mut issues = Vec::new();
    let mut vars: HashMap<String, VarKind> = HashMap::new();

    // Pass 1: walk clauses in order, collecting variable kinds and
    // checking patterns as they appear.
    for clause in &query.clauses {
        match clause {
            Clause::Match { patterns, where_clause, .. } => {
                for p in patterns {
                    check_pattern(p, schema, &mut vars, &mut issues);
                }
                if let Some(w) = where_clause {
                    check_expr(w, schema, &vars, &mut issues);
                }
            }
            Clause::With { items, where_clause, .. } => {
                for item in items {
                    check_expr(&item.expr, schema, &vars, &mut issues);
                }
                if let Some(w) = where_clause {
                    // The WHERE of a WITH sees the *projected* scope.
                    let mut projected: HashMap<String, VarKind> = HashMap::new();
                    for item in items {
                        let kind = match &item.expr {
                            Expr::Var(v) => vars.get(v).cloned().unwrap_or(VarKind::Value),
                            _ => VarKind::Value,
                        };
                        projected.insert(item.name(), kind);
                    }
                    check_expr(w, schema, &projected, &mut issues);
                }
                // WITH re-scopes: only projected names survive.
                let mut next: HashMap<String, VarKind> = HashMap::new();
                for item in items {
                    let name = item.name();
                    let kind = match &item.expr {
                        Expr::Var(v) => vars.get(v).cloned().unwrap_or(VarKind::Value),
                        _ => VarKind::Value,
                    };
                    next.insert(name, kind);
                }
                vars = next;
            }
            Clause::Unwind { expr, var } => {
                check_expr(expr, schema, &vars, &mut issues);
                vars.insert(var.clone(), VarKind::Value);
            }
        }
    }
    for item in &query.ret.items {
        check_expr(&item.expr, schema, &vars, &mut issues);
    }
    for item in &query.ret.order_by {
        // ORDER BY sees aliases; unknown names there are tolerated
        // (they may be output columns).
        let _ = item;
    }

    dedup(issues)
}

fn check_pattern(
    p: &PathPattern,
    schema: &GraphSchema,
    vars: &mut HashMap<String, VarKind>,
    issues: &mut Vec<SemanticIssue>,
) {
    check_node(&p.start, schema, vars, issues);
    let mut prev = &p.start;
    for (rel, node) in &p.steps {
        check_node(node, schema, vars, issues);
        check_rel(prev, rel, node, schema, vars, issues);
        prev = node;
    }
}

fn check_node(
    n: &NodePattern,
    schema: &GraphSchema,
    vars: &mut HashMap<String, VarKind>,
    issues: &mut Vec<SemanticIssue>,
) {
    for label in &n.labels {
        if !schema.has_node_label(label) {
            issues.push(SemanticIssue::UnknownNodeLabel { label: label.clone() });
        }
    }
    if let Some(v) = &n.var {
        match vars.get_mut(v) {
            // Re-binding merges label knowledge.
            Some(VarKind::Node(existing)) => {
                for l in &n.labels {
                    if !existing.contains(l) {
                        existing.push(l.clone());
                    }
                }
            }
            Some(_) => {}
            None => {
                vars.insert(v.clone(), VarKind::Node(n.labels.clone()));
            }
        }
    }
    // Inline property maps are property accesses too.
    for (key, _) in &n.props {
        let known = if n.labels.is_empty() {
            schema.any_node_has_property(key)
        } else {
            n.labels.iter().any(|l| schema.node_has_property(l, key))
        };
        if !known {
            issues.push(SemanticIssue::UnknownProperty {
                var: n.var.clone().unwrap_or_default(),
                on: n.labels.join(":"),
                key: key.clone(),
            });
        }
    }
}

fn check_rel(
    left: &NodePattern,
    rel: &RelPattern,
    right: &NodePattern,
    schema: &GraphSchema,
    vars: &mut HashMap<String, VarKind>,
    issues: &mut Vec<SemanticIssue>,
) {
    for t in &rel.types {
        if !schema.has_edge_label(t) {
            issues.push(SemanticIssue::UnknownEdgeType { etype: t.clone() });
            continue;
        }
        // Multi-hop (variable-length) relationships connect endpoint
        // labels transitively; the single-edge signature check does
        // not apply.
        if rel.length.is_some() {
            continue;
        }
        // Direction check needs a label on both sides and a known sig.
        let (Some(ll), Some(rl)) = (left.labels.first(), right.labels.first()) else {
            continue;
        };
        let Some(sig) = schema.signature(t) else { continue };
        let (from, to) = match rel.direction {
            Direction::Out => (ll.as_str(), rl.as_str()),
            Direction::In => (rl.as_str(), ll.as_str()),
            Direction::Undirected => {
                if !sig.connects(ll, rl) && !sig.connects(rl, ll) {
                    issues.push(SemanticIssue::ImpossibleEndpoints {
                        etype: t.clone(),
                        from: ll.clone(),
                        to: rl.clone(),
                    });
                }
                continue;
            }
        };
        if sig.connects(from, to) {
            continue;
        }
        if sig.connects(to, from) {
            issues.push(SemanticIssue::WrongDirection {
                etype: t.clone(),
                from: from.to_owned(),
                to: to.to_owned(),
            });
        } else {
            issues.push(SemanticIssue::ImpossibleEndpoints {
                etype: t.clone(),
                from: from.to_owned(),
                to: to.to_owned(),
            });
        }
    }
    if let Some(v) = &rel.var {
        vars.entry(v.clone()).or_insert(VarKind::Rel(rel.types.clone()));
    }
    for (key, _) in &rel.props {
        let known = if rel.types.is_empty() {
            true // untyped relationship: cannot judge
        } else {
            rel.types.iter().any(|t| schema.edge_has_property(t, key))
        };
        if !known {
            issues.push(SemanticIssue::UnknownProperty {
                var: rel.var.clone().unwrap_or_default(),
                on: rel.types.join("|"),
                key: key.clone(),
            });
        }
    }
}

fn check_expr(
    expr: &Expr,
    schema: &GraphSchema,
    vars: &HashMap<String, VarKind>,
    issues: &mut Vec<SemanticIssue>,
) {
    let mut accesses = Vec::new();
    expr.property_accesses(&mut accesses);
    for (var, key) in accesses {
        match vars.get(&var) {
            Some(VarKind::Node(labels)) => {
                let known = if labels.is_empty() {
                    schema.any_node_has_property(&key)
                } else {
                    labels.iter().any(|l| schema.node_has_property(l, &key))
                };
                if !known {
                    issues.push(SemanticIssue::UnknownProperty {
                        var: var.clone(),
                        on: labels.join(":"),
                        key,
                    });
                }
            }
            Some(VarKind::Rel(types)) => {
                let known =
                    types.is_empty() || types.iter().any(|t| schema.edge_has_property(t, &key));
                if !known {
                    issues.push(SemanticIssue::UnknownProperty {
                        var: var.clone(),
                        on: types.join("|"),
                        key,
                    });
                }
            }
            Some(VarKind::Value) => {}
            None => issues.push(SemanticIssue::UnknownVariable { var }),
        }
    }
    // Bare variable references (outside property access).
    check_bare_vars(expr, vars, issues);
}

fn check_bare_vars(expr: &Expr, vars: &HashMap<String, VarKind>, issues: &mut Vec<SemanticIssue>) {
    match expr {
        Expr::Var(v) => {
            if !vars.contains_key(v) {
                issues.push(SemanticIssue::UnknownVariable { var: v.clone() });
            }
        }
        Expr::Prop { .. } => {} // handled via property_accesses
        Expr::Unary { expr, .. } => check_bare_vars(expr, vars, issues),
        Expr::Binary { lhs, rhs, .. } => {
            check_bare_vars(lhs, vars, issues);
            check_bare_vars(rhs, vars, issues);
        }
        Expr::IsNull { expr, .. } => check_bare_vars(expr, vars, issues),
        Expr::In { expr, list } => {
            check_bare_vars(expr, vars, issues);
            check_bare_vars(list, vars, issues);
        }
        Expr::FnCall { args, .. } => {
            for a in args {
                check_bare_vars(a, vars, issues);
            }
        }
        Expr::List(items) => {
            for i in items {
                check_bare_vars(i, vars, issues);
            }
        }
        Expr::ExistsProp(e) => check_bare_vars(e, vars, issues),
        Expr::Literal(_) => {}
    }
}

fn dedup(issues: Vec<SemanticIssue>) -> Vec<SemanticIssue> {
    let mut out: Vec<SemanticIssue> = Vec::with_capacity(issues.len());
    for i in issues {
        if !out.contains(&i) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use grm_pgraph::{props, PropertyGraph, Value};

    fn schema() -> GraphSchema {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], props([("id", Value::Int(1))]));
        let m = g.add_node(
            ["Match"],
            props([("id", Value::from("m1")), ("date", Value::from("2019-06-11"))]),
        );
        let p = g.add_node(["Person"], props([("name", Value::from("Ada"))]));
        g.add_edge(m, t, "IN_TOURNAMENT", Default::default());
        g.add_edge(p, m, "SCORED_GOAL", props([("minute", Value::Int(9))]));
        GraphSchema::infer(&g)
    }

    fn issues(src: &str) -> Vec<SemanticIssue> {
        analyze(&parse(src).unwrap(), &schema())
    }

    #[test]
    fn clean_query_has_no_issues() {
        assert!(issues("MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c")
            .is_empty());
    }

    #[test]
    fn detects_the_papers_direction_error() {
        let is = issues(
            "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) \
             WITH t.id AS tid, m.id AS mid, COUNT(*) AS count \
             WHERE count = 1 RETURN COUNT(*) AS support",
        );
        assert!(is.iter().any(SemanticIssue::is_direction), "{is:?}");
    }

    #[test]
    fn detects_hallucinated_property() {
        // §4.4: Mixtral invented `penaltyScore`/`score`/`minute` on Match.
        let is = issues(
            "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match) \
             WHERE m.penaltyScore > 0 RETURN COUNT(*) AS c",
        );
        assert!(is.iter().any(SemanticIssue::is_hallucination), "{is:?}");
    }

    #[test]
    fn detects_unknown_label_and_type() {
        let is = issues("MATCH (x:Ghost)-[:HAUNTS]->(m:Match) RETURN COUNT(*) AS c");
        assert!(is.contains(&SemanticIssue::UnknownNodeLabel { label: "Ghost".into() }));
        assert!(is.contains(&SemanticIssue::UnknownEdgeType { etype: "HAUNTS".into() }));
    }

    #[test]
    fn detects_impossible_endpoints() {
        let is = issues("MATCH (p:Person)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c");
        assert!(is.iter().any(|i| matches!(i, SemanticIssue::ImpossibleEndpoints { .. })));
    }

    #[test]
    fn with_aliases_are_not_hallucinations() {
        // `count` is a projected value; `count = 1` must not flag.
        let is = issues(
            "MATCH (m:Match) WITH m.id AS mid, COUNT(*) AS count \
             WHERE count = 1 RETURN COUNT(*) AS c",
        );
        assert!(is.is_empty(), "{is:?}");
    }

    #[test]
    fn unknown_variable_detected() {
        let is = issues("MATCH (m:Match) WHERE zz.id = 1 RETURN COUNT(*) AS c");
        assert!(is.contains(&SemanticIssue::UnknownVariable { var: "zz".into() }));
    }

    #[test]
    fn rel_property_hallucination() {
        let is = issues(
            "MATCH (p:Person)-[r:SCORED_GOAL]->(m:Match) WHERE r.speed > 1 \
             RETURN COUNT(*) AS c",
        );
        assert!(is.iter().any(SemanticIssue::is_hallucination));
    }

    #[test]
    fn inline_prop_map_checked() {
        let is = issues("MATCH (m:Match {venue: 'Lyon'}) RETURN COUNT(*) AS c");
        assert!(is.iter().any(SemanticIssue::is_hallucination));
    }

    #[test]
    fn undirected_rel_accepts_either_direction() {
        let is = issues("MATCH (t:Tournament)-[:IN_TOURNAMENT]-(m:Match) RETURN COUNT(*) AS c");
        assert!(is.is_empty(), "{is:?}");
    }

    #[test]
    fn unlabelled_var_property_checked_against_all_labels() {
        // `date` exists on Match, so unlabelled access passes …
        assert!(issues("MATCH (n) WHERE n.date IS NULL RETURN COUNT(*) AS c").is_empty());
        // … while a fully unknown key flags.
        let is = issues("MATCH (n) WHERE n.nope IS NULL RETURN COUNT(*) AS c");
        assert!(is.iter().any(SemanticIssue::is_hallucination));
    }
}
