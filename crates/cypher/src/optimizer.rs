//! Cost-based query rewriting — the optimizing layer between the
//! parser and the executor.
//!
//! Four rewrite rules, each proven result-preserving against the
//! executor's semantics (see DESIGN.md §11):
//!
//! 1. **Equality pushdown** — top-level `WHERE var.key = <literal>`
//!    conjuncts move into the pattern element that binds `var`, so
//!    candidates are rejected at bind time instead of surviving to a
//!    post-expansion filter. Safe for `OPTIONAL MATCH` because the
//!    executor applies `WHERE` per candidate *before* deciding
//!    whether the clause matched at all — pushdown rejects exactly
//!    the same candidates at an earlier operator.
//! 2. **Label reordering** — multi-label node patterns put their most
//!    selective label first; the scan picks `labels.first()` for its
//!    index and `bind_node` re-checks every label, so only the
//!    candidate count changes.
//! 3. **Pattern ordering** — within one `MATCH`, patterns run
//!    cheapest-anchor-first (greedy on [`scan_cost`] under the
//!    statically known bound variables). Applied only to queries
//!    whose every projection boundary is `count`-aggregate-only:
//!    reordering preserves the *set* of complete instantiations
//!    (edge uniqueness spans the whole clause) but may permute row
//!    order, and `count` is the aggregate whose result is provably
//!    order-independent.
//! 4. **Path pre-reversal** — the executor's per-row "start at the
//!    cheaper end" decision ([`should_reverse`]) is hoisted to plan
//!    time. The runtime check keys only on row *membership* of the
//!    endpoint variables, which is static per clause position, so
//!    hoisting is exact; the strict `<` makes pre-reversal idempotent
//!    when the executor re-checks at runtime.
//!
//! The cost model is [`grm_pgraph::Cardinality`]: exact counts from
//! the label indexes, so every decision is deterministic.

use std::collections::HashSet;

use grm_pgraph::{Cardinality, PropertyGraph};

use crate::ast::{BinOp, Clause, Expr, NodePattern, PathPattern, ProjItem, Query};

/// Tally of rewrites the optimizer applied to one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `WHERE` equality conjuncts pushed into pattern property maps.
    pub predicates_pushed: u64,
    /// Node patterns whose label list was re-anchored on the most
    /// selective label.
    pub labels_reordered: u64,
    /// `MATCH` clauses whose patterns were re-sequenced
    /// cheapest-anchor-first.
    pub patterns_reordered: u64,
    /// Paths rewritten end-to-start because the far end was cheaper.
    pub paths_prereversed: u64,
}

impl RewriteStats {
    /// Total rewrites applied.
    pub fn total(&self) -> u64 {
        self.predicates_pushed
            + self.labels_reordered
            + self.patterns_reordered
            + self.paths_prereversed
    }

    /// Accumulates another tally into this one.
    pub fn absorb(&mut self, other: &RewriteStats) {
        self.predicates_pushed += other.predicates_pushed;
        self.labels_reordered += other.labels_reordered;
        self.patterns_reordered += other.patterns_reordered;
        self.paths_prereversed += other.paths_prereversed;
    }
}

/// Estimated candidate count for enumerating `pattern`: a bound
/// variable beats any scan; otherwise the smallest label index,
/// falling back to a full node scan. Shared by the plan-time rewrite
/// pass and the executor's runtime ordering check so profiled and
/// unprofiled execution make one and the same decision.
pub(crate) fn scan_cost(
    graph: &PropertyGraph,
    is_bound: &dyn Fn(&str) -> bool,
    pattern: &NodePattern,
) -> usize {
    if let Some(var) = &pattern.var {
        if is_bound(var) {
            return 1;
        }
    }
    Cardinality::of(graph).node_scan(&pattern.labels)
}

/// Should `pattern` be matched end-to-start? True exactly when the
/// final node is strictly cheaper to enumerate than the first. The
/// strict inequality makes the decision idempotent: re-asking about
/// an already-reversed path always answers no.
pub(crate) fn should_reverse(
    graph: &PropertyGraph,
    is_bound: &dyn Fn(&str) -> bool,
    pattern: &PathPattern,
) -> bool {
    let Some((_, end)) = pattern.steps.last() else {
        return false;
    };
    scan_cost(graph, is_bound, end) < scan_cost(graph, is_bound, &pattern.start)
}

/// Rewrites `query` against the statistics of `graph`, returning the
/// optimized query and a tally of what changed. The rewritten query
/// produces the identical [`crate::ResultSet`] (rows and ordering) as
/// the original.
pub fn optimize(query: &Query, graph: &PropertyGraph) -> (Query, RewriteStats) {
    let mut q = query.clone();
    let mut stats = RewriteStats::default();
    let reorderable = order_insensitive(&q);
    let mut bound: HashSet<String> = HashSet::new();
    for clause in &mut q.clauses {
        match clause {
            Clause::Match { patterns, where_clause, .. } => {
                push_equality_predicates(patterns, where_clause, &mut stats);
                for p in patterns.iter_mut() {
                    reorder_labels(p, graph, &mut stats);
                }
                if reorderable && patterns.len() > 1 {
                    reorder_patterns(patterns, graph, &bound, &mut stats);
                }
                for p in patterns.iter_mut() {
                    let is_bound = |v: &str| bound.contains(v);
                    if should_reverse(graph, &is_bound, p) {
                        *p = p.reversed();
                        stats.paths_prereversed += 1;
                    }
                    collect_path_vars(p, &mut bound);
                }
            }
            Clause::With { items, .. } => {
                bound = items.iter().map(|i| i.name()).collect();
            }
            Clause::Unwind { var, .. } => {
                bound.insert(var.clone());
            }
        }
    }
    (q, stats)
}

/// True when every projection boundary (each `WITH` and the `RETURN`)
/// consists solely of `count` aggregates — the shape of every rule
/// metric query. Such queries collapse to a single row whose value is
/// independent of row order, so pattern reordering is observable only
/// through db-hits.
fn order_insensitive(q: &Query) -> bool {
    let boundary_ok = |items: &[ProjItem]| {
        !items.is_empty() && items.iter().all(|i| count_only_aggregate(&i.expr))
    };
    q.clauses.iter().all(|c| match c {
        Clause::With { items, .. } => boundary_ok(items),
        Clause::Match { .. } | Clause::Unwind { .. } => true,
    }) && boundary_ok(&q.ret.items)
}

/// Is `e` an aggregate expression built only from `count` calls?
/// (`sum`/`avg` fold floats in row order, `min`/`max` compare
/// possibly-incomparable values in row order, `collect` *is* the row
/// order — only `count` is unconditionally order-free.)
fn count_only_aggregate(e: &Expr) -> bool {
    fn non_count_aggregate(e: &Expr) -> bool {
        match e {
            Expr::FnCall { name, args, .. } => {
                (crate::ast::is_aggregate_fn(name) && name != "count")
                    || args.iter().any(non_count_aggregate)
            }
            Expr::Literal(_) | Expr::Var(_) => false,
            Expr::Prop { base, .. } => non_count_aggregate(base),
            Expr::Unary { expr, .. } => non_count_aggregate(expr),
            Expr::Binary { lhs, rhs, .. } => non_count_aggregate(lhs) || non_count_aggregate(rhs),
            Expr::IsNull { expr, .. } => non_count_aggregate(expr),
            Expr::In { expr, list } => non_count_aggregate(expr) || non_count_aggregate(list),
            Expr::List(items) => items.iter().any(non_count_aggregate),
            Expr::ExistsProp(inner) => non_count_aggregate(inner),
        }
    }
    e.contains_aggregate() && !non_count_aggregate(e)
}

/// Splits the `WHERE` expression into top-level `AND` conjuncts and
/// moves every `var.key = <literal>` (or mirrored) conjunct into the
/// property map of the pattern element binding `var`. Remaining
/// conjuncts are rebuilt left-associatively in their original order.
fn push_equality_predicates(
    patterns: &mut [PathPattern],
    where_clause: &mut Option<Expr>,
    stats: &mut RewriteStats,
) {
    let Some(expr) = where_clause.take() else {
        return;
    };
    let mut conjuncts = Vec::new();
    split_and(expr, &mut conjuncts);
    let mut kept = Vec::new();
    for c in conjuncts {
        if try_push(patterns, &c) {
            stats.predicates_pushed += 1;
        } else {
            kept.push(c);
        }
    }
    *where_clause = rebuild_and(kept);
}

fn split_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            split_and(*lhs, out);
            split_and(*rhs, out);
        }
        other => out.push(other),
    }
}

fn rebuild_and(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, e| Expr::binary(BinOp::And, acc, e)))
}

/// If `conjunct` is `var.key = <literal>` and `var` is introduced by
/// one of `patterns`, appends `(key, literal)` to that element's
/// property map and reports success. The executor's bind-time check
/// (`prop.cypher_eq(&want) != Some(true)` rejects) filters exactly
/// the rows three-valued `WHERE` would drop.
fn try_push(patterns: &mut [PathPattern], conjunct: &Expr) -> bool {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = conjunct else {
        return false;
    };
    let (var, key, lit) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Prop { base, key }, lit @ Expr::Literal(_)) => match base.as_ref() {
            Expr::Var(v) => (v, key, lit),
            _ => return false,
        },
        (lit @ Expr::Literal(_), Expr::Prop { base, key }) => match base.as_ref() {
            Expr::Var(v) => (v, key, lit),
            _ => return false,
        },
        _ => return false,
    };
    for p in patterns {
        if p.start.var.as_deref() == Some(var) {
            p.start.props.push((key.clone(), lit.clone()));
            return true;
        }
        for (rel, node) in &mut p.steps {
            // Variable-length relationships cannot carry a var, so a
            // rel-var push never lands on one.
            if rel.var.as_deref() == Some(var) && rel.length.is_none() {
                rel.props.push((key.clone(), lit.clone()));
                return true;
            }
            if node.var.as_deref() == Some(var) {
                node.props.push((key.clone(), lit.clone()));
                return true;
            }
        }
    }
    false
}

/// Moves each multi-label node pattern's most selective label to the
/// front: the scan operator indexes on `labels.first()` and the
/// binder re-checks the full label set, so the match is unchanged —
/// only the candidate stream shrinks.
fn reorder_labels(p: &mut PathPattern, graph: &PropertyGraph, stats: &mut RewriteStats) {
    let card = Cardinality::of(graph);
    let mut anchor = |n: &mut NodePattern| {
        if n.labels.len() > 1 {
            if let Some(i) = card.most_selective_label(&n.labels) {
                if i != 0 {
                    let best = n.labels.remove(i);
                    n.labels.insert(0, best);
                    stats.labels_reordered += 1;
                }
            }
        }
    };
    anchor(&mut p.start);
    for (_, n) in &mut p.steps {
        anchor(n);
    }
}

/// Greedy cheapest-anchor-first ordering of a multi-pattern `MATCH`:
/// repeatedly pick the pattern whose cheaper end costs least under
/// the variables bound so far, then treat its variables as bound.
/// Ties break on original position, so the order is deterministic.
fn reorder_patterns(
    patterns: &mut Vec<PathPattern>,
    graph: &PropertyGraph,
    bound: &HashSet<String>,
    stats: &mut RewriteStats,
) {
    let mut remaining: Vec<(usize, PathPattern)> =
        std::mem::take(patterns).into_iter().enumerate().collect();
    let mut local = bound.clone();
    let mut ordered = Vec::with_capacity(remaining.len());
    let mut moved = false;
    while !remaining.is_empty() {
        let is_bound = |v: &str| local.contains(v);
        let best = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, (orig_idx, p))| {
                let start = scan_cost(graph, &is_bound, &p.start);
                let end = p
                    .steps
                    .last()
                    .map(|(_, n)| scan_cost(graph, &is_bound, n))
                    .unwrap_or(usize::MAX);
                (start.min(end), *orig_idx)
            })
            .map(|(i, _)| i)
            .expect("remaining is non-empty");
        let (orig_idx, p) = remaining.remove(best);
        if orig_idx != ordered.len() {
            moved = true;
        }
        collect_path_vars(&p, &mut local);
        ordered.push(p);
    }
    if moved {
        stats.patterns_reordered += 1;
    }
    *patterns = ordered;
}

fn collect_path_vars(p: &PathPattern, out: &mut HashSet<String>) {
    if let Some(v) = &p.start.var {
        out.insert(v.clone());
    }
    for (rel, node) in &p.steps {
        if let Some(v) = &rel.var {
            out.insert(v.clone());
        }
        if let Some(v) = &node.var {
            out.insert(v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use grm_pgraph::PropertyMap;

    /// 1 Tournament, 3 Teams, 6 Players; Players are also "Person".
    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], PropertyMap::new());
        for _ in 0..3 {
            let team = g.add_node(["Team"], PropertyMap::new());
            g.add_edge(team, t, "IN_TOURNAMENT", PropertyMap::new());
            for _ in 0..2 {
                let p = g.add_node(["Person", "Player"], PropertyMap::new());
                g.add_edge(p, team, "PLAYS_FOR", PropertyMap::new());
            }
        }
        g
    }

    fn opt(src: &str) -> (Query, RewriteStats) {
        optimize(&parse(src).unwrap(), &graph())
    }

    #[test]
    fn pushes_equality_conjunct_into_pattern() {
        let (q, stats) = opt("MATCH (n:Team) WHERE n.name = 'USA' AND n.rank > 1 RETURN n");
        assert_eq!(stats.predicates_pushed, 1);
        let Clause::Match { patterns, where_clause, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert_eq!(patterns[0].start.props.len(), 1);
        assert_eq!(patterns[0].start.props[0].0, "name");
        // The non-equality conjunct stays behind.
        assert_eq!(where_clause.as_ref().unwrap().to_string(), "n.rank > 1");
    }

    #[test]
    fn fully_pushed_where_disappears() {
        let (q, stats) = opt("MATCH (n:Team) WHERE n.name = 'USA' RETURN n");
        assert_eq!(stats.predicates_pushed, 1);
        let Clause::Match { where_clause, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert!(where_clause.is_none());
    }

    #[test]
    fn unpushable_predicates_are_kept_verbatim() {
        let src = "MATCH (n:Team) WHERE n.a = n.b OR n.c = 1 RETURN n";
        let (q, stats) = opt(src);
        assert_eq!(stats.predicates_pushed, 0);
        let Clause::Match { where_clause, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert!(where_clause.is_some());
    }

    #[test]
    fn reorders_labels_most_selective_first() {
        let (q, stats) = opt("MATCH (n:Person:Tournament) RETURN n");
        assert_eq!(stats.labels_reordered, 1);
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert_eq!(patterns[0].start.labels, vec!["Tournament", "Person"]);
    }

    #[test]
    fn prereverses_towards_selective_end() {
        let (q, stats) = opt("MATCH (p:Person)-[:PLAYS_FOR]->(t:Team) RETURN COUNT(*) AS c");
        assert_eq!(stats.paths_prereversed, 1);
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert_eq!(patterns[0].start.labels, vec!["Team"]);
    }

    #[test]
    fn prereversal_is_idempotent() {
        let (q1, s1) = opt("MATCH (p:Person)-[:PLAYS_FOR]->(t:Team) RETURN COUNT(*) AS c");
        assert_eq!(s1.paths_prereversed, 1);
        let (q2, s2) = optimize(&q1, &graph());
        assert_eq!(s2.paths_prereversed, 0);
        assert_eq!(q1, q2);
    }

    #[test]
    fn count_only_queries_reorder_patterns() {
        let (q, stats) =
            opt("MATCH (a:Person)-[:PLAYS_FOR]->(b), (c:Tournament) RETURN COUNT(*) AS c");
        assert_eq!(stats.patterns_reordered, 1);
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        // The single-node Tournament scan (1 candidate) anchors first.
        assert_eq!(patterns[0].start.labels, vec!["Tournament"]);
    }

    #[test]
    fn row_returning_queries_keep_pattern_order() {
        let (q, stats) = opt("MATCH (a:Person)-[:PLAYS_FOR]->(b), (c:Tournament) RETURN a");
        assert_eq!(stats.patterns_reordered, 0);
        let Clause::Match { patterns, .. } = &q.clauses[0] else {
            panic!("expected MATCH");
        };
        assert_eq!(patterns[0].start.labels, vec!["Person"]);
    }

    #[test]
    fn collect_and_sum_disable_reordering() {
        for ret in ["COLLECT(a.name) AS xs", "SUM(a.goals) AS g"] {
            let src = format!("MATCH (a:Person)-[:PLAYS_FOR]->(b), (c:Tournament) RETURN {ret}");
            let (_, stats) = opt(&src);
            assert_eq!(stats.patterns_reordered, 0, "{ret} must not reorder");
        }
    }

    #[test]
    fn bound_variables_pin_the_anchor() {
        // `t` is bound by the first clause, so the second path's start
        // (cost 1) is already the cheaper end — no reversal.
        let (q, stats) =
            opt("MATCH (t:Tournament) MATCH (t)<-[:IN_TOURNAMENT]-(m:Team) RETURN COUNT(*) AS c");
        assert_eq!(stats.paths_prereversed, 0);
        let Clause::Match { patterns, .. } = &q.clauses[1] else {
            panic!("expected MATCH");
        };
        assert_eq!(patterns[0].start.var.as_deref(), Some("t"));
        let _ = q;
    }

    #[test]
    fn optional_match_pushdown_keeps_clause_optional() {
        let (q, stats) =
            opt("MATCH (t:Team) OPTIONAL MATCH (t)<-[r:PLAYS_FOR]-(p) WHERE p.x = 1 RETURN t");
        assert_eq!(stats.predicates_pushed, 1);
        let Clause::Match { optional, where_clause, .. } = &q.clauses[1] else {
            panic!("expected OPTIONAL MATCH");
        };
        assert!(*optional);
        assert!(where_clause.is_none());
    }
}
