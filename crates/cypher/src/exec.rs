//! Query execution: pattern matching, projection/aggregation, and
//! result assembly.
//!
//! The planner is deliberately simple — label-indexed candidate scans
//! with backtracking extension — because the paper's generated rules
//! are short linear patterns over graphs of ≤ 43k nodes. Cypher
//! semantics that matter to the study are honoured:
//!
//! * **relationship uniqueness** within one `MATCH` clause (no edge is
//!   used twice in a single pattern instantiation);
//! * **grouping** keys are the non-aggregate projection items;
//! * `OPTIONAL MATCH` emits a null-extended row on no match;
//! * `WHERE` filters with three-valued logic (`NULL` drops the row).

use std::collections::{HashMap, HashSet};

use grm_pgraph::{EdgeId, NodeId, PropertyGraph, Value};

use crate::ast::*;
use crate::error::{CypherError, Result};
use crate::eval::{Binding, EvalCtx, Row};
use crate::parser::parse;
use crate::profile::{MatchProf, PathProf, PatternOps, Profiler, QueryProfile};

/// A fully materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single integer cell of a 1×1 result (the common shape of
    /// `RETURN COUNT(*) AS support`), if that is what this is.
    pub fn single_int(&self) -> Option<i64> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            match &self.rows[0][0] {
                Value::Int(i) => Some(*i),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// Parses and executes `src` against `graph`.
pub fn execute(graph: &PropertyGraph, src: &str) -> Result<ResultSet> {
    let query = parse(src)?;
    execute_query(graph, &query)
}

/// [`execute`] with query/row counters recorded on `scope`. No span
/// is opened — metric evaluation runs thousands of queries, and one
/// span each would dwarf the journal; the enclosing stage span owns
/// the time. The per-query row count feeds the
/// `cypher_rows_per_query` histogram, whose tail percentiles expose
/// rules that scan far more than the typical pattern.
pub fn execute_traced(
    graph: &PropertyGraph,
    src: &str,
    scope: &grm_obs::Scope,
) -> Result<ResultSet> {
    scope.add(grm_obs::Counter::CypherQueriesExecuted, 1);
    let result = execute(graph, src);
    if let Ok(rs) = &result {
        scope.add(grm_obs::Counter::CypherRowsMatched, rs.len() as u64);
        scope.observe(grm_obs::Histo::CypherRowsPerQuery, rs.len() as f64);
    }
    result
}

/// Parses and executes `src` with operator-level profiling — this
/// engine's `PROFILE`. Returns the result set together with the
/// recorded plan tree ([`QueryProfile`]); the un-profiled entry
/// points ([`execute`], [`execute_query`]) do zero accounting.
pub fn execute_profiled(graph: &PropertyGraph, src: &str) -> Result<(ResultSet, QueryProfile)> {
    let query = parse(src)?;
    let prof = Profiler::new(&query);
    let result = execute_query_inner(graph, &query, Some(&prof))?;
    Ok((result, prof.finish(src)))
}

/// Parses `src`, runs the optimizer rewrite pass against `graph`'s
/// statistics, and executes the rewritten query. Result-identical to
/// [`execute`] — the rewrite rules are proven order-preserving (see
/// `optimizer`) — but typically far cheaper in db-hits. For repeated
/// queries prefer a [`crate::BatchSession`], which also caches the
/// compiled plan and memoizes results.
pub fn execute_optimized(graph: &PropertyGraph, src: &str) -> Result<ResultSet> {
    let query = parse(src)?;
    let (query, _) = crate::optimizer::optimize(&query, graph);
    execute_query_inner(graph, &query, None)
}

/// [`execute_optimized`] with operator-level profiling; also returns
/// the rewrite tally so callers can report what the optimizer did.
pub fn execute_optimized_profiled(
    graph: &PropertyGraph,
    src: &str,
) -> Result<(ResultSet, QueryProfile, crate::optimizer::RewriteStats)> {
    let query = parse(src)?;
    let (query, rewrites) = crate::optimizer::optimize(&query, graph);
    let prof = Profiler::new(&query);
    let result = execute_query_inner(graph, &query, Some(&prof))?;
    Ok((result, prof.finish(src), rewrites))
}

/// Executes an already-parsed query.
pub fn execute_query(graph: &PropertyGraph, query: &Query) -> Result<ResultSet> {
    execute_query_inner(graph, query, None)
}

pub(crate) fn execute_query_inner(
    graph: &PropertyGraph,
    query: &Query,
    prof: Option<&Profiler>,
) -> Result<ResultSet> {
    let ctx = EvalCtx::with_profiler(graph, prof);
    let mut rows: Vec<Row> = vec![Row::new()];
    for (ci, clause) in query.clauses.iter().enumerate() {
        rows = match clause {
            Clause::Match { optional, patterns, where_clause } => {
                let mp = prof.map(|p| p.match_prof(ci));
                match_clause(&ctx, rows, patterns, where_clause.as_ref(), *optional, mp)?
            }
            Clause::With { distinct, items, where_clause } => {
                let wp = prof.map(|p| p.with_prof(ci));
                let projected = {
                    let _g = wp.map(|w| w.p.enter(w.projection));
                    if let Some(w) = wp {
                        w.p.call();
                        w.p.rows_in(rows.len() as u64);
                    }
                    let out = project(&ctx, rows, items, /*require_alias=*/ true)?;
                    if let Some(w) = wp {
                        w.p.rows(out.len() as u64);
                    }
                    out
                };
                let filtered = match where_clause {
                    Some(w) => {
                        let _g =
                            wp.map(|w| w.p.enter(w.filter.expect("Filter slot for WITH WHERE")));
                        if let Some(w) = wp {
                            w.p.call();
                            w.p.rows_in(projected.len() as u64);
                        }
                        let mut keep = Vec::with_capacity(projected.len());
                        for row in projected {
                            if ctx.eval_filter(w, &row)? {
                                keep.push(row);
                            }
                        }
                        if let Some(w) = wp {
                            w.p.rows(keep.len() as u64);
                        }
                        keep
                    }
                    None => projected,
                };
                if *distinct {
                    let _g =
                        wp.map(|w| w.p.enter(w.distinct.expect("Distinct slot for WITH DISTINCT")));
                    if let Some(w) = wp {
                        w.p.call();
                        w.p.rows_in(filtered.len() as u64);
                    }
                    let out = distinct_rows(&ctx, filtered, items)?;
                    if let Some(w) = wp {
                        w.p.rows(out.len() as u64);
                    }
                    out
                } else {
                    filtered
                }
            }
            Clause::Unwind { expr, var } => {
                let _g = prof.map(|p| p.enter(p.unwind_prof(ci)));
                if let Some(p) = prof {
                    p.call();
                    p.rows_in(rows.len() as u64);
                }
                let mut out = Vec::new();
                for row in rows {
                    match ctx.eval(expr, &row)? {
                        Value::Null => {}
                        Value::List(items) => {
                            for item in items {
                                let mut r = row.clone();
                                r.insert(var.clone(), Binding::Val(item));
                                out.push(r);
                            }
                        }
                        other => {
                            return Err(CypherError::runtime(format!(
                                "UNWIND expects a list, got {}",
                                other.type_name()
                            )))
                        }
                    }
                }
                if let Some(p) = prof {
                    p.rows(out.len() as u64);
                }
                out
            }
        };
    }

    // RETURN projection.
    let projected = {
        let _g = prof.map(|p| p.enter(p.ret_ops().projection));
        if let Some(p) = prof {
            p.call();
            p.rows_in(rows.len() as u64);
        }
        let out = project(&ctx, rows, &query.ret.items, /*require_alias=*/ false)?;
        if let Some(p) = prof {
            p.rows(out.len() as u64);
        }
        out
    };
    let mut projected = if query.ret.distinct {
        let _g = prof.map(|p| p.enter(p.ret_ops().distinct.expect("Distinct slot for RETURN")));
        if let Some(p) = prof {
            p.call();
            p.rows_in(projected.len() as u64);
        }
        let out = distinct_rows(&ctx, projected, &query.ret.items)?;
        if let Some(p) = prof {
            p.rows(out.len() as u64);
        }
        out
    } else {
        projected
    };

    // ORDER BY over the projected rows (aliases are visible).
    if !query.ret.order_by.is_empty() {
        let _g = prof.map(|p| p.enter(p.ret_ops().sort.expect("Sort slot for ORDER BY")));
        if let Some(p) = prof {
            p.call();
            p.rows_in(projected.len() as u64);
            p.rows(projected.len() as u64);
        }
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(projected.len());
        for row in projected {
            let mut keys = Vec::with_capacity(query.ret.order_by.len());
            for item in &query.ret.order_by {
                keys.push(ctx.eval(&item.expr, &row)?);
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, item) in query.ret.order_by.iter().enumerate() {
                let ord = a[i]
                    .cypher_cmp(&b[i])
                    .unwrap_or_else(|| a[i].group_key().cmp(&b[i].group_key()));
                let ord = if item.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, r)| r).collect();
    }

    let skip = query.ret.skip.unwrap_or(0) as usize;
    let limit = query.ret.limit.map(|l| l as usize).unwrap_or(usize::MAX);
    // The profiled path materialises the window to count its rows
    // (and neutralises the bounds so they are not applied twice); the
    // plain path keeps the original lazy iterator.
    let (projected, skip, limit) = match prof.and_then(|p| p.ret_ops().window.map(|op| (p, op))) {
        Some((p, op)) => {
            let _g = p.enter(op);
            p.call();
            p.rows_in(projected.len() as u64);
            let out: Vec<Row> = projected.into_iter().skip(skip).take(limit).collect();
            p.rows(out.len() as u64);
            (out, 0, usize::MAX)
        }
        None => (projected, skip, limit),
    };
    let window = projected.into_iter().skip(skip).take(limit);

    let columns: Vec<String> = query.ret.items.iter().map(ProjItem::name).collect();
    let mut out_rows = Vec::new();
    for row in window {
        let mut cells = Vec::with_capacity(columns.len());
        for name in &columns {
            let cell = row.get(name).map(|b| b.to_value(graph)).unwrap_or(Value::Null);
            cells.push(cell);
        }
        out_rows.push(cells);
    }
    if let Some(p) = prof {
        p.call();
        p.rows_in(out_rows.len() as u64);
        p.rows(out_rows.len() as u64);
    }
    Ok(ResultSet { columns, rows: out_rows })
}

// ---------------------------------------------------------------------------
// MATCH
// ---------------------------------------------------------------------------

fn match_clause(
    ctx: &EvalCtx<'_>,
    rows: Vec<Row>,
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    optional: bool,
    mp: Option<MatchProf<'_>>,
) -> Result<Vec<Row>> {
    // Variables introduced by this clause (for OPTIONAL null-padding).
    let mut new_vars: Vec<String> = Vec::new();
    for p in patterns {
        if let Some(v) = &p.start.var {
            new_vars.push(v.clone());
        }
        for (rel, node) in &p.steps {
            if let Some(v) = &rel.var {
                new_vars.push(v.clone());
            }
            if let Some(v) = &node.var {
                new_vars.push(v.clone());
            }
        }
    }

    let mut out = Vec::new();
    for row in rows {
        let mut matched_any = false;
        let mut used = HashSet::new();
        let produced = expand_patterns(ctx, &row, &mut used, patterns, 0, mp)?;
        for candidate in produced {
            let keep = match where_clause {
                Some(w) => {
                    let _g = mp.map(|m| m.p.enter(m.filter.expect("Filter slot for MATCH WHERE")));
                    if let Some(m) = mp {
                        m.p.call();
                        m.p.rows_in(1);
                    }
                    let keep = ctx.eval_filter(w, &candidate)?;
                    if let (true, Some(m)) = (keep, mp) {
                        m.p.rows(1);
                    }
                    keep
                }
                None => true,
            };
            if keep {
                matched_any = true;
                out.push(candidate);
            }
        }
        if !matched_any && optional {
            let mut padded = row.clone();
            for v in &new_vars {
                padded.entry(v.clone()).or_insert(Binding::Val(Value::Null));
            }
            out.push(padded);
        }
    }
    Ok(out)
}

/// Expands `patterns[idx..]` against `row`, honouring edge uniqueness
/// across the whole clause via `used`.
fn expand_patterns(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &mut HashSet<EdgeId>,
    patterns: &[PathPattern],
    idx: usize,
    mp: Option<MatchProf<'_>>,
) -> Result<Vec<Row>> {
    if idx == patterns.len() {
        return Ok(vec![row.clone()]);
    }
    let mut out = Vec::new();
    let firsts = match_path(ctx, row, used, &patterns[idx], mp.map(|m| (m.p, &m.patterns[idx])))?;
    for (r, edges) in firsts {
        for e in &edges {
            used.insert(*e);
        }
        out.extend(expand_patterns(ctx, &r, used, patterns, idx + 1, mp)?);
        for e in &edges {
            used.remove(e);
        }
    }
    Ok(out)
}

/// Matches one linear path pattern; returns each produced row together
/// with the set of edges that instantiation consumed.
fn match_path(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<EdgeId>,
    pattern: &PathPattern,
    ops: Option<(&Profiler, &PatternOps)>,
) -> Result<Vec<(Row, Vec<EdgeId>)>> {
    // Begin at whichever end of the path is cheaper to enumerate —
    // a bound variable beats a label scan beats a full scan. This
    // keeps `OPTIONAL MATCH (s:User)-[:POSTS]->(t)` (t bound) linear
    // on the Twitter-sized graphs. The decision function is shared
    // with the plan-time rewrite pass (`optimizer::should_reverse`);
    // on a pre-reversed plan its strict `<` answers no, so the two
    // layers never fight.
    let reversed;
    let mut was_reversed = false;
    let is_bound = |v: &str| row.contains_key(v);
    let pattern = if crate::optimizer::should_reverse(ctx.graph, &is_bound, pattern) {
        was_reversed = true;
        reversed = pattern.reversed();
        &reversed
    } else {
        pattern
    };
    let pp = ops.map(|(p, o)| PathProf::new(p, o, was_reversed));
    let mut results = Vec::new();
    let starts = node_candidates(ctx, row, &pattern.start, pp)?;
    for (start_row, start_node) in starts {
        walk_steps(
            ctx,
            &start_row,
            used,
            start_node,
            &pattern.steps,
            Vec::new(),
            &mut results,
            pp,
        )?;
    }
    Ok(results)
}

#[allow(clippy::too_many_arguments)]
fn walk_steps(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<EdgeId>,
    current: NodeId,
    steps: &[(RelPattern, NodePattern)],
    consumed: Vec<EdgeId>,
    results: &mut Vec<(Row, Vec<EdgeId>)>,
    pp: Option<PathProf<'_>>,
) -> Result<()> {
    let Some(((rel, node), rest)) = steps.split_first() else {
        results.push((row.clone(), consumed));
        return Ok(());
    };
    let _g = pp.map(|pp| pp.p.enter(pp.step_op(steps.len())));
    if let Some(pp) = pp {
        pp.p.call();
        pp.p.rows_in(1);
    }
    // Variable-length relationships expand through a bounded DFS.
    if let Some((min, max)) = rel.length {
        if rel.var.is_some() {
            return Err(CypherError::semantic(
                "variable binding on variable-length relationships is not supported",
            ));
        }
        let max = max.unwrap_or(MAX_VAR_HOPS).min(MAX_VAR_HOPS);
        return var_length_walk(
            ctx, row, used, current, rel, node, rest, consumed, 0, min, max, results, pp,
        );
    }
    let g = ctx.graph;

    // Candidate (edge, neighbour) pairs respecting direction.
    let candidates: Vec<(EdgeId, NodeId)> = match rel.direction {
        Direction::Out => g.out_edges(current).map(|e| (e.id, e.dst)).collect(),
        Direction::In => g.in_edges(current).map(|e| (e.id, e.src)).collect(),
        Direction::Undirected => {
            let mut v: Vec<(EdgeId, NodeId)> =
                g.out_edges(current).map(|e| (e.id, e.dst)).collect();
            // Self-loops already appear in the out list; skip them on
            // the in side so each edge matches once.
            v.extend(g.in_edges(current).filter(|e| e.src != e.dst).map(|e| (e.id, e.src)));
            v
        }
    };
    if let Some(pp) = pp {
        pp.p.hit_edges(candidates.len() as u64);
    }

    for (edge_id, neighbour) in candidates {
        if used.contains(&edge_id) || consumed.contains(&edge_id) {
            continue;
        }
        let edge = g.edge(edge_id);
        if !rel.types.is_empty() && !rel.types.contains(&edge.label) {
            continue;
        }
        // Property map on the relationship.
        let mut props_ok = true;
        for (k, expr) in &rel.props {
            let want = ctx.eval(expr, row)?;
            ctx.record_prop_read();
            if edge.prop(k).cypher_eq(&want) != Some(true) {
                props_ok = false;
                break;
            }
        }
        if !props_ok {
            continue;
        }
        // Relationship variable binding / consistency.
        let mut next_row = row.clone();
        if let Some(var) = &rel.var {
            match next_row.get(var) {
                Some(Binding::Edge(bound)) if *bound == edge_id => {}
                Some(Binding::Edge(_)) => continue,
                Some(_) => continue,
                None => {
                    next_row.insert(var.clone(), Binding::Edge(edge_id));
                }
            }
        }
        // Target node check / binding.
        let Some(next_row) = bind_node(ctx, &next_row, node, neighbour)? else {
            continue;
        };
        if let Some(pp) = pp {
            pp.p.rows(1);
        }
        let mut consumed_next = consumed.clone();
        consumed_next.push(edge_id);
        walk_steps(ctx, &next_row, used, neighbour, rest, consumed_next, results, pp)?;
    }
    Ok(())
}

/// Hop ceiling for unbounded variable-length patterns (`*`, `*2..`).
/// Neo4j has no hard limit but warns above similar depths; the rule
/// queries this engine serves never need longer chains.
const MAX_VAR_HOPS: u32 = 16;

/// DFS expansion of a variable-length relationship: every
/// edge-distinct path of `min..=max` hops whose edges satisfy the
/// type/property filters, ending at a node matching `node`.
#[allow(clippy::too_many_arguments)]
fn var_length_walk(
    ctx: &EvalCtx<'_>,
    row: &Row,
    used: &HashSet<EdgeId>,
    current: NodeId,
    rel: &RelPattern,
    node: &NodePattern,
    rest: &[(RelPattern, NodePattern)],
    consumed: Vec<EdgeId>,
    depth: u32,
    min: u32,
    max: u32,
    results: &mut Vec<(Row, Vec<EdgeId>)>,
    pp: Option<PathProf<'_>>,
) -> Result<()> {
    let g = ctx.graph;
    // Enough hops taken: the current node may close this step.
    if depth >= min {
        if let Some(next_row) = bind_node(ctx, row, node, current)? {
            if let Some(pp) = pp {
                pp.p.rows(1);
            }
            walk_steps(ctx, &next_row, used, current, rest, consumed.clone(), results, pp)?;
        }
    }
    if depth >= max {
        return Ok(());
    }
    let candidates: Vec<(EdgeId, NodeId)> = match rel.direction {
        Direction::Out => g.out_edges(current).map(|e| (e.id, e.dst)).collect(),
        Direction::In => g.in_edges(current).map(|e| (e.id, e.src)).collect(),
        Direction::Undirected => {
            let mut v: Vec<(EdgeId, NodeId)> =
                g.out_edges(current).map(|e| (e.id, e.dst)).collect();
            v.extend(g.in_edges(current).filter(|e| e.src != e.dst).map(|e| (e.id, e.src)));
            v
        }
    };
    if let Some(pp) = pp {
        pp.p.hit_edges(candidates.len() as u64);
    }
    for (edge_id, neighbour) in candidates {
        if used.contains(&edge_id) || consumed.contains(&edge_id) {
            continue;
        }
        let edge = g.edge(edge_id);
        if !rel.types.is_empty() && !rel.types.contains(&edge.label) {
            continue;
        }
        let mut props_ok = true;
        for (k, expr) in &rel.props {
            let want = ctx.eval(expr, row)?;
            ctx.record_prop_read();
            if edge.prop(k).cypher_eq(&want) != Some(true) {
                props_ok = false;
                break;
            }
        }
        if !props_ok {
            continue;
        }
        let mut consumed_next = consumed.clone();
        consumed_next.push(edge_id);
        var_length_walk(
            ctx,
            row,
            used,
            neighbour,
            rel,
            node,
            rest,
            consumed_next,
            depth + 1,
            min,
            max,
            results,
            pp,
        )?;
    }
    Ok(())
}

/// Enumerates rows binding the start node pattern.
fn node_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    pattern: &NodePattern,
    pp: Option<PathProf<'_>>,
) -> Result<Vec<(Row, NodeId)>> {
    let g = ctx.graph;
    let _g = pp.map(|pp| pp.p.enter(pp.scan_op()));
    if let Some(pp) = pp {
        pp.p.call();
        pp.p.rows_in(1);
    }
    // Already bound: just re-check constraints.
    if let Some(var) = &pattern.var {
        if let Some(binding) = row.get(var) {
            if let Some(pp) = pp {
                pp.p.set_scan("Argument", pattern.to_string());
            }
            return match binding {
                Binding::Node(id) => {
                    let id = *id;
                    Ok(match bind_node(ctx, row, pattern, id)? {
                        Some(r) => {
                            if let Some(pp) = pp {
                                pp.p.rows(1);
                            }
                            vec![(r, id)]
                        }
                        None => vec![],
                    })
                }
                _ => Ok(vec![]),
            };
        }
    }
    // Fresh scan: pick the most selective available label index. The
    // scan slot's name/detail resolve here because the cost-based
    // reversal may enumerate the end the query did not write first.
    let ids: Vec<NodeId> = if let Some(label) = pattern.labels.first() {
        if let Some(pp) = pp {
            pp.p.set_scan("NodeByLabelScan", pattern.to_string());
        }
        g.nodes_with_label(label).map(|n| n.id).collect()
    } else {
        if let Some(pp) = pp {
            pp.p.set_scan("AllNodesScan", pattern.to_string());
        }
        g.nodes().map(|n| n.id).collect()
    };
    if let Some(pp) = pp {
        pp.p.hit_nodes(ids.len() as u64);
    }
    let mut out = Vec::new();
    for id in ids {
        if let Some(r) = bind_node(ctx, row, pattern, id)? {
            out.push((r, id));
        }
    }
    if let Some(pp) = pp {
        pp.p.rows(out.len() as u64);
    }
    Ok(out)
}

/// Checks labels/props of `pattern` against node `id`; returns the row
/// extended with the binding when they hold.
fn bind_node(
    ctx: &EvalCtx<'_>,
    row: &Row,
    pattern: &NodePattern,
    id: NodeId,
) -> Result<Option<Row>> {
    let node = ctx.graph.node(id);
    if !pattern.labels.iter().all(|l| node.has_label(l)) {
        return Ok(None);
    }
    for (k, expr) in &pattern.props {
        let want = ctx.eval(expr, row)?;
        ctx.record_prop_read();
        if node.prop(k).cypher_eq(&want) != Some(true) {
            return Ok(None);
        }
    }
    let mut next = row.clone();
    if let Some(var) = &pattern.var {
        match next.get(var) {
            Some(Binding::Node(bound)) if *bound == id => {}
            Some(Binding::Node(_)) | Some(Binding::Edge(_)) | Some(Binding::Val(_)) => {
                return Ok(None)
            }
            None => {
                next.insert(var.clone(), Binding::Node(id));
            }
        }
    }
    Ok(Some(next))
}

// ---------------------------------------------------------------------------
// Projection & aggregation
// ---------------------------------------------------------------------------

/// Projects `rows` through `items`, grouping when any item aggregates.
fn project(
    ctx: &EvalCtx<'_>,
    rows: Vec<Row>,
    items: &[ProjItem],
    require_alias: bool,
) -> Result<Vec<Row>> {
    // Alias discipline: WITH requires `expr AS name` for non-variables.
    for item in items {
        if require_alias && item.alias.is_none() && !matches!(item.expr, Expr::Var(_)) {
            return Err(CypherError::semantic(format!(
                "expression `{}` in WITH must be aliased",
                item.expr
            )));
        }
    }

    let has_aggregate = items.iter().any(|i| i.expr.contains_aggregate());
    if !has_aggregate {
        let mut out = Vec::with_capacity(rows.len());
        for row in &rows {
            out.push(project_plain(ctx, row, items)?);
        }
        return Ok(out);
    }

    // Aggregates must sit at the top level of their item.
    for item in items {
        if item.expr.contains_aggregate() && !matches!(item.expr, Expr::FnCall { .. }) {
            return Err(CypherError::semantic(format!(
                "aggregate must be a top-level function call, got `{}`",
                item.expr
            )));
        }
    }

    let group_items: Vec<&ProjItem> =
        items.iter().filter(|i| !i.expr.contains_aggregate()).collect();
    let agg_items: Vec<&ProjItem> = items.iter().filter(|i| i.expr.contains_aggregate()).collect();

    // Group rows by the evaluated group keys.
    let mut groups: HashMap<String, (Row, Vec<Row>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for row in rows {
        let mut key = String::new();
        let mut rep = Row::new();
        for item in &group_items {
            let name = item.name();
            let binding = project_binding(ctx, &row, &item.expr)?;
            key.push_str(&binding.to_value(ctx.graph).group_key());
            key.push('\u{1}');
            rep.insert(name, binding);
        }
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (rep, Vec::new())
        });
        entry.1.push(row);
    }
    // Global aggregation over zero rows still yields one group
    // (`COUNT(*)` over an empty match is 0, not no-rows).
    if groups.is_empty() && group_items.is_empty() {
        order.push(String::new());
        groups.insert(String::new(), (Row::new(), Vec::new()));
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let (mut rep, members) = groups.remove(&key).expect("group recorded in order");
        for item in &agg_items {
            let value = eval_aggregate(ctx, &item.expr, &members)?;
            rep.insert(item.name(), Binding::Val(value));
        }
        out.push(rep);
    }
    Ok(out)
}

fn project_plain(ctx: &EvalCtx<'_>, row: &Row, items: &[ProjItem]) -> Result<Row> {
    let mut out = Row::new();
    for item in items {
        out.insert(item.name(), project_binding(ctx, row, &item.expr)?);
    }
    Ok(out)
}

/// Bare variables keep their graph-element binding through projection;
/// all other expressions are materialised to values.
fn project_binding(ctx: &EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<Binding> {
    if let Expr::Var(name) = expr {
        if let Some(b) = row.get(name) {
            return Ok(b.clone());
        }
        return Err(CypherError::semantic(format!("unknown variable `{name}`")));
    }
    Ok(Binding::Val(ctx.eval(expr, row)?))
}

fn eval_aggregate(ctx: &EvalCtx<'_>, expr: &Expr, rows: &[Row]) -> Result<Value> {
    let Expr::FnCall { name, distinct, star, args } = expr else {
        return Err(CypherError::semantic("aggregate must be a function call"));
    };
    if *star {
        return Ok(Value::Int(rows.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| CypherError::semantic(format!("{name}() aggregate requires an argument")))?;
    // Evaluate the argument per row; NULLs are skipped (Cypher).
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let v = ctx.eval(arg, row)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if *distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.group_key()));
    }
    match name.as_str() {
        "count" => Ok(Value::Int(values.len() as i64)),
        "collect" => Ok(Value::List(values)),
        "sum" => {
            let mut acc = 0.0;
            let mut all_int = true;
            for v in &values {
                match v {
                    Value::Int(i) => acc += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        acc += *f;
                    }
                    other => {
                        return Err(CypherError::runtime(format!(
                            "SUM over non-numeric {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(if all_int { Value::Int(acc as i64) } else { Value::Float(acc) })
        }
        "avg" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc = 0.0;
            for v in &values {
                acc += v.as_f64().ok_or_else(|| {
                    CypherError::runtime(format!("AVG over non-numeric {}", v.type_name()))
                })?;
            }
            Ok(Value::Float(acc / values.len() as f64))
        }
        "min" | "max" => {
            let want_min = name == "min";
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.cypher_cmp(&b) {
                        Some(ord) if (want_min && ord.is_lt()) || (!want_min && ord.is_gt()) => v,
                        _ => b,
                    },
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        other => Err(CypherError::semantic(format!("unknown aggregate `{other}`"))),
    }
}

fn distinct_rows(ctx: &EvalCtx<'_>, rows: Vec<Row>, items: &[ProjItem]) -> Result<Vec<Row>> {
    let names: Vec<String> = items.iter().map(ProjItem::name).collect();
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut key = String::new();
        for name in &names {
            if let Some(b) = row.get(name) {
                key.push_str(&b.to_value(ctx.graph).group_key());
            }
            key.push('\u{1}');
        }
        if seen.insert(key) {
            out.push(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_pgraph::props;

    /// A tiny football graph mirroring WWC2019's core shape.
    fn football() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], props([("id", Value::Int(1))]));
        let m1 = g.add_node(
            ["Match"],
            props([("id", Value::from("m1")), ("date", Value::from("2019-06-11"))]),
        );
        let m2 = g.add_node(
            ["Match"],
            props([("id", Value::from("m2")), ("date", Value::from("2019-06-12"))]),
        );
        let p1 = g.add_node(["Person"], props([("name", Value::from("Ada"))]));
        let p2 = g.add_node(["Person"], props([("name", Value::from("Bea"))]));
        g.add_edge(m1, t, "IN_TOURNAMENT", Default::default());
        g.add_edge(m2, t, "IN_TOURNAMENT", Default::default());
        g.add_edge(p1, m1, "PLAYED_IN", props([("minutes", Value::Int(90))]));
        g.add_edge(p2, m1, "PLAYED_IN", props([("minutes", Value::Int(45))]));
        g.add_edge(p1, m2, "PLAYED_IN", props([("minutes", Value::Int(90))]));
        g.add_edge(p1, m1, "SCORED_GOAL", props([("minute", Value::Int(23))]));
        g.add_edge(p1, m1, "SCORED_GOAL", props([("minute", Value::Int(67))]));
        g
    }

    #[test]
    fn count_all_nodes() {
        let g = football();
        let rs = execute(&g, "MATCH (n) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(5));
    }

    #[test]
    fn count_by_label() {
        let g = football();
        let rs = execute(&g, "MATCH (m:Match) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn directed_match_respects_direction() {
        let g = football();
        let right =
            execute(&g, "MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c")
                .unwrap();
        assert_eq!(right.single_int(), Some(2));
        // The paper's wrong-direction query returns 0, silently.
        let wrong =
            execute(&g, "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match) RETURN COUNT(*) AS c")
                .unwrap();
        assert_eq!(wrong.single_int(), Some(0));
    }

    #[test]
    fn incoming_arrow_equivalent() {
        let g = football();
        let rs =
            execute(&g, "MATCH (t:Tournament)<-[:IN_TOURNAMENT]-(m:Match) RETURN COUNT(*) AS c")
                .unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn undirected_match_counts_each_edge_once() {
        let g = football();
        let rs = execute(&g, "MATCH (a)-[:IN_TOURNAMENT]-(b) RETURN COUNT(*) AS c").unwrap();
        // Each of the 2 edges matches in both orientations: 4 rows.
        assert_eq!(rs.single_int(), Some(4));
    }

    #[test]
    fn where_filters() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person)-[r:PLAYED_IN]->(m:Match) WHERE r.minutes >= 90 RETURN COUNT(*) AS c",
        )
        .unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn grouped_aggregation() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) \
             WITH p.name AS name, COUNT(*) AS games \
             WHERE games > 1 RETURN name, games",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("Ada"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn collect_and_size() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person)-[sg:SCORED_GOAL]->(m:Match) \
             WITH m.id AS mid, p.name AS name, COLLECT(DISTINCT sg.minute) AS minutes \
             WHERE SIZE(minutes) > 1 RETURN mid, name, minutes",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::from("m1"));
    }

    #[test]
    fn hallucinated_property_runs_but_finds_nothing() {
        let g = football();
        // `penaltyScore` does not exist — query runs, count is 0.
        let rs =
            execute(&g, "MATCH (m:Match) WHERE m.penaltyScore > 0 RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(0));
    }

    #[test]
    fn optional_match_pads_with_null() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person) OPTIONAL MATCH (p)-[:SCORED_GOAL]->(m:Match) \
             RETURN p.name AS name, COUNT(m) AS goals ORDER BY name",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::from("Ada"), Value::Int(2)]);
        assert_eq!(rs.rows[1], vec![Value::from("Bea"), Value::Int(0)]);
    }

    #[test]
    fn relationship_uniqueness_within_clause() {
        let g = football();
        // Two SCORED_GOAL edges from Ada to m1: a two-step pattern
        // through distinct rels must not reuse one edge twice.
        let rs = execute(
            &g,
            "MATCH (a:Person)-[r1:SCORED_GOAL]->(m:Match)<-[r2:SCORED_GOAL]-(b:Person) \
             RETURN COUNT(*) AS c",
        )
        .unwrap();
        // Ordered pairs of distinct edges: 2 permutations.
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn distinct_return() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) RETURN DISTINCT p.name AS n ORDER BY n",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn order_skip_limit() {
        let g = football();
        let rs = execute(&g, "MATCH (m:Match) RETURN m.id AS id ORDER BY id DESC SKIP 1 LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("m1")]]);
    }

    #[test]
    fn global_count_over_empty_match_is_zero() {
        let g = football();
        let rs = execute(&g, "MATCH (x:Ghost) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(0));
    }

    #[test]
    fn multiple_patterns_in_one_match() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (p:Person)-[:PLAYED_IN]->(m:Match), (m)-[:IN_TOURNAMENT]->(t:Tournament) \
             RETURN COUNT(*) AS c",
        )
        .unwrap();
        assert_eq!(rs.single_int(), Some(3));
    }

    #[test]
    fn unwind_expands_lists() {
        let g = football();
        let rs = execute(
            &g,
            "MATCH (m:Match) WITH COLLECT(m.id) AS ids UNWIND ids AS id RETURN id ORDER BY id",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn property_map_filter_in_pattern() {
        let g = football();
        let rs = execute(&g, "MATCH (m:Match {id: 'm1'}) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(1));
    }

    #[test]
    fn regex_in_where() {
        let g = football();
        let rs = execute(
            &g,
            r"MATCH (m:Match) WHERE m.date =~ '\d{4}-\d{2}-\d{2}' RETURN COUNT(*) AS c",
        )
        .unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn with_requires_alias_for_expressions() {
        let g = football();
        let err = execute(&g, "MATCH (m:Match) WITH m.id RETURN COUNT(*) AS c");
        assert!(matches!(err, Err(CypherError::Semantic { .. })));
    }

    #[test]
    fn return_without_match() {
        let g = football();
        let rs = execute(&g, "RETURN 1 + 1 AS two").unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn reused_variable_joins() {
        let g = football();
        // `m` reused across two clauses is a join, not a new scan.
        let rs = execute(
            &g,
            "MATCH (p:Person {name: 'Ada'})-[:SCORED_GOAL]->(m) \
             MATCH (m)-[:IN_TOURNAMENT]->(t:Tournament) \
             RETURN COUNT(DISTINCT m.id) AS c",
        )
        .unwrap();
        assert_eq!(rs.single_int(), Some(1));
    }

    #[test]
    fn variable_length_chain() {
        // a -> b -> c -> d linear chain.
        let mut g = PropertyGraph::new();
        let ids: Vec<_> =
            (0..4i64).map(|i| g.add_node(["N"], props([("id", Value::Int(i))]))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "NEXT", Default::default());
        }
        // Reachable in 1..3 hops from the head: b, c, d.
        let rs =
            execute(&g, "MATCH (a:N {id: 0})-[:NEXT*1..3]->(b:N) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(3));
        // Exactly 2 hops: just c.
        let rs = execute(&g, "MATCH (a:N {id: 0})-[:NEXT*2]->(b:N) RETURN b.id AS id").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
        // Unbounded star covers the whole chain.
        let rs = execute(&g, "MATCH (a:N {id: 0})-[:NEXT*]->(b:N) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(3));
    }

    #[test]
    fn variable_length_zero_hops_binds_self() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], props([("id", Value::Int(0))]));
        let b = g.add_node(["N"], props([("id", Value::Int(1))]));
        g.add_edge(a, b, "NEXT", Default::default());
        let rs =
            execute(&g, "MATCH (a:N {id: 0})-[:NEXT*0..1]->(b:N) RETURN COUNT(*) AS c").unwrap();
        // Zero hops (a itself) + one hop (b).
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn variable_length_respects_edge_uniqueness_in_cycles() {
        // A 2-cycle: a <-> b. Paths from a of length ≤4 without edge
        // reuse: a->b (1 hop), a->b->a (2 hops). No longer paths.
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], props([("id", Value::Int(0))]));
        let b = g.add_node(["N"], props([("id", Value::Int(1))]));
        g.add_edge(a, b, "NEXT", Default::default());
        g.add_edge(b, a, "NEXT", Default::default());
        let rs =
            execute(&g, "MATCH (x:N {id: 0})-[:NEXT*1..4]->(y:N) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn variable_length_incoming_direction() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["N"], props([("id", Value::Int(0))]));
        let b = g.add_node(["N"], props([("id", Value::Int(1))]));
        let c = g.add_node(["N"], props([("id", Value::Int(2))]));
        g.add_edge(a, b, "NEXT", Default::default());
        g.add_edge(b, c, "NEXT", Default::default());
        let rs =
            execute(&g, "MATCH (x:N {id: 2})<-[:NEXT*1..2]-(y:N) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(2));
    }

    #[test]
    fn variable_length_rejects_variable_binding() {
        let mut g = PropertyGraph::new();
        g.add_node(["N"], props([("id", Value::Int(0))]));
        let err = execute(&g, "MATCH (a:N)-[r:NEXT*1..2]->(b) RETURN COUNT(*) AS c");
        assert!(matches!(err, Err(CypherError::Semantic { .. })));
    }

    #[test]
    fn self_loop_undirected_matches_once() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["U"], props([("id", Value::Int(1))]));
        g.add_edge(a, a, "FOLLOWS", Default::default());
        let rs = execute(&g, "MATCH (x:U)-[:FOLLOWS]-(y) RETURN COUNT(*) AS c").unwrap();
        assert_eq!(rs.single_int(), Some(1));
    }

    // -- PROFILE ------------------------------------------------------

    use crate::profile::{PlanNode, QueryProfile};

    fn profiled(g: &PropertyGraph, src: &str) -> (ResultSet, QueryProfile) {
        execute_profiled(g, src).unwrap()
    }

    fn op<'a>(profile: &'a QueryProfile, name: &str) -> &'a PlanNode {
        fn find<'a>(n: &'a PlanNode, name: &str) -> Option<&'a PlanNode> {
            if n.op == name {
                return Some(n);
            }
            n.children.iter().find_map(|c| find(c, name))
        }
        find(&profile.root, name)
            .unwrap_or_else(|| panic!("operator {name} not in plan:\n{}", profile.render()))
    }

    #[test]
    fn profiled_results_match_unprofiled() {
        let g = football();
        for q in [
            "MATCH (n) RETURN COUNT(*) AS c",
            "MATCH (p:Person)-[r:PLAYED_IN]->(m:Match) WHERE r.minutes >= 90 \
             RETURN p.name AS n ORDER BY n",
            "MATCH (m:Match) WITH m.date AS d RETURN DISTINCT d ORDER BY d DESC LIMIT 1",
        ] {
            let plain = execute(&g, q).unwrap();
            let (rs, profile) = profiled(&g, q);
            assert_eq!(rs, plain, "query: {q}");
            assert_eq!(profile.rows, rs.len() as u64, "query: {q}");
        }
    }

    #[test]
    fn profiled_label_scan_charges_node_hits() {
        let g = football();
        let (rs, profile) = profiled(&g, "MATCH (m:Match) RETURN COUNT(*) AS c");
        assert_eq!(rs.single_int(), Some(2));
        let scan = op(&profile, "NodeByLabelScan");
        assert_eq!(scan.db_hits.nodes, 2);
        assert_eq!(scan.rows, 2);
        assert_eq!(profile.root.op, "ProduceResults");
        assert_eq!(profile.root.rows, 1);
        // Aggregation sits between the scan and the result.
        let agg = op(&profile, "EagerAggregation");
        assert_eq!(agg.rows_in, 2);
        assert_eq!(agg.rows, 1);
    }

    #[test]
    fn profiled_expand_and_filter_attribute_hits_per_operator() {
        let g = football();
        let (rs, profile) = profiled(
            &g,
            "MATCH (p:Person)-[r:PLAYED_IN]->(m:Match) WHERE r.minutes >= 90 RETURN p.name AS n",
        );
        assert_eq!(rs.len(), 2);
        // Scan enumerates both Person nodes.
        let scan = op(&profile, "NodeByLabelScan");
        assert_eq!(scan.db_hits.nodes, 2);
        assert_eq!(scan.rows, 2);
        // Expand examines all 5 out-edges of the two people (type
        // filtering happens after the candidates are materialised)
        // and produces the 3 PLAYED_IN bindings.
        let expand = op(&profile, "Expand");
        assert_eq!(expand.db_hits.edges, 5);
        assert_eq!(expand.rows, 3);
        // The WHERE filter reads r.minutes once per candidate row and
        // keeps the two 90-minute appearances.
        let filter = op(&profile, "Filter");
        assert_eq!(filter.rows_in, 3);
        assert_eq!(filter.db_hits.props, 3);
        assert_eq!(filter.rows, 2);
        // RETURN projection reads p.name per surviving row.
        let proj = op(&profile, "Projection");
        assert_eq!(proj.db_hits.props, 2);
        assert_eq!(profile.db_hits().total(), 2 + 5 + 3 + 2);
    }

    #[test]
    fn profiled_reversed_pattern_resolves_scan_at_runtime() {
        let g = football();
        // Written start is unlabelled (cost 5); the Tournament end
        // (cost 1) wins, so the scan slot must resolve to a label
        // scan of the *end* pattern and the expand walks in-edges.
        let (rs, profile) =
            profiled(&g, "MATCH (n)-[:IN_TOURNAMENT]->(t:Tournament) RETURN COUNT(*) AS c");
        assert_eq!(rs.single_int(), Some(2));
        let scan = op(&profile, "NodeByLabelScan");
        assert!(scan.detail.contains("Tournament"), "detail: {}", scan.detail);
        assert_eq!(scan.db_hits.nodes, 1);
        let expand = op(&profile, "Expand");
        assert_eq!(expand.db_hits.edges, 2);
        assert_eq!(expand.rows, 2);
    }

    #[test]
    fn profiled_plan_ops_paths_are_rooted_and_self_times_bounded() {
        let g = football();
        let (_, profile) = profiled(
            &g,
            "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) RETURN m.date AS d ORDER BY d LIMIT 1",
        );
        let ops = profile.plan_ops();
        assert_eq!(ops[0].path, "ProduceResults");
        assert!(ops.iter().skip(1).all(|o| o.path.starts_with("ProduceResults/")));
        let chain: Vec<&str> = ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(
            chain,
            ["ProduceResults", "Limit", "Sort", "Projection", "Expand", "NodeByLabelScan"]
        );
        // The switch protocol partitions wall-clock time: per-operator
        // self-times can never sum past the inclusive total.
        let self_sum: u64 = ops.iter().map(|o| o.self_us).sum();
        assert!(self_sum <= profile.total_us, "{self_sum} > {}", profile.total_us);
        assert_eq!(profile.sim_us, ops.iter().map(|o| o.db_hits() + o.rows).sum::<u64>());
    }

    #[test]
    fn profiled_var_length_walks_charge_the_one_slot() {
        let mut g = PropertyGraph::new();
        let a = g.add_node(["U"], props([("id", Value::Int(1))]));
        let b = g.add_node(["U"], props([("id", Value::Int(2))]));
        let c = g.add_node(["U"], props([("id", Value::Int(3))]));
        g.add_edge(a, b, "FOLLOWS", Default::default());
        g.add_edge(b, c, "FOLLOWS", Default::default());
        let (rs, profile) =
            profiled(&g, "MATCH (x:U {id: 1})-[:FOLLOWS*1..2]->(y) RETURN COUNT(*) AS c");
        assert_eq!(rs.single_int(), Some(2));
        let var = op(&profile, "VarLengthExpand");
        assert_eq!(var.rows, 2);
        assert!(var.db_hits.edges >= 2);
    }
}
