//! Operator-level query profiling — the engine side of Neo4j's
//! `PROFILE`.
//!
//! [`Profiler`] pre-allocates one operator slot per executor stage
//! straight from the AST (scan, expand, filter, projection,
//! aggregation, sort, limit, produce-results), and the executor
//! switches between slots as it moves through the query. Each slot
//! tallies calls, rows in/out, [`DbHits`] and *self*-time:
//!
//! * **Self-time** uses a switch/flush protocol — [`Profiler::switch`]
//!   attributes the wall-clock elapsed since the previous switch to
//!   the operator that was current, so the per-operator times
//!   partition the run exactly and their sum can never exceed the
//!   root's inclusive total (the property the proptests pin down).
//! * **Db-hits** follow the [`DbHits`] definition in `grm-pgraph`:
//!   nodes materialised by scans, edges examined by expansions,
//!   property-map lookups anywhere.
//! * **Sim-time** is a deterministic cost model — 1 µs per db-hit
//!   plus 1 µs per produced row — so plan baselines gate in CI
//!   without wall-clock noise.
//!
//! The public result is a [`QueryProfile`]: the operator chain as a
//! [`PlanNode`] tree (root `ProduceResults`, leaves the scans),
//! convertible to `grm-obs` journal records via
//! [`QueryProfile::plan_ops`]. Entry point:
//! [`crate::execute_profiled`]. A `None` profiler costs the executor
//! one `Option` check per site — the un-profiled path does zero
//! accounting.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use grm_obs::PlanOpRecord;
use grm_pgraph::DbHits;

use crate::ast::{Clause, ProjItem, Query};

/// One operator of an executed plan, with its recorded statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator name (`NodeByLabelScan`, `Expand`, `Filter`, …).
    pub op: String,
    /// The AST fragment the operator executes, rendered as Cypher.
    pub detail: String,
    /// Times the operator ran.
    pub calls: u64,
    /// Rows consumed from the child operator.
    pub rows_in: u64,
    /// Rows produced.
    pub rows: u64,
    /// Store accesses attributed to this operator.
    pub db_hits: DbHits,
    /// Real self-time, microseconds (exclusive of children).
    pub self_us: u64,
    /// Deterministic simulated self-cost, microseconds.
    pub sim_us: u64,
    /// Child operators (this executor produces a chain: ≤ 1 child).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{:<20} {:<30} rows {:>7}  hits {:>8}  self {:>8.2}ms  sim {:>8.2}ms\n",
            "",
            self.op,
            self.detail,
            self.rows,
            self.db_hits.total(),
            self.self_us as f64 / 1_000.0,
            self.sim_us as f64 / 1_000.0,
            indent = depth * 2
        ));
        for child in &self.children {
            child.render(depth + 1, out);
        }
    }
}

/// The full profile of one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// The source text that was executed.
    pub query: String,
    /// Result rows produced.
    pub rows: u64,
    /// Real inclusive time, microseconds (parse excluded).
    pub total_us: u64,
    /// Deterministic simulated cost, microseconds (sum over operators).
    pub sim_us: u64,
    /// The operator tree, `ProduceResults` at the root.
    pub root: PlanNode,
}

impl QueryProfile {
    /// Total store accesses across all operators.
    pub fn db_hits(&self) -> DbHits {
        fn sum(node: &PlanNode, acc: &mut DbHits) {
            *acc += node.db_hits;
            for c in &node.children {
                sum(c, acc);
            }
        }
        let mut acc = DbHits::new();
        sum(&self.root, &mut acc);
        acc
    }

    /// Flattens the tree to journal operator records, each keyed by
    /// its slash-joined root-to-operator path.
    pub fn plan_ops(&self) -> Vec<PlanOpRecord> {
        fn walk(node: &PlanNode, prefix: &str, out: &mut Vec<PlanOpRecord>) {
            let path =
                if prefix.is_empty() { node.op.clone() } else { format!("{prefix}/{}", node.op) };
            out.push(PlanOpRecord {
                path: path.clone(),
                op: node.op.clone(),
                detail: node.detail.clone(),
                calls: node.calls,
                rows_in: node.rows_in,
                rows: node.rows,
                db_nodes: node.db_hits.nodes,
                db_edges: node.db_hits.edges,
                db_props: node.db_hits.props,
                self_us: node.self_us,
                sim_us: node.sim_us,
            });
            for c in &node.children {
                walk(c, &path, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, "", &mut out);
        out
    }

    /// Human-readable plan tree, `PROFILE`-style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}\nrows {}  db-hits {}  real {:.2}ms  sim {:.2}ms\n",
            self.query,
            self.rows,
            self.db_hits().total(),
            self.total_us as f64 / 1_000.0,
            self.sim_us as f64 / 1_000.0,
        );
        self.root.render(0, &mut out);
        out
    }
}

/// Mutable per-operator tally. Scan slots resolve their final name
/// (`Argument` / `NodeByLabelScan` / `AllNodesScan`) and detail at
/// run time, because the cost-based pattern reversal decides which
/// end actually gets enumerated.
struct OpSlot {
    name: Cell<&'static str>,
    detail: RefCell<String>,
    calls: Cell<u64>,
    rows_in: Cell<u64>,
    rows: Cell<u64>,
    hits: Cell<DbHits>,
    self_ns: Cell<u64>,
}

/// Operator slots of one MATCH path pattern: the start-node scan plus
/// one expand per step, in *written* order.
pub(crate) struct PatternOps {
    pub(crate) scan: usize,
    pub(crate) steps: Vec<usize>,
}

/// Operator slots of one clause.
enum ClauseOps {
    Match { patterns: Vec<PatternOps>, filter: Option<usize> },
    With { projection: usize, filter: Option<usize>, distinct: Option<usize> },
    Unwind { op: usize },
}

/// Operator slots of the RETURN section.
pub(crate) struct RetOps {
    pub(crate) projection: usize,
    pub(crate) distinct: Option<usize>,
    pub(crate) sort: Option<usize>,
    pub(crate) window: Option<usize>,
}

/// The recording half of `PROFILE`: operator slots plus the ambient
/// "current operator" the switch protocol and db-hit charging use.
/// Single-threaded by construction (the executor is), hence `Cell`s.
pub(crate) struct Profiler {
    ops: Vec<OpSlot>,
    clauses: Vec<ClauseOps>,
    ret: RetOps,
    root: usize,
    cur: Cell<usize>,
    last: Cell<Instant>,
    started: Instant,
}

fn slot(ops: &mut Vec<OpSlot>, name: &'static str, detail: String) -> usize {
    ops.push(OpSlot {
        name: Cell::new(name),
        detail: RefCell::new(detail),
        calls: Cell::new(0),
        rows_in: Cell::new(0),
        rows: Cell::new(0),
        hits: Cell::new(DbHits::new()),
        self_ns: Cell::new(0),
    });
    ops.len() - 1
}

fn join_items(items: &[ProjItem]) -> String {
    items.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
}

impl Profiler {
    /// Allocates operator slots for every executor stage of `query`,
    /// in execution order (deepest leaf first, `ProduceResults`
    /// last); the slots form the plan chain.
    pub(crate) fn new(query: &Query) -> Profiler {
        let mut ops = Vec::new();
        let mut clauses = Vec::new();
        for clause in &query.clauses {
            clauses.push(match clause {
                Clause::Match { patterns, where_clause, .. } => ClauseOps::Match {
                    patterns: patterns
                        .iter()
                        .map(|p| PatternOps {
                            scan: slot(
                                &mut ops,
                                if p.start.labels.is_empty() {
                                    "AllNodesScan"
                                } else {
                                    "NodeByLabelScan"
                                },
                                p.start.to_string(),
                            ),
                            steps: p
                                .steps
                                .iter()
                                .map(|(rel, node)| {
                                    slot(
                                        &mut ops,
                                        if rel.length.is_some() {
                                            "VarLengthExpand"
                                        } else {
                                            "Expand"
                                        },
                                        format!("{rel}{node}"),
                                    )
                                })
                                .collect(),
                        })
                        .collect(),
                    filter: where_clause.as_ref().map(|w| slot(&mut ops, "Filter", w.to_string())),
                },
                Clause::With { distinct, items, where_clause } => ClauseOps::With {
                    projection: slot(
                        &mut ops,
                        if items.iter().any(|i| i.expr.contains_aggregate()) {
                            "EagerAggregation"
                        } else {
                            "Projection"
                        },
                        join_items(items),
                    ),
                    filter: where_clause.as_ref().map(|w| slot(&mut ops, "Filter", w.to_string())),
                    distinct: distinct.then(|| slot(&mut ops, "Distinct", join_items(items))),
                },
                Clause::Unwind { expr, var } => {
                    ClauseOps::Unwind { op: slot(&mut ops, "Unwind", format!("{expr} AS {var}")) }
                }
            });
        }
        let ret = &query.ret;
        let ret_ops = RetOps {
            projection: slot(
                &mut ops,
                if ret.items.iter().any(|i| i.expr.contains_aggregate()) {
                    "EagerAggregation"
                } else {
                    "Projection"
                },
                join_items(&ret.items),
            ),
            distinct: ret.distinct.then(|| slot(&mut ops, "Distinct", join_items(&ret.items))),
            sort: (!ret.order_by.is_empty()).then(|| {
                let detail = ret
                    .order_by
                    .iter()
                    .map(|o| format!("{}{}", o.expr, if o.descending { " DESC" } else { "" }))
                    .collect::<Vec<_>>()
                    .join(", ");
                slot(&mut ops, "Sort", detail)
            }),
            window: (ret.skip.is_some() || ret.limit.is_some()).then(|| {
                let mut parts = Vec::new();
                if let Some(s) = ret.skip {
                    parts.push(format!("SKIP {s}"));
                }
                if let Some(l) = ret.limit {
                    parts.push(format!("LIMIT {l}"));
                }
                slot(&mut ops, if ret.limit.is_some() { "Limit" } else { "Skip" }, parts.join(" "))
            }),
        };
        let root = slot(
            &mut ops,
            "ProduceResults",
            ret.items.iter().map(ProjItem::name).collect::<Vec<_>>().join(", "),
        );
        let now = Instant::now();
        Profiler {
            ops,
            clauses,
            ret: ret_ops,
            root,
            cur: Cell::new(root),
            last: Cell::new(now),
            started: now,
        }
    }

    /// Makes `op` the current operator, attributing the wall-clock
    /// elapsed since the last switch to the operator that *was*
    /// current. Returns the previous operator so callers can restore
    /// it (see [`Profiler::enter`]).
    pub(crate) fn switch(&self, op: usize) -> usize {
        let now = Instant::now();
        let prev = self.cur.get();
        let prev_slot = &self.ops[prev];
        prev_slot
            .self_ns
            .set(prev_slot.self_ns.get() + now.duration_since(self.last.get()).as_nanos() as u64);
        self.last.set(now);
        self.cur.set(op);
        prev
    }

    /// Switches to `op` for the guard's lifetime; dropping restores
    /// the previous operator.
    pub(crate) fn enter(&self, op: usize) -> OpGuard<'_> {
        OpGuard { p: self, prev: self.switch(op) }
    }

    fn cur_slot(&self) -> &OpSlot {
        &self.ops[self.cur.get()]
    }

    /// One invocation of the current operator.
    pub(crate) fn call(&self) {
        let s = self.cur_slot();
        s.calls.set(s.calls.get() + 1);
    }

    /// `n` rows consumed by the current operator.
    pub(crate) fn rows_in(&self, n: u64) {
        let s = self.cur_slot();
        s.rows_in.set(s.rows_in.get() + n);
    }

    /// `n` rows produced by the current operator.
    pub(crate) fn rows(&self, n: u64) {
        let s = self.cur_slot();
        s.rows.set(s.rows.get() + n);
    }

    /// `n` nodes materialised by the current operator's scan.
    pub(crate) fn hit_nodes(&self, n: u64) {
        let s = self.cur_slot();
        let mut h = s.hits.get();
        h.nodes += n;
        s.hits.set(h);
    }

    /// `n` candidate edges examined by the current operator.
    pub(crate) fn hit_edges(&self, n: u64) {
        let s = self.cur_slot();
        let mut h = s.hits.get();
        h.edges += n;
        s.hits.set(h);
    }

    /// `n` property-map lookups by the current operator.
    pub(crate) fn hit_props(&self, n: u64) {
        let s = self.cur_slot();
        let mut h = s.hits.get();
        h.props += n;
        s.hits.set(h);
    }

    /// Resolves the current (scan) operator's name and detail to what
    /// actually ran — the cost-based reversal may enumerate the other
    /// end of the pattern than the written one.
    pub(crate) fn set_scan(&self, name: &'static str, detail: String) {
        let s = self.cur_slot();
        s.name.set(name);
        *s.detail.borrow_mut() = detail;
    }

    /// Profiling handles for MATCH clause `i`.
    pub(crate) fn match_prof(&self, i: usize) -> MatchProf<'_> {
        match &self.clauses[i] {
            ClauseOps::Match { patterns, filter } => {
                MatchProf { p: self, patterns, filter: *filter }
            }
            _ => unreachable!("clause {i} was not profiled as MATCH"),
        }
    }

    /// Profiling handles for WITH clause `i`.
    pub(crate) fn with_prof(&self, i: usize) -> WithProf<'_> {
        match &self.clauses[i] {
            ClauseOps::With { projection, filter, distinct } => {
                WithProf { p: self, projection: *projection, filter: *filter, distinct: *distinct }
            }
            _ => unreachable!("clause {i} was not profiled as WITH"),
        }
    }

    /// The operator slot of UNWIND clause `i`.
    pub(crate) fn unwind_prof(&self, i: usize) -> usize {
        match &self.clauses[i] {
            ClauseOps::Unwind { op } => *op,
            _ => unreachable!("clause {i} was not profiled as UNWIND"),
        }
    }

    /// RETURN-section operator slots.
    pub(crate) fn ret_ops(&self) -> &RetOps {
        &self.ret
    }

    /// Flushes the final time slice and freezes the tally into a
    /// [`QueryProfile`]. The slots were allocated in execution order,
    /// so folding them in order builds the chain leaf-up; the last
    /// slot (`ProduceResults`) becomes the root.
    pub(crate) fn finish(self, src: &str) -> QueryProfile {
        self.switch(self.root);
        let total_us = self.started.elapsed().as_micros() as u64;
        let mut node: Option<PlanNode> = None;
        let mut sim_us = 0u64;
        for s in &self.ops {
            let hits = s.hits.get();
            let sim = hits.total() + s.rows.get();
            sim_us += sim;
            let mut n = PlanNode {
                op: s.name.get().to_string(),
                detail: s.detail.borrow().clone(),
                calls: s.calls.get(),
                rows_in: s.rows_in.get(),
                rows: s.rows.get(),
                db_hits: hits,
                self_us: s.self_ns.get() / 1_000,
                sim_us: sim,
                children: Vec::new(),
            };
            if let Some(child) = node.take() {
                n.children.push(child);
            }
            node = Some(n);
        }
        let root = node.expect("ProduceResults slot always exists");
        QueryProfile { query: src.to_string(), rows: root.rows, total_us, sim_us, root }
    }
}

/// Restores the previously-current operator on drop.
pub(crate) struct OpGuard<'p> {
    p: &'p Profiler,
    prev: usize,
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.p.switch(self.prev);
    }
}

/// Profiling handles of one MATCH clause.
#[derive(Clone, Copy)]
pub(crate) struct MatchProf<'p> {
    pub(crate) p: &'p Profiler,
    pub(crate) patterns: &'p [PatternOps],
    pub(crate) filter: Option<usize>,
}

/// Profiling handles of one WITH clause.
#[derive(Clone, Copy)]
pub(crate) struct WithProf<'p> {
    pub(crate) p: &'p Profiler,
    pub(crate) projection: usize,
    pub(crate) filter: Option<usize>,
    pub(crate) distinct: Option<usize>,
}

/// Profiling handles of one path pattern, frozen after the cost-based
/// reversal decision so step slots can be addressed in *written*
/// order whichever direction executes.
#[derive(Clone, Copy)]
pub(crate) struct PathProf<'p> {
    pub(crate) p: &'p Profiler,
    scan: usize,
    steps: &'p [usize],
    reversed: bool,
}

impl<'p> PathProf<'p> {
    pub(crate) fn new(p: &'p Profiler, ops: &'p PatternOps, reversed: bool) -> PathProf<'p> {
        PathProf { p, scan: ops.scan, steps: &ops.steps, reversed }
    }

    /// The scan slot of the end being enumerated.
    pub(crate) fn scan_op(&self) -> usize {
        self.scan
    }

    /// The slot for the step about to execute, given how many steps
    /// (including it) remain on the walk.
    pub(crate) fn step_op(&self, remaining: usize) -> usize {
        let total = self.steps.len();
        let pos = total - remaining;
        self.steps[if self.reversed { total - 1 - pos } else { pos }]
    }
}
