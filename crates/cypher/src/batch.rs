//! Batched query evaluation for rule scoring.
//!
//! The metric scorers run the same Filter→Expand→Count query shapes
//! thousands of times — every rule evaluates three count queries, and
//! the head-total query repeats verbatim across rules sharing a head.
//! A [`BatchSession`] compiles each distinct query once (parse +
//! optimize, via the [`QueryPlanCache`]) and memoizes the result set
//! per (normalized text, graph epoch), so a repeated count costs zero
//! db-hits instead of a full re-walk.
//!
//! Every decision keys on query text, the graph epoch, and logical
//! ticks — no wall clock, no randomness — so a session driven by the
//! same query sequence over the same graph behaves identically in
//! serial, chaos, and resumed runs, keeping journals byte-stable.

use std::collections::HashMap;
use std::sync::Arc;

use grm_pgraph::PropertyGraph;

use crate::error::Result;
use crate::exec::{execute_query_inner, ResultSet};
use crate::optimizer::{optimize, RewriteStats};
use crate::parser::parse;
use crate::plan_cache::{
    normalize_text, CachedPlan, PlanCacheConfig, PlanCacheStats, QueryPlanCache,
};
use crate::profile::{Profiler, QueryProfile};

/// Knobs of a scoring session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Run the optimizer rewrite pass on compile (`--no-optimizer`
    /// turns this off).
    pub optimize: bool,
    /// Memoize result sets per (query, epoch). Off, every call
    /// executes; the plan cache still skips re-compilation.
    pub memoize: bool,
    /// Plan-cache sizing/TTL.
    pub plan_cache: PlanCacheConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { optimize: true, memoize: true, plan_cache: PlanCacheConfig::default() }
    }
}

/// Work counters of one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries asked of the session.
    pub queries: u64,
    /// Queries that actually executed (`queries - memo_hits`).
    pub executed: u64,
    /// Queries answered from the result memo without touching the
    /// store.
    pub memo_hits: u64,
    /// Rewrites applied across all compiled plans.
    pub rewrites: RewriteStats,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
}

/// A scoring session: plan cache + result memo over one logical graph.
#[derive(Debug)]
pub struct BatchSession {
    config: BatchConfig,
    cache: QueryPlanCache,
    memo: HashMap<(String, u64), Arc<ResultSet>>,
    stats: BatchStats,
}

impl BatchSession {
    /// Fresh session under `config`.
    pub fn new(config: BatchConfig) -> Self {
        BatchSession {
            config,
            cache: QueryPlanCache::new(config.plan_cache),
            memo: HashMap::new(),
            stats: BatchStats::default(),
        }
    }

    /// Counter snapshot (plan-cache counters included).
    pub fn stats(&self) -> BatchStats {
        let mut s = self.stats;
        s.plan_cache = self.cache.stats();
        s
    }

    /// Executes `src` against `graph` through the optimizing layer.
    pub fn execute(&mut self, graph: &PropertyGraph, src: &str) -> Result<Arc<ResultSet>> {
        self.run(graph, src, false).map(|(rs, _)| rs)
    }

    /// [`BatchSession::execute`] with operator-level profiling. The
    /// profile is `None` when the memo answered — nothing ran, so
    /// there is nothing to attribute db-hits to.
    pub fn execute_profiled(
        &mut self,
        graph: &PropertyGraph,
        src: &str,
    ) -> Result<(Arc<ResultSet>, Option<QueryProfile>)> {
        self.run(graph, src, true)
    }

    fn run(
        &mut self,
        graph: &PropertyGraph,
        src: &str,
        profiled: bool,
    ) -> Result<(Arc<ResultSet>, Option<QueryProfile>)> {
        self.stats.queries += 1;
        let text = normalize_text(src);
        let epoch = graph.epoch();
        // The plan lookup runs first even when the memo will answer,
        // so cache hit-rates reflect every repeated query.
        let cached = self.cache.lookup(&text, epoch);
        if self.config.memoize {
            if let Some(rs) = self.memo.get(&(text.clone(), epoch)) {
                self.stats.memo_hits += 1;
                return Ok((Arc::clone(rs), None));
            }
        }
        let plan = match cached {
            Some(p) => p,
            None => {
                let parsed = parse(src)?;
                let (query, rewrites) = if self.config.optimize {
                    optimize(&parsed, graph)
                } else {
                    (parsed, RewriteStats::default())
                };
                self.stats.rewrites.absorb(&rewrites);
                self.cache.insert(&text, epoch, CachedPlan { query, rewrites })
            }
        };
        self.stats.executed += 1;
        let (rs, profile) = if profiled {
            let prof = Profiler::new(&plan.query);
            let rs = execute_query_inner(graph, &plan.query, Some(&prof))?;
            (rs, Some(prof.finish(src)))
        } else {
            (execute_query_inner(graph, &plan.query, None)?, None)
        };
        let rs = Arc::new(rs);
        if self.config.memoize {
            self.memo.insert((text, epoch), Arc::clone(&rs));
        }
        Ok((rs, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use grm_pgraph::{props, PropertyMap};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let t = g.add_node(["Tournament"], props([("name", "WWC2019")]));
        for i in 0..4i64 {
            let team = g.add_node(["Team"], props([("rank", i)]));
            g.add_edge(team, t, "IN_TOURNAMENT", PropertyMap::new());
        }
        g
    }

    const COUNT: &str = "MATCH (t:Team)-[:IN_TOURNAMENT]->(x:Tournament) RETURN COUNT(*) AS c";

    #[test]
    fn memo_answers_repeats_without_profiles() {
        let g = graph();
        let mut s = BatchSession::new(BatchConfig::default());
        let (r1, p1) = s.execute_profiled(&g, COUNT).unwrap();
        let (r2, p2) = s.execute_profiled(&g, COUNT).unwrap();
        assert!(p1.is_some());
        assert!(p2.is_none());
        assert_eq!(r1.single_int(), Some(4));
        assert_eq!(*r1, *r2);
        let st = s.stats();
        assert_eq!((st.queries, st.executed, st.memo_hits), (2, 1, 1));
        assert_eq!((st.plan_cache.hits, st.plan_cache.misses), (1, 1));
    }

    #[test]
    fn optimized_matches_naive_execution() {
        let g = graph();
        let mut s = BatchSession::new(BatchConfig::default());
        for q in [
            COUNT,
            "MATCH (t:Team) WHERE t.rank = 2 RETURN COUNT(*) AS c",
            "MATCH (a:Team), (b:Tournament) RETURN COUNT(*) AS c",
            "OPTIONAL MATCH (x:Ghost) RETURN COUNT(x) AS c",
        ] {
            let naive = execute(&g, q).unwrap();
            let batched = s.execute(&g, q).unwrap();
            assert_eq!(naive, *batched, "divergence on {q}");
        }
    }

    #[test]
    fn epoch_bump_invalidates_memo_and_plans() {
        let mut g = graph();
        let mut s = BatchSession::new(BatchConfig::default());
        assert_eq!(s.execute(&g, COUNT).unwrap().single_int(), Some(4));
        let team = g.add_node(["Team"], PropertyMap::new());
        let tourn = g.nodes().find(|n| n.has_label("Tournament")).unwrap().id;
        g.add_edge(team, tourn, "IN_TOURNAMENT", PropertyMap::new());
        assert_eq!(s.execute(&g, COUNT).unwrap().single_int(), Some(5));
        assert_eq!(s.stats().memo_hits, 0);
    }

    #[test]
    fn whitespace_variants_share_one_plan_and_memo() {
        let g = graph();
        let mut s = BatchSession::new(BatchConfig::default());
        let a = s.execute(&g, COUNT).unwrap();
        let b = s
            .execute(&g, "MATCH (t:Team)-[:IN_TOURNAMENT]->(x:Tournament)\n  RETURN COUNT(*) AS c")
            .unwrap();
        assert_eq!(*a, *b);
        let st = s.stats();
        assert_eq!((st.executed, st.memo_hits), (1, 1));
    }

    #[test]
    fn optimizer_off_still_memoizes_and_matches() {
        let g = graph();
        let mut s = BatchSession::new(BatchConfig { optimize: false, ..BatchConfig::default() });
        let naive = execute(&g, COUNT).unwrap();
        assert_eq!(naive, *s.execute(&g, COUNT).unwrap());
        assert_eq!(naive, *s.execute(&g, COUNT).unwrap());
        let st = s.stats();
        assert_eq!(st.rewrites.total(), 0);
        assert_eq!(st.memo_hits, 1);
    }

    #[test]
    fn parse_errors_propagate_and_cache_nothing() {
        let g = graph();
        let mut s = BatchSession::new(BatchConfig::default());
        assert!(s.execute(&g, "MATCH (").is_err());
        assert!(s.execute(&g, "MATCH (").is_err());
        let st = s.stats();
        assert_eq!((st.queries, st.executed), (2, 0));
        assert_eq!(st.plan_cache.misses, 2);
    }
}
