//! # grm-cypher — a Cypher subset engine over `grm-pgraph`
//!
//! The query substrate standing in for Neo4j in the EDBT 2025 paper
//! *"Graph Consistency Rule Mining with LLMs"*. The pipeline in
//! `grm-core` executes every LLM-generated rule query through this
//! engine to compute support / coverage / confidence, and classifies
//! bad queries with [`analyzer::analyze`].
//!
//! Pipeline: [`lexer`] → [`parser`] → ([`analyzer`]) → [`exec`].
//!
//! Supported subset (everything the paper's generated rules use):
//! `MATCH` / `OPTIONAL MATCH` with linear path patterns and property
//! maps, `WHERE` with three-valued logic, `WITH` + aggregation
//! (`COUNT`, `COLLECT`, `SUM`, `MIN`, `MAX`, `AVG`, `DISTINCT`),
//! `UNWIND`, `RETURN` with `ORDER BY` / `SKIP` / `LIMIT`, regex `=~`
//! (via the built-in [`regex`] engine), `IS [NOT] NULL`, `IN`,
//! `EXISTS(n.prop)`, and the scalar functions `size`, `toString`,
//! `toLower`, `toUpper`, `toInteger`, `abs`, `coalesce`, `id`,
//! `labels`, `type`.
//!
//! ```
//! use grm_pgraph::{props, PropertyGraph};
//! use grm_cypher::execute;
//!
//! let mut g = PropertyGraph::new();
//! let u = g.add_node(["User"], props([("id", 7i64)]));
//! let t = g.add_node(["Tweet"], props([("id", 1i64)]));
//! g.add_edge(u, t, "POSTS", Default::default());
//!
//! let rs = execute(&g, "MATCH (:User)-[:POSTS]->(t:Tweet) RETURN COUNT(*) AS c").unwrap();
//! assert_eq!(rs.single_int(), Some(1));
//! ```

pub mod analyzer;
pub mod ast;
pub mod batch;
pub mod error;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan_cache;
pub mod profile;
pub mod regex;

pub use analyzer::{analyze, SemanticIssue};
pub use ast::{
    BinOp, Clause, Direction, Expr, NodePattern, OrderItem, PathPattern, ProjItem, Query,
    RelPattern, Return, UnaryOp,
};
pub use batch::{BatchConfig, BatchSession, BatchStats};
pub use error::{CypherError, Result, Span};
pub use eval::{Binding, EvalCtx, Row};
pub use exec::{
    execute, execute_optimized, execute_optimized_profiled, execute_profiled, execute_query,
    execute_traced, ResultSet,
};
pub use optimizer::{optimize, RewriteStats};
pub use parser::{parse, parse_expr};
pub use plan_cache::{
    fingerprint, normalize_text, CachedPlan, PlanCacheConfig, PlanCacheStats, QueryPlanCache,
};
pub use profile::{PlanNode, QueryProfile};
pub use regex::{Regex, RegexError};
