//! Recursive-descent parser for the Cypher subset.
//!
//! Grammar (lowercase = nonterminal):
//!
//! ```text
//! query      := clause+ return
//! clause     := [OPTIONAL] MATCH pattern (',' pattern)* [WHERE expr]
//!             | WITH [DISTINCT] projItems [WHERE expr]
//!             | UNWIND expr AS ident
//! return     := RETURN [DISTINCT] projItems [ORDER BY orderItems]
//!               [SKIP int] [LIMIT int]
//! pattern    := nodePat (relPat nodePat)*
//! nodePat    := '(' [ident] (':' ident)* [propMap] ')'
//! relPat     := '-' '[' [ident] [':' ident ('|' ident)*] [propMap] ']' ('->'|'-')
//!             | '<-' '[' ... ']' '-'
//! expr       := orExpr  (standard precedence ladder, see functions)
//! ```

use grm_pgraph::Value;

use crate::ast::*;
use crate::error::{CypherError, Result, Span};
use crate::lexer::{lex, Tok, Token};

/// Parses a full query from source text.
pub fn parse(src: &str) -> Result<Query> {
    let tokens = lex(src)?;
    let mut p = Parser { src, tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone expression (used in tests and by the rule
/// translator).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { src, tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser<'s> {
    src: &'s str,
    tokens: Vec<Token>,
    pos: usize,
}

/// Keyword tokens that double as names in label/type/key positions —
/// `MATCH (m:Match)` is legal Cypher even though `Match` lexes as a
/// keyword.
fn is_word(tok: &Tok) -> bool {
    !matches!(
        tok,
        Tok::Ident(_)
            | Tok::IntLit(_)
            | Tok::FloatLit(_)
            | Tok::StrLit(_)
            | Tok::LParen
            | Tok::RParen
            | Tok::LBracket
            | Tok::RBracket
            | Tok::LBrace
            | Tok::RBrace
            | Tok::Colon
            | Tok::Comma
            | Tok::Dot
            | Tok::Pipe
            | Tok::Plus
            | Tok::Minus
            | Tok::Star
            | Tok::Slash
            | Tok::Percent
            | Tok::Caret
            | Tok::Eq
            | Tok::Neq
            | Tok::Lt
            | Tok::Le
            | Tok::Gt
            | Tok::Ge
            | Tok::RegexEq
            | Tok::Arrow
            | Tok::LArrow
            | Tok::Eof
    )
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CypherError::parse(
                format!("expected {what}, found {:?}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(CypherError::parse(
                format!("unexpected trailing input {:?}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        // Names in label/type/key/alias positions may collide with
        // keywords; recover the original spelling from the span.
        if is_word(self.peek()) && !matches!(self.peek(), Tok::Ident(_)) {
            let span = self.span();
            self.bump();
            return Ok(self.src[span.start..span.end].to_owned());
        }
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                Err(CypherError::parse(format!("expected {what}, found {other:?}"), self.span()))
            }
        }
    }

    // -- query structure ----------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut clauses = Vec::new();
        loop {
            match self.peek() {
                Tok::Match | Tok::Optional => clauses.push(self.match_clause()?),
                Tok::With => clauses.push(self.with_clause()?),
                Tok::Unwind => clauses.push(self.unwind_clause()?),
                Tok::Return => break,
                other => {
                    return Err(CypherError::parse(
                        format!("expected clause keyword, found {other:?}"),
                        self.span(),
                    ))
                }
            }
        }
        if clauses.is_empty() && !matches!(self.peek(), Tok::Return) {
            return Err(CypherError::parse("query must start with MATCH/WITH/RETURN", self.span()));
        }
        let ret = self.return_clause()?;
        Ok(Query { clauses, ret })
    }

    fn match_clause(&mut self) -> Result<Clause> {
        let optional = self.eat(&Tok::Optional);
        self.expect(&Tok::Match, "MATCH")?;
        let mut patterns = vec![self.path_pattern()?];
        while self.eat(&Tok::Comma) {
            patterns.push(self.path_pattern()?);
        }
        let where_clause = if self.eat(&Tok::Where) { Some(self.expr()?) } else { None };
        Ok(Clause::Match { optional, patterns, where_clause })
    }

    fn with_clause(&mut self) -> Result<Clause> {
        self.expect(&Tok::With, "WITH")?;
        let distinct = self.eat(&Tok::Distinct);
        let items = self.proj_items()?;
        let where_clause = if self.eat(&Tok::Where) { Some(self.expr()?) } else { None };
        Ok(Clause::With { distinct, items, where_clause })
    }

    fn unwind_clause(&mut self) -> Result<Clause> {
        self.expect(&Tok::Unwind, "UNWIND")?;
        let expr = self.expr()?;
        self.expect(&Tok::As, "AS")?;
        let var = self.ident("variable name")?;
        Ok(Clause::Unwind { expr, var })
    }

    fn return_clause(&mut self) -> Result<Return> {
        self.expect(&Tok::Return, "RETURN")?;
        let distinct = self.eat(&Tok::Distinct);
        let items = self.proj_items()?;
        let mut order_by = Vec::new();
        if self.eat(&Tok::Order) {
            self.expect(&Tok::By, "BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat(&Tok::Desc) {
                    true
                } else {
                    self.eat(&Tok::Asc);
                    false
                };
                order_by.push(OrderItem { expr, descending });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat(&Tok::Skip) { Some(self.uint()?) } else { None };
        let limit = if self.eat(&Tok::Limit) { Some(self.uint()?) } else { None };
        Ok(Return { distinct, items, order_by, skip, limit })
    }

    fn uint(&mut self) -> Result<u64> {
        match self.bump() {
            Tok::IntLit(i) if i >= 0 => Ok(i as u64),
            other => Err(CypherError::parse(
                format!("expected non-negative integer, found {other:?}"),
                self.span(),
            )),
        }
    }

    fn proj_items(&mut self) -> Result<Vec<ProjItem>> {
        let mut items = vec![self.proj_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.proj_item()?);
        }
        Ok(items)
    }

    fn proj_item(&mut self) -> Result<ProjItem> {
        let expr = self.expr()?;
        let alias = if self.eat(&Tok::As) { Some(self.ident("alias")?) } else { None };
        Ok(ProjItem { expr, alias })
    }

    // -- patterns -----------------------------------------------------------

    fn path_pattern(&mut self) -> Result<PathPattern> {
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), Tok::Minus | Tok::LArrow) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok(PathPattern { start, steps })
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect(&Tok::LParen, "'('")?;
        let mut pat = NodePattern::default();
        if let Tok::Ident(_) = self.peek() {
            if let Tok::Ident(name) = self.bump() {
                pat.var = Some(name);
            }
        }
        while self.eat(&Tok::Colon) {
            pat.labels.push(self.ident("node label")?);
        }
        if matches!(self.peek(), Tok::LBrace) {
            pat.props = self.prop_map()?;
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(pat)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern> {
        // `<-[...]-`  or  `-[...]->`  or  `-[...]-`
        let incoming = self.eat(&Tok::LArrow);
        if !incoming {
            self.expect(&Tok::Minus, "'-'")?;
        }
        let mut var = None;
        let mut types = Vec::new();
        let mut props = Vec::new();
        let mut length = None;
        if self.eat(&Tok::LBracket) {
            if let Tok::Ident(_) = self.peek() {
                if let Tok::Ident(name) = self.bump() {
                    var = Some(name);
                }
            }
            if self.eat(&Tok::Colon) {
                types.push(self.ident("relationship type")?);
                while self.eat(&Tok::Pipe) {
                    // `|:TYPE` and `|TYPE` are both accepted.
                    self.eat(&Tok::Colon);
                    types.push(self.ident("relationship type")?);
                }
            }
            if self.eat(&Tok::Star) {
                // Variable-length: `*`, `*n`, `*n..`, `*n..m`, `*..m`.
                let min = match self.peek() {
                    Tok::IntLit(_) => Some(self.uint()? as u32),
                    _ => None,
                };
                let has_range = if matches!(self.peek(), Tok::Dot) {
                    self.expect(&Tok::Dot, "'.'")?;
                    self.expect(&Tok::Dot, "'..'")?;
                    true
                } else {
                    false
                };
                let max = if has_range {
                    match self.peek() {
                        Tok::IntLit(_) => Some(self.uint()? as u32),
                        _ => None,
                    }
                } else {
                    // `*n` means exactly n; bare `*` means 1..∞.
                    min.or(None)
                };
                length = Some(match (min, has_range) {
                    (None, false) => (1, None),
                    (Some(n), false) => (n, Some(n)),
                    (m, true) => (m.unwrap_or(1), max),
                });
            }
            if matches!(self.peek(), Tok::LBrace) {
                props = self.prop_map()?;
            }
            self.expect(&Tok::RBracket, "']'")?;
        }
        let direction = if incoming {
            self.expect(&Tok::Minus, "'-'")?;
            Direction::In
        } else if self.eat(&Tok::Arrow) {
            Direction::Out
        } else {
            self.expect(&Tok::Minus, "'-' or '->'")?;
            Direction::Undirected
        };
        Ok(RelPattern { var, types, props, direction, length })
    }

    fn prop_map(&mut self) -> Result<Vec<(String, Expr)>> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut props = Vec::new();
        if !matches!(self.peek(), Tok::RBrace) {
            loop {
                let key = self.ident("property key")?;
                self.expect(&Tok::Colon, "':'")?;
                let value = self.expr()?;
                props.push((key, value));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace, "'}'")?;
        Ok(props)
    }

    // -- expressions: precedence ladder --------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.xor_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.xor_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Xor) {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // Postfix predicates: IS [NOT] NULL, IN.
        if self.eat(&Tok::Is) {
            let negated = self.eat(&Tok::Not);
            self.expect(&Tok::Null, "NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        if self.eat(&Tok::In) {
            let list = self.additive()?;
            return Ok(Expr::In { expr: Box::new(lhs), list: Box::new(list) });
        }
        if self.eat(&Tok::Starts) {
            self.expect(&Tok::With, "WITH after STARTS")?;
            let rhs = self.additive()?;
            return Ok(Expr::binary(BinOp::StartsWith, lhs, rhs));
        }
        if self.eat(&Tok::Ends) {
            self.expect(&Tok::With, "WITH after ENDS")?;
            let rhs = self.additive()?;
            return Ok(Expr::binary(BinOp::EndsWith, lhs, rhs));
        }
        if self.eat(&Tok::Contains) {
            let rhs = self.additive()?;
            return Ok(Expr::binary(BinOp::Contains, lhs, rhs));
        }
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Neq => BinOp::Neq,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::RegexEq => BinOp::Regex,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<Expr> {
        let lhs = self.unary()?;
        if self.eat(&Tok::Caret) {
            // Right-associative.
            let rhs = self.power()?;
            return Ok(Expr::binary(BinOp::Pow, lhs, rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat(&Tok::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        while self.eat(&Tok::Dot) {
            let key = self.ident("property key")?;
            e = Expr::Prop { base: Box::new(e), key };
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::IntLit(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Tok::FloatLit(x) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Tok::Null => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket, "']'")?;
                Ok(Expr::List(items))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Exists => {
                // `EXISTS(n.prop)` keyword form.
                self.bump();
                self.expect(&Tok::LParen, "'('")?;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(Expr::ExistsProp(Box::new(inner)))
            }
            Tok::Ident(name) => {
                // Function call or plain variable.
                if matches!(self.peek2(), Tok::LParen) {
                    self.bump();
                    self.bump(); // '('
                    let lname = name.to_ascii_lowercase();
                    if self.eat(&Tok::Star) {
                        self.expect(&Tok::RParen, "')'")?;
                        if lname != "count" {
                            return Err(CypherError::parse(
                                format!("'*' argument only valid in COUNT, not {name}"),
                                self.span(),
                            ));
                        }
                        return Ok(Expr::FnCall {
                            name: lname,
                            distinct: false,
                            star: true,
                            args: vec![],
                        });
                    }
                    let distinct = self.eat(&Tok::Distinct);
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Expr::FnCall { name: lname, distinct, star: false, args })
                } else {
                    self.bump();
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CypherError::parse(
                format!("expected expression, found {other:?}"),
                self.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_tournament_query() {
        let q = parse(
            "MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match)\n\
             WITH t.id AS tournament_id, m.id AS match_id, COUNT(*) AS count\n\
             WHERE count = 1\n\
             RETURN COUNT(*) AS support;",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 2);
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                let p = &patterns[0];
                assert_eq!(p.start.labels, vec!["Tournament"]);
                assert_eq!(p.steps[0].0.direction, Direction::Out);
                assert_eq!(p.steps[0].0.types, vec!["IN_TOURNAMENT"]);
                assert_eq!(p.steps[0].1.labels, vec!["Match"]);
            }
            other => panic!("expected MATCH, got {other:?}"),
        }
        assert_eq!(q.ret.items[0].alias.as_deref(), Some("support"));
    }

    #[test]
    fn parses_incoming_direction() {
        let q = parse("MATCH (m:Match)<-[:PLAYED_IN]-(p:Person) RETURN p").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].steps[0].0.direction, Direction::In);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_where_with_regex() {
        let q = parse("MATCH (n) WHERE n.domain =~ '^[a-z]+$' RETURN COUNT(*) AS c").unwrap();
        match &q.clauses[0] {
            Clause::Match { where_clause: Some(Expr::Binary { op, .. }), .. } => {
                assert_eq!(*op, BinOp::Regex);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_is_null_and_is_not_null() {
        let e = parse_expr("n.x IS NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: false, .. }));
        let e = parse_expr("n.x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse_expr("a OR b AND c").unwrap();
        match e {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collect_distinct_and_size() {
        let q = parse(
            "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match) \
             WITH m.id AS mid, COLLECT(DISTINCT p.name) AS names \
             WHERE SIZE(names) > 1 RETURN mid, names",
        )
        .unwrap();
        match &q.clauses[1] {
            Clause::With { items, where_clause, .. } => {
                assert_eq!(items.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_property_map_in_pattern() {
        let q = parse("MATCH (n:User {verified: true}) RETURN n").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].start.props.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn multiple_rel_types() {
        let q = parse("MATCH (a)-[:X|Y]->(b) RETURN a").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].steps[0].0.types, vec!["X", "Y"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn exists_keyword_form() {
        let e = parse_expr("EXISTS(n.date)").unwrap();
        assert!(matches!(e, Expr::ExistsProp(_)));
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse("MATCH (n:X) RETURN n.id ORDER BY n.id DESC LIMIT 5").unwrap();
        assert_eq!(q.ret.order_by.len(), 1);
        assert!(q.ret.order_by[0].descending);
        assert_eq!(q.ret.limit, Some(5));
    }

    #[test]
    fn error_on_missing_return() {
        assert!(parse("MATCH (n)").is_err());
    }

    #[test]
    fn error_on_the_papers_syntax_slip() {
        // §4.4: `{2,}` written as `(2,)` inside a string is fine, but a
        // stray `=` where `=~` belongs still parses (it's valid
        // comparison syntax) — whereas a malformed pattern like a
        // dangling operator must not.
        assert!(parse("MATCH (n) WHERE n.x = RETURN COUNT(*)").is_err());
    }

    #[test]
    fn roundtrip_parse_render_parse() {
        let src = "MATCH (t:Tournament)<-[:IN_TOURNAMENT]-(m:Match) \
                   WHERE m.id IS NOT NULL \
                   RETURN COUNT(DISTINCT m.id) AS c LIMIT 3";
        let q1 = parse(src).unwrap();
        let rendered = q1.to_string();
        let q2 = parse(&rendered).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn undirected_pattern() {
        let q = parse("MATCH (a)-[:K]-(b) RETURN a").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].steps[0].0.direction, Direction::Undirected);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn string_predicates_parse_and_render() {
        for src in [
            "MATCH (n:User) WHERE n.name STARTS WITH 'a' RETURN COUNT(*) AS c",
            "MATCH (n:User) WHERE n.name ENDS WITH 'z' RETURN COUNT(*) AS c",
            "MATCH (n:User) WHERE n.bio CONTAINS 'rust' RETURN COUNT(*) AS c",
        ] {
            let q = parse(src).unwrap();
            assert_eq!(parse(&q.to_string()).unwrap(), q, "{src}");
        }
    }

    #[test]
    fn contains_still_works_as_relationship_type() {
        // The CONTAINS keyword must not break `[:CONTAINS]` patterns
        // (the Twitter and Cybersecurity datasets both use the type).
        let q = parse("MATCH (a:OU)-[:CONTAINS]->(u:User) RETURN COUNT(*) AS c").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].steps[0].0.types, vec!["CONTAINS"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unwind_clause_parses() {
        let q = parse("MATCH (n:A) WITH COLLECT(n.id) AS ids UNWIND ids AS id RETURN id").unwrap();
        assert!(matches!(q.clauses[2], Clause::Unwind { .. }));
    }

    #[test]
    fn variable_length_patterns_parse() {
        let cases = [
            ("MATCH (a)-[:E*]->(b) RETURN a", (1, None)),
            ("MATCH (a)-[:E*3]->(b) RETURN a", (3, Some(3))),
            ("MATCH (a)-[:E*1..4]->(b) RETURN a", (1, Some(4))),
            ("MATCH (a)-[:E*..4]->(b) RETURN a", (1, Some(4))),
            ("MATCH (a)-[:E*2..]->(b) RETURN a", (2, None)),
        ];
        for (src, want) in cases {
            let q = parse(src).unwrap();
            match &q.clauses[0] {
                Clause::Match { patterns, .. } => {
                    assert_eq!(patterns[0].steps[0].0.length, Some(want), "{src}");
                }
                _ => unreachable!(),
            }
            // Round-trips through the renderer.
            let q2 = parse(&q.to_string()).unwrap();
            assert_eq!(q, q2, "{src}");
        }
    }

    #[test]
    fn string_concat_parses_as_add() {
        let e = parse_expr("p.name + ':' + toString(m.score)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }
}
