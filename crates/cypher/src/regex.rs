//! Minimal regular-expression engine backing Cypher's `=~` operator.
//!
//! The sanctioned dependency set has no regex crate, and the paper's
//! generated rules use patterns like `^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$`
//! (the *domain format* rule of §4.4), so we implement the required
//! subset from scratch:
//!
//! * literals, `.`;
//! * classes `[a-z0-9_-]`, negated classes `[^...]`;
//! * escapes `\d \D \w \W \s \S` and escaped metacharacters;
//! * quantifiers `* + ?` and bounded `{m}`, `{m,}`, `{m,n}` (greedy);
//! * groups `(...)` and alternation `|`;
//! * anchors `^` / `$`.
//!
//! Matching uses continuation-passing backtracking — exponential in
//! the worst case but the rule patterns are tiny. Semantics follow
//! Cypher's `=~`: the **whole** string must match.

use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    pub message: String,
    pub pos: usize,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.pos, self.message)
    }
}
impl std::error::Error for RegexError {}

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Char(char),
    AnyChar,
    Class { neg: bool, ranges: Vec<(char, char)> },
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat { node: Box<Ast>, min: u32, max: Option<u32> },
    StartAnchor,
    EndAnchor,
    Empty,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    ast: Ast,
    source: String,
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { chars: src.chars().collect(), pos: 0, src }
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError { message: message.into(), pos: self.pos }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 { branches.pop().unwrap() } else { Ast::Alt(branches) })
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    /// repeat := atom quantifier?
    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.number()?;
                if self.eat('}') {
                    (min, Some(min))
                } else if self.eat(',') {
                    if self.eat('}') {
                        (min, None)
                    } else {
                        let max = self.number()?;
                        if !self.eat('}') {
                            return Err(self.err("expected '}' in quantifier"));
                        }
                        if max < min {
                            return Err(self.err("quantifier max < min"));
                        }
                        (min, Some(max))
                    }
                } else {
                    return Err(self.err("expected ',' or '}' in quantifier"));
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor) {
            return Err(self.err("cannot quantify an anchor"));
        }
        Ok(Ast::Repeat { node: Box::new(atom), min, max })
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .map_err(|_| self.err("quantifier bound too large"))
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('(') => {
                // Non-capturing prefix is accepted and ignored.
                if self.peek() == Some('?') {
                    self.bump();
                    if !self.eat(':') {
                        return Err(self.err("only (?: ) groups are supported"));
                    }
                }
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?' | ')' | '{' | '}')) => {
                Err(self.err(format!("unexpected metacharacter {c:?}")))
            }
            Some(c) => Ok(Ast::Char(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<Ast, RegexError> {
        let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
        Ok(match c {
            'd' => Ast::Class { neg: false, ranges: vec![('0', '9')] },
            'D' => Ast::Class { neg: true, ranges: vec![('0', '9')] },
            'w' => Ast::Class {
                neg: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            },
            'W' => Ast::Class {
                neg: true,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            },
            's' => Ast::Class {
                neg: false,
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            },
            'S' => Ast::Class {
                neg: true,
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            },
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            other => Ast::Char(other),
        })
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        let neg = self.eat('^');
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = match self.peek() {
                None => return Err(self.err("unclosed character class")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    self.bump();
                    c
                }
            };
            first = false;
            let lo = if c == '\\' {
                match self.escape()? {
                    Ast::Char(c) => c,
                    Ast::Class { neg: false, ranges: rs } => {
                        ranges.extend(rs);
                        continue;
                    }
                    _ => return Err(self.err("unsupported escape in class")),
                }
            } else {
                c
            };
            // Range `a-z` (a trailing '-' is a literal dash).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump().ok_or_else(|| self.err("unclosed range"))?;
                let hi = if hi == '\\' {
                    match self.escape()? {
                        Ast::Char(c) => c,
                        _ => return Err(self.err("bad range endpoint")),
                    }
                } else {
                    hi
                };
                if hi < lo {
                    return Err(self.err("reversed range in class"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class { neg, ranges })
    }
}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let mut p = Parser::new(pattern);
        let ast = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(p.err("trailing characters in pattern"));
        }
        let _ = p.src;
        Ok(Regex { ast, source: pattern.to_owned() })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// Cypher `=~` semantics: the entire `text` must match.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        matches(&self.ast, &chars, 0, &mut |end| end == chars.len())
    }
}

/// Continuation-passing backtracking matcher: tries every way `ast`
/// can match starting at `pos`; succeeds iff some way satisfies `k`.
fn matches(ast: &Ast, text: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match ast {
        Ast::Empty => k(pos),
        Ast::Char(c) => text.get(pos) == Some(c) && k(pos + 1),
        Ast::AnyChar => pos < text.len() && k(pos + 1),
        Ast::Class { neg, ranges } => match text.get(pos) {
            None => false,
            Some(c) => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= *c && *c <= *hi);
                inside != *neg && k(pos + 1)
            }
        },
        Ast::StartAnchor => pos == 0 && k(pos),
        Ast::EndAnchor => pos == text.len() && k(pos),
        Ast::Alt(branches) => branches.iter().any(|b| matches(b, text, pos, k)),
        Ast::Concat(parts) => concat_match(parts, text, pos, k),
        Ast::Repeat { node, min, max } => repeat_match(node, *min, *max, text, pos, k),
    }
}

fn concat_match(
    parts: &[Ast],
    text: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match parts.split_first() {
        None => k(pos),
        Some((head, tail)) => matches(head, text, pos, &mut |p| concat_match(tail, text, p, k)),
    }
}

fn repeat_match(
    node: &Ast,
    min: u32,
    max: Option<u32>,
    text: &[char],
    pos: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if min > 0 {
        // Consume one mandatory repetition, then recurse.
        return matches(node, text, pos, &mut |p| {
            repeat_match(node, min - 1, max.map(|m| m - 1), text, p, k)
        });
    }
    if max == Some(0) {
        return k(pos);
    }
    // Greedy: try one more repetition first (guarding against
    // zero-width inner matches that would loop forever), then fall
    // back to stopping here.
    let more = matches(node, text, pos, &mut |p| {
        p > pos && repeat_match(node, 0, max.map(|m| m - 1), text, p, k)
    });
    more || k(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_full_match() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd")); // Cypher =~ is full-string
        assert!(!m("abc", "xabc"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("[a-z]+", "hello"));
        assert!(!m("[a-z]+", "Hello"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "a1c"));
    }

    #[test]
    fn dash_in_class_is_literal_at_end() {
        assert!(m("[a-z-]+", "a-b"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(m("a{2,}", "aaaa"));
        assert!(!m("a{2,}", "a"));
        assert!(m("a{1,3}", "aa"));
        assert!(!m("a{1,3}", "aaaa"));
    }

    #[test]
    fn groups_and_alternation() {
        assert!(m("(ab)+", "abab"));
        assert!(m("cat|dog", "dog"));
        assert!(m("(a|b)c", "bc"));
        assert!(m("(?:xy)+z", "xyxyz"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d{4}", "2019"));
        assert!(m(r"\w+", "ab_9"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\s", " "));
    }

    #[test]
    fn the_papers_domain_pattern() {
        // From §4.4: "^([a-zA-Z0-9-]+\\.)+[a-zA-Z]{2,}$"
        let pat = r"^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$";
        assert!(m(pat, "example.com"));
        assert!(m(pat, "sub.domain.example.org"));
        assert!(!m(pat, "nodots"));
        assert!(!m(pat, "bad..com"));
        assert!(!m(pat, "trailing.c0m"));
    }

    #[test]
    fn anchors_behave_with_full_match() {
        assert!(m("^abc$", "abc"));
        assert!(!m("a^b", "ab")); // mid-pattern anchor can't hold
    }

    #[test]
    fn date_pattern() {
        let pat = r"\d{4}-\d{2}-\d{2}";
        assert!(m(pat, "2019-06-11"));
        assert!(!m(pat, "2019-6-11"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,}}").is_err());
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn zero_width_repeat_terminates() {
        // `()*` style degenerate pattern must not loop forever.
        assert!(m("(a?)*b", "b"));
        assert!(m("(a?)*b", "aab"));
    }

    #[test]
    fn nested_quantified_groups() {
        assert!(m("((ab)+c)+", "ababcabc"));
        assert!(!m("((ab)+c)+", "ababc_"));
    }
}
