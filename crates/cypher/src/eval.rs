//! Expression evaluation with Cypher's three-valued logic.
//!
//! `NULL` propagates through comparisons and arithmetic, `AND`/`OR`
//! follow Kleene logic, and property access on an element that lacks
//! the key yields `NULL` rather than an error — this last point is
//! what makes a *hallucinated property* (paper §4.4, error class 2)
//! produce an empty-but-running query instead of a failure.

use std::collections::HashMap;

use grm_pgraph::{EdgeId, NodeId, PropertyGraph, Value};

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::error::{CypherError, Result};
use crate::profile::Profiler;

/// What a variable may be bound to during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    Node(NodeId),
    Edge(EdgeId),
    Val(Value),
}

impl Binding {
    /// Projects the binding to a plain value (for result sets and
    /// grouping). Nodes/edges project to an opaque id string — the
    /// paper's rules only ever count or compare them.
    pub fn to_value(&self, g: &PropertyGraph) -> Value {
        match self {
            Binding::Node(id) => {
                let n = g.node(*id);
                Value::Str(format!("({}:{})", id, n.labels.join(":")))
            }
            Binding::Edge(id) => {
                let e = g.edge(*id);
                Value::Str(format!("[{}:{}]", id, e.label))
            }
            Binding::Val(v) => v.clone(),
        }
    }
}

/// A row of variable bindings.
pub type Row = HashMap<String, Binding>;

/// Evaluation context: the graph being queried, plus the profiler
/// when the query runs under `PROFILE` (property reads anywhere in
/// expression evaluation charge a db-hit to whichever operator is
/// current).
pub struct EvalCtx<'g> {
    pub graph: &'g PropertyGraph,
    prof: Option<&'g Profiler>,
}

impl<'g> EvalCtx<'g> {
    pub fn new(graph: &'g PropertyGraph) -> Self {
        EvalCtx { graph, prof: None }
    }

    /// A context charging db-hits to `prof`'s current operator.
    pub(crate) fn with_profiler(graph: &'g PropertyGraph, prof: Option<&'g Profiler>) -> Self {
        EvalCtx { graph, prof }
    }

    /// Charges one property-map lookup to the current operator. Used
    /// by the executor for the property reads it performs directly.
    pub(crate) fn record_prop_read(&self) {
        if let Some(p) = self.prof {
            p.hit_props(1);
        }
    }

    /// Evaluates `expr` under `row` to a value. Aggregate calls are
    /// rejected here — they are handled by the projection operator.
    pub fn eval(&self, expr: &Expr, row: &Row) -> Result<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Var(name) => match row.get(name) {
                Some(b) => Ok(b.to_value(self.graph)),
                None => Err(CypherError::semantic(format!("unknown variable `{name}`"))),
            },
            Expr::Prop { base, key } => self.eval_prop(base, key, row),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, row)?;
                match op {
                    UnaryOp::Not => Ok(match v.as_truth() {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(CypherError::runtime(format!(
                            "cannot negate {}",
                            other.type_name()
                        ))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, row),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::In { expr, list } => {
                let needle = self.eval(expr, row)?;
                let haystack = self.eval(list, row)?;
                match haystack {
                    Value::Null => Ok(Value::Null),
                    Value::List(items) => {
                        if needle.is_null() {
                            return Ok(Value::Null);
                        }
                        let mut saw_null = false;
                        for item in &items {
                            match needle.cypher_eq(item) {
                                Some(true) => return Ok(Value::Bool(true)),
                                Some(false) => {}
                                None => saw_null = true,
                            }
                        }
                        Ok(if saw_null { Value::Null } else { Value::Bool(false) })
                    }
                    other => Err(CypherError::runtime(format!(
                        "IN expects a list, got {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::List(items) => {
                let vals: Result<Vec<Value>> = items.iter().map(|e| self.eval(e, row)).collect();
                Ok(Value::List(vals?))
            }
            Expr::ExistsProp(inner) => {
                let v = self.eval(inner, row)?;
                Ok(Value::Bool(!v.is_null()))
            }
            Expr::FnCall { name, args, star, .. } => {
                if *star || crate::ast::is_aggregate_fn(name) {
                    return Err(CypherError::semantic(format!(
                        "aggregate function {name} not allowed in this context"
                    )));
                }
                self.eval_scalar_fn(name, args, row)
            }
        }
    }

    /// Boolean filter semantics: `NULL` and non-booleans filter out.
    pub fn eval_filter(&self, expr: &Expr, row: &Row) -> Result<bool> {
        Ok(self.eval(expr, row)?.as_truth().unwrap_or(false))
    }

    fn eval_prop(&self, base: &Expr, key: &str, row: &Row) -> Result<Value> {
        // Fast path: `var.key` on a bound graph element.
        if let Expr::Var(name) = base {
            match row.get(name) {
                Some(Binding::Node(id)) => {
                    self.record_prop_read();
                    return Ok(self.graph.node(*id).prop(key).clone());
                }
                Some(Binding::Edge(id)) => {
                    self.record_prop_read();
                    return Ok(self.graph.edge(*id).prop(key).clone());
                }
                Some(Binding::Val(Value::Null)) => return Ok(Value::Null),
                Some(Binding::Val(other)) => {
                    return Err(CypherError::runtime(format!(
                        "property access on {} value `{name}`",
                        other.type_name()
                    )))
                }
                None => return Err(CypherError::semantic(format!("unknown variable `{name}`"))),
            }
        }
        // `expr.key` on a computed value: only NULL passes through.
        let v = self.eval(base, row)?;
        if v.is_null() {
            Ok(Value::Null)
        } else {
            Err(CypherError::runtime(format!("property access on {} value", v.type_name())))
        }
    }

    fn eval_binary(&self, op: BinOp, lhs: &Expr, rhs: &Expr, row: &Row) -> Result<Value> {
        use BinOp::*;
        // Kleene logic needs lazy handling of NULL, evaluate both but
        // combine carefully (expressions here are side-effect free).
        if matches!(op, And | Or | Xor) {
            let l = self.eval(lhs, row)?.as_truth();
            let r = self.eval(rhs, row)?.as_truth();
            let out = match (op, l, r) {
                (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                (And, Some(true), Some(true)) => Some(true),
                (And, _, _) => None,
                (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                (Or, Some(false), Some(false)) => Some(false),
                (Or, _, _) => None,
                (Xor, Some(a), Some(b)) => Some(a != b),
                (Xor, _, _) => None,
                _ => unreachable!(),
            };
            return Ok(out.map(Value::Bool).unwrap_or(Value::Null));
        }
        let l = self.eval(lhs, row)?;
        let r = self.eval(rhs, row)?;
        match op {
            Eq => Ok(l.cypher_eq(&r).map(Value::Bool).unwrap_or(Value::Null)),
            Neq => Ok(l.cypher_eq(&r).map(|b| Value::Bool(!b)).unwrap_or(Value::Null)),
            Lt | Le | Gt | Ge => {
                let ord = l.cypher_cmp(&r);
                Ok(match ord {
                    None => Value::Null,
                    Some(o) => Value::Bool(match op {
                        Lt => o.is_lt(),
                        Le => o.is_le(),
                        Gt => o.is_gt(),
                        Ge => o.is_ge(),
                        _ => unreachable!(),
                    }),
                })
            }
            StartsWith | EndsWith | Contains => match (&l, &r) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(a), Value::Str(b)) => Ok(Value::Bool(match op {
                    StartsWith => a.starts_with(b.as_str()),
                    EndsWith => a.ends_with(b.as_str()),
                    Contains => a.contains(b.as_str()),
                    _ => unreachable!(),
                })),
                _ => Err(CypherError::runtime(format!(
                    "{op:?} expects STRING operands, got {} and {}",
                    l.type_name(),
                    r.type_name()
                ))),
            },
            Regex => match (&l, &r) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    let re = crate::regex::Regex::new(pat)
                        .map_err(|e| CypherError::runtime(format!("invalid regex {pat:?}: {e}")))?;
                    Ok(Value::Bool(re.is_match(s)))
                }
                // Neo4j raises a type error when `=~` is applied to a
                // non-string subject.
                _ => Err(CypherError::runtime(format!(
                    "=~ expects STRING operands, got {} and {}",
                    l.type_name(),
                    r.type_name()
                ))),
            },
            Add => self.arith(l, r, op),
            Sub | Mul | Div | Mod | Pow => self.arith(l, r, op),
            And | Or | Xor => unreachable!("handled above"),
        }
    }

    fn arith(&self, l: Value, r: Value, op: BinOp) -> Result<Value> {
        use BinOp::*;
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        // String / list concatenation with `+`.
        if op == Add {
            match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => return Ok(Value::Str(format!("{a}{b}"))),
                (Value::Str(a), b) => return Ok(Value::Str(format!("{a}{b}"))),
                (a, Value::Str(b)) => return Ok(Value::Str(format!("{a}{b}"))),
                (Value::List(a), Value::List(b)) => {
                    let mut out = a.clone();
                    out.extend(b.clone());
                    return Ok(Value::List(out));
                }
                _ => {}
            }
        }
        // Integer arithmetic stays integral (Cypher semantics).
        if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
            let (a, b) = (*a, *b);
            return Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(CypherError::runtime("division by zero"));
                    }
                    Value::Int(a / b)
                }
                Mod => {
                    if b == 0 {
                        return Err(CypherError::runtime("modulo by zero"));
                    }
                    Value::Int(a % b)
                }
                Pow => Value::Float((a as f64).powf(b as f64)),
                _ => unreachable!(),
            });
        }
        match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => Value::Float(a / b),
                Mod => Value::Float(a % b),
                Pow => Value::Float(a.powf(b)),
                _ => unreachable!(),
            }),
            _ => Err(CypherError::runtime(format!(
                "cannot apply {op:?} to {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        }
    }

    fn eval_scalar_fn(&self, name: &str, args: &[Expr], row: &Row) -> Result<Value> {
        let arity = |n: usize| -> Result<()> {
            if args.len() == n {
                Ok(())
            } else {
                Err(CypherError::semantic(format!(
                    "{name}() expects {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        match name {
            "size" | "length" => {
                arity(1)?;
                match self.eval(&args[0], row)? {
                    Value::Null => Ok(Value::Null),
                    Value::List(items) => Ok(Value::Int(items.len() as i64)),
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    other => Err(CypherError::runtime(format!(
                        "size() expects LIST or STRING, got {}",
                        other.type_name()
                    ))),
                }
            }
            "tostring" => {
                arity(1)?;
                Ok(match self.eval(&args[0], row)? {
                    Value::Null => Value::Null,
                    Value::Str(s) => Value::Str(s),
                    other => Value::Str(other.to_string()),
                })
            }
            "tolower" => {
                arity(1)?;
                match self.eval(&args[0], row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                    other => Err(CypherError::runtime(format!(
                        "toLower() expects STRING, got {}",
                        other.type_name()
                    ))),
                }
            }
            "toupper" => {
                arity(1)?;
                match self.eval(&args[0], row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                    other => Err(CypherError::runtime(format!(
                        "toUpper() expects STRING, got {}",
                        other.type_name()
                    ))),
                }
            }
            "tointeger" => {
                arity(1)?;
                Ok(match self.eval(&args[0], row)? {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(i),
                    Value::Float(f) => Value::Int(f as i64),
                    Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
                    _ => Value::Null,
                })
            }
            "abs" => {
                arity(1)?;
                match self.eval(&args[0], row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(i.abs())),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    other => Err(CypherError::runtime(format!(
                        "abs() expects a number, got {}",
                        other.type_name()
                    ))),
                }
            }
            "coalesce" => {
                for a in args {
                    let v = self.eval(a, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            "id" => {
                arity(1)?;
                if let Expr::Var(v) = &args[0] {
                    match row.get(v) {
                        Some(Binding::Node(id)) => return Ok(Value::Int(i64::from(id.0))),
                        Some(Binding::Edge(id)) => return Ok(Value::Int(i64::from(id.0))),
                        _ => {}
                    }
                }
                Err(CypherError::runtime("id() expects a bound node or relationship"))
            }
            "labels" => {
                arity(1)?;
                if let Expr::Var(v) = &args[0] {
                    if let Some(Binding::Node(id)) = row.get(v) {
                        let labels = self
                            .graph
                            .node(*id)
                            .labels
                            .iter()
                            .map(|l| Value::Str(l.clone()))
                            .collect();
                        return Ok(Value::List(labels));
                    }
                }
                Err(CypherError::runtime("labels() expects a bound node"))
            }
            "type" => {
                arity(1)?;
                if let Expr::Var(v) = &args[0] {
                    if let Some(Binding::Edge(id)) = row.get(v) {
                        return Ok(Value::Str(self.graph.edge(*id).label.clone()));
                    }
                }
                Err(CypherError::runtime("type() expects a bound relationship"))
            }
            "exists" => {
                arity(1)?;
                let v = self.eval(&args[0], row)?;
                Ok(Value::Bool(!v.is_null()))
            }
            other => Err(CypherError::semantic(format!("unknown function `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use grm_pgraph::{props, PropertyGraph};

    fn ctx_and_row() -> (PropertyGraph, Row) {
        let mut g = PropertyGraph::new();
        let n = g.add_node(
            ["Person"],
            props([
                ("name", Value::from("Ada")),
                ("age", Value::Int(36)),
                ("domain", Value::from("example.com")),
            ]),
        );
        let m = g.add_node(["Match"], props([("id", Value::from("m1"))]));
        let e = g.add_edge(n, m, "PLAYED_IN", props([("minutes", Value::Int(90))]));
        let mut row = Row::new();
        row.insert("n".into(), Binding::Node(n));
        row.insert("m".into(), Binding::Node(m));
        row.insert("r".into(), Binding::Edge(e));
        (g, row)
    }

    fn ev(src: &str) -> Value {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        ctx.eval(&parse_expr(src).unwrap(), &row).unwrap()
    }

    #[test]
    fn property_access() {
        assert_eq!(ev("n.name"), Value::from("Ada"));
        assert_eq!(ev("r.minutes"), Value::Int(90));
        // Missing ("hallucinated") property reads NULL, not error.
        assert_eq!(ev("n.penaltyScore"), Value::Null);
    }

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(ev("n.ghost = 1"), Value::Null);
        assert_eq!(ev("n.ghost > 1"), Value::Null);
        assert_eq!(ev("n.ghost + 1"), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        assert_eq!(ev("n.ghost = 1 AND false"), Value::Bool(false));
        assert_eq!(ev("n.ghost = 1 OR true"), Value::Bool(true));
        assert_eq!(ev("n.ghost = 1 AND true"), Value::Null);
        assert_eq!(ev("NOT (n.ghost = 1)"), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(ev("n.ghost IS NULL"), Value::Bool(true));
        assert_eq!(ev("n.name IS NOT NULL"), Value::Bool(true));
    }

    #[test]
    fn regex_match() {
        assert_eq!(ev(r"n.domain =~ '^([a-zA-Z0-9-]+\.)+[a-zA-Z]{2,}$'"), Value::Bool(true));
        assert_eq!(ev("n.name =~ '^[0-9]+$'"), Value::Bool(false));
        assert_eq!(ev("n.ghost =~ '^a$'"), Value::Null);
    }

    #[test]
    fn string_predicates() {
        assert_eq!(ev("n.name STARTS WITH 'A'"), Value::Bool(true));
        assert_eq!(ev("n.name STARTS WITH 'B'"), Value::Bool(false));
        assert_eq!(ev("n.name ENDS WITH 'da'"), Value::Bool(true));
        assert_eq!(ev("n.domain CONTAINS 'ample'"), Value::Bool(true));
        assert_eq!(ev("n.domain CONTAINS 'nope'"), Value::Bool(false));
        // NULL propagates.
        assert_eq!(ev("n.ghost CONTAINS 'x'"), Value::Null);
    }

    #[test]
    fn string_predicates_on_non_strings_error() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        assert!(ctx.eval(&parse_expr("n.age CONTAINS 'x'").unwrap(), &row).is_err());
    }

    #[test]
    fn regex_on_non_string_is_error() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        let e = parse_expr("n.age =~ 'x'").unwrap();
        assert!(ctx.eval(&e, &row).is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("1 + 2 * 3"), Value::Int(7));
        assert_eq!(ev("7 / 2"), Value::Int(3));
        assert_eq!(ev("7.0 / 2"), Value::Float(3.5));
        assert_eq!(ev("7 % 3"), Value::Int(1));
    }

    #[test]
    fn division_by_zero_is_error() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        assert!(ctx.eval(&parse_expr("1 / 0").unwrap(), &row).is_err());
    }

    #[test]
    fn string_concat() {
        assert_eq!(ev("n.name + ':' + toString(n.age)"), Value::from("Ada:36"));
    }

    #[test]
    fn in_operator() {
        assert_eq!(ev("n.age IN [35, 36]"), Value::Bool(true));
        assert_eq!(ev("n.age IN [1, 2]"), Value::Bool(false));
        assert_eq!(ev("n.ghost IN [1]"), Value::Null);
        assert_eq!(ev("1 IN [n.ghost, 2]"), Value::Null);
        assert_eq!(ev("2 IN [n.ghost, 2]"), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(ev("size([1,2,3])"), Value::Int(3));
        assert_eq!(ev("size(n.name)"), Value::Int(3));
        assert_eq!(ev("toLower('ABC')"), Value::from("abc"));
        assert_eq!(ev("toUpper('abc')"), Value::from("ABC"));
        assert_eq!(ev("toInteger('42')"), Value::Int(42));
        assert_eq!(ev("toInteger('nope')"), Value::Null);
        assert_eq!(ev("coalesce(n.ghost, n.name)"), Value::from("Ada"));
        assert_eq!(ev("abs(-3)"), Value::Int(3));
        assert_eq!(ev("type(r)"), Value::from("PLAYED_IN"));
        assert_eq!(ev("labels(m)"), Value::List(vec![Value::from("Match")]));
        assert_eq!(ev("EXISTS(n.name)"), Value::Bool(true));
        assert_eq!(ev("EXISTS(n.ghost)"), Value::Bool(false));
    }

    #[test]
    fn filter_semantics_treat_null_as_false() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        assert!(!ctx.eval_filter(&parse_expr("n.ghost = 1").unwrap(), &row).unwrap());
        assert!(ctx.eval_filter(&parse_expr("n.age = 36").unwrap(), &row).unwrap());
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        assert!(ctx.eval(&parse_expr("COUNT(*)").unwrap(), &row).is_err());
    }

    #[test]
    fn unknown_variable_is_semantic_error() {
        let (g, row) = ctx_and_row();
        let ctx = EvalCtx::new(&g);
        assert!(matches!(
            ctx.eval(&parse_expr("zz.name").unwrap(), &row),
            Err(CypherError::Semantic { .. })
        ));
    }
}
