//! Hashed query-plan cache.
//!
//! Compiled (parsed + optimized) queries are keyed on the FNV-1a
//! fingerprint of their whitespace-normalized source text plus the
//! graph's schema epoch ([`grm_pgraph::PropertyGraph::epoch`]), so a
//! mutated graph can never serve a plan optimized against stale
//! statistics. Time-to-live and LRU eviction run on a *logical* clock
//! (one tick per lookup) — no wall time anywhere — which keeps cache
//! behaviour, and therefore every journaled counter, byte-identical
//! across runs.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::Query;
use crate::optimizer::RewriteStats;

/// Collapses runs of whitespace to single spaces and trims — the
/// normalization under which two spellings of a query share one cache
/// entry.
pub fn normalize_text(src: &str) -> String {
    src.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// FNV-1a over `text`. Deterministic across processes (unlike the
/// standard library's seeded hasher), so fingerprints are safe to
/// journal or compare across runs.
pub fn fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sizing and expiry policy for a [`QueryPlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheConfig {
    /// Maximum cached plans; the least recently used entry is evicted
    /// to admit a new one. Treated as at least 1.
    pub capacity: usize,
    /// Expire entries older than this many lookups (logical ticks);
    /// `None` never expires.
    pub ttl_lookups: Option<u64>,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig { capacity: 256, ttl_lookups: None }
    }
}

/// Hit/miss/eviction counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Total lookups (`hits + misses`).
    pub lookups: u64,
    /// Lookups served from a cached plan.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, stale epoch, or
    /// expired).
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries dropped by the TTL.
    pub expirations: u64,
}

impl PlanCacheStats {
    /// Hits as a percentage of lookups (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.lookups as f64
        }
    }
}

/// A compiled query as the cache stores it: the (possibly rewritten)
/// AST ready for the executor, plus what the optimizer did to it.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// Executable (optimized) form of the query.
    pub query: Query,
    /// Rewrites the optimizer applied when compiling this plan.
    pub rewrites: RewriteStats,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// Normalized source text — guards against fingerprint collisions.
    text: String,
    epoch: u64,
    plan: Arc<CachedPlan>,
    cached_at: u64,
    last_used: u64,
}

/// The cache. Single-writer by design: scoring sessions own one each.
#[derive(Debug)]
pub struct QueryPlanCache {
    entries: HashMap<u64, CacheEntry>,
    config: PlanCacheConfig,
    tick: u64,
    stats: PlanCacheStats,
}

impl QueryPlanCache {
    /// Empty cache under `config`.
    pub fn new(config: PlanCacheConfig) -> Self {
        QueryPlanCache {
            entries: HashMap::new(),
            config,
            tick: 0,
            stats: PlanCacheStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the plan for (`text`, `epoch`), advancing the logical
    /// clock. An entry compiled under a different epoch (the graph
    /// changed) or older than the TTL is dropped and reported as a
    /// miss.
    pub fn lookup(&mut self, text: &str, epoch: u64) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        self.stats.lookups += 1;
        let key = fingerprint(text);
        let mut expired = false;
        let mut stale = false;
        let mut found = None;
        if let Some(e) = self.entries.get_mut(&key) {
            if self
                .config
                .ttl_lookups
                .is_some_and(|ttl| self.tick.saturating_sub(e.cached_at) > ttl)
            {
                expired = true;
            } else if e.epoch != epoch || e.text != text {
                stale = true;
            } else {
                e.last_used = self.tick;
                found = Some(Arc::clone(&e.plan));
            }
        }
        if expired {
            self.entries.remove(&key);
            self.stats.expirations += 1;
        }
        if stale {
            self.entries.remove(&key);
        }
        match &found {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        found
    }

    /// Inserts a freshly compiled plan for (`text`, `epoch`), evicting
    /// the least-recently-used entry if the cache is full. Ties break
    /// on the fingerprint, so eviction order is deterministic.
    pub fn insert(&mut self, text: &str, epoch: u64, plan: CachedPlan) -> Arc<CachedPlan> {
        let key = fingerprint(text);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.config.capacity.max(1) {
            if let Some((_, victim)) = self.entries.iter().map(|(k, e)| (e.last_used, *k)).min() {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        let plan = Arc::new(plan);
        self.entries.insert(
            key,
            CacheEntry {
                text: text.to_owned(),
                epoch,
                plan: Arc::clone(&plan),
                cached_at: self.tick,
                last_used: self.tick,
            },
        );
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(src: &str) -> CachedPlan {
        CachedPlan { query: parse(src).unwrap(), rewrites: RewriteStats::default() }
    }

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(normalize_text("  MATCH (n)\n  RETURN\tn  "), "MATCH (n) RETURN n");
        assert_eq!(
            fingerprint(&normalize_text("MATCH (n) RETURN n")),
            fingerprint(&normalize_text("MATCH  (n)\nRETURN n"))
        );
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut c = QueryPlanCache::new(PlanCacheConfig::default());
        assert!(c.lookup("MATCH (n) RETURN n", 7).is_none());
        c.insert("MATCH (n) RETURN n", 7, plan("MATCH (n) RETURN n"));
        assert!(c.lookup("MATCH (n) RETURN n", 7).is_some());
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn epoch_change_invalidates() {
        let mut c = QueryPlanCache::new(PlanCacheConfig::default());
        c.insert("MATCH (n) RETURN n", 1, plan("MATCH (n) RETURN n"));
        assert!(c.lookup("MATCH (n) RETURN n", 2).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let mut c = QueryPlanCache::new(PlanCacheConfig { capacity: 2, ttl_lookups: None });
        c.insert("MATCH (a) RETURN a", 0, plan("MATCH (a) RETURN a"));
        c.insert("MATCH (b) RETURN b", 0, plan("MATCH (b) RETURN b"));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some());
        c.insert("MATCH (x) RETURN x", 0, plan("MATCH (x) RETURN x"));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some());
        assert!(c.lookup("MATCH (b) RETURN b", 0).is_none());
        assert!(c.lookup("MATCH (x) RETURN x", 0).is_some());
    }

    #[test]
    fn ttl_expires_on_logical_ticks() {
        let mut c = QueryPlanCache::new(PlanCacheConfig { capacity: 8, ttl_lookups: Some(2) });
        c.insert("MATCH (a) RETURN a", 0, plan("MATCH (a) RETURN a"));
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some()); // tick 1
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some()); // tick 2
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_none()); // tick 3 > ttl
        let s = c.stats();
        assert_eq!(s.expirations, 1);
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn reinsert_after_expiry_serves_again() {
        let mut c = QueryPlanCache::new(PlanCacheConfig { capacity: 8, ttl_lookups: Some(1) });
        c.insert("MATCH (a) RETURN a", 0, plan("MATCH (a) RETURN a"));
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some());
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_none());
        c.insert("MATCH (a) RETURN a", 0, plan("MATCH (a) RETURN a"));
        assert!(c.lookup("MATCH (a) RETURN a", 0).is_some());
    }
}
